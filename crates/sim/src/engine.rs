//! The synchronous slot-stepped execution engine.
//!
//! Each slot runs a batched three-stage pipeline:
//!
//! 1. **Batched action collection** — node actions are collected through
//!    the bulk [`Protocol::act_batch`] entry point (scalar [`Protocol::act`]
//!    per node by default; ported protocols draw their randomness from
//!    pre-filled, stream-identical word buffers) into a flat,
//!    channel-bucketed action table: local labels are translated through a
//!    precomputed flat `(node, label) → dense channel` table, per-channel
//!    populations are counted with epoch-stamped first-touch detection
//!    (nothing is ever bulk-cleared), and a counting-sort scatter produces
//!    contiguous per-channel broadcaster and listener buckets (CSR layout,
//!    ascending node order). On a [`Resolver::ParallelSharded`] engine with
//!    `n ≥` [`Engine::phase1_pool_min_nodes`], collection itself runs on
//!    the worker pool in contiguous node-range chunks: each worker builds
//!    chunk-local counts and buckets, and the caller merges them by
//!    prefix-sum — first-touch channel order and ascending-node bucket
//!    order are preserved exactly, so the pooled path is bit-identical to
//!    the sequential one (see `collect_pooled`).
//! 2. **Per-channel resolution** — for each touched channel, classify every
//!    listener: it hears a message iff **exactly one** of its neighbors
//!    broadcast on the listened channel. Channels are independent within a
//!    slot, so [`Resolver::ParallelSharded`] partitions the touched channels
//!    across the calling thread plus a persistent [`WorkerPool`] of parked
//!    workers (per-shard scratch, deterministic cost-balanced partition,
//!    one atomic-generation wake per slot — see [`crate::pool`]); every
//!    other [`Resolver`] runs the same per-channel strategies sequentially.
//!
//! 3. **Batched feedback delivery** — one counting sweep over the packed
//!    outcome array folds the per-outcome counters, then the bulk
//!    [`Protocol::feedback_batch`] entry point (scalar
//!    [`Protocol::feedback`] per node by default) hands each protocol its
//!    outcome, with heard messages passed by reference out of the
//!    broadcasters' action buffer (the engine never clones a payload). On a
//!    [`Resolver::ParallelSharded`] engine with `n ≥`
//!    [`Engine::phase3_pool_min_nodes`], delivery runs on the worker pool
//!    in contiguous node-range chunks, each folding its own counter delta;
//!    the deltas merge in chunk order to exactly the sequential totals.
//!
//! This is precisely the communication model of paper §3 (no collision
//! detection, collision ≡ silence, broadcasters hear only themselves).
//!
//! When primary-user spectrum dynamics are installed
//! ([`Engine::set_spectrum`], see [`crate::spectrum`]), a **phase 0**
//! precedes collection: the PU process is advanced once into the new slot,
//! producing a busy mask over the dense channel universe. Phase 2 then
//! treats a busy channel as occupied — its broadcasts are swallowed and
//! every listener on it is resolved to the collision outcome — identically
//! under every resolver and thread count, because the mask is computed
//! sequentially from per-(slot, channel)-keyed streams before any
//! resolution begins.
//!
//! # Slot resolution strategies
//!
//! Resolution cost is where simulation time goes for every Θ(n·polylog n)
//! primitive in this repo, so the resolver adapts per channel and per slot
//! (see [`Resolver`]):
//!
//! * **Broadcaster-centric sweep** — walk each broadcaster's CSR neighbor
//!   slice once, accumulating per-listener hit counts in epoch-stamped
//!   scratch arrays (no per-slot `O(n)` clears). Cost `Σ_b deg(b)`; wins on
//!   dense channels with many listeners (epidemic dissemination workloads).
//! * **Listener-centric probe** — per listener, the cheapest of: scanning
//!   the channel's broadcaster list with `O(1)` adjacency-bit tests,
//!   walking its own CSR slice against epoch-stamped broadcaster marks, or
//!   intersecting its adjacency row with the channel's broadcaster bit set
//!   word-by-word ([`BitSet::intersect_unique`]) — each with early exit at
//!   the second hit (a collision is a collision).
//! * The [`Resolver::Auto`] heuristic compares `Σ_b deg(b)` (weighted for
//!   its scattered writes) against the summed per-listener probe bound
//!   `Σ_l min(B, deg(l), n/64)` and picks the cheaper side for each channel
//!   independently. [`Resolver::ParallelSharded`] applies the same
//!   heuristic inside each shard.
//!
//! All strategies — including the sharded one at any thread count — produce
//! bit-identical counters, feedbacks, and outputs; `Resolver::Naive` keeps
//! the original quadratic reference implementation for differential testing
//! and benchmarking. Resolution itself is deterministic (the model has no
//! channel noise), which is what makes sharding observationally invisible;
//! any *future* randomized channel effect must draw from the per-(slot,
//! channel) streams of [`Engine::channel_rng`], which are keyed by what is
//! being resolved rather than by visit order, preserving that invariant.
//!
//! # Internal renumbering and memory layout
//!
//! At construction the engine relabels nodes internally ([`Renumbering`],
//! default degree-sorted) and copies the network graph into a private
//! internal-id CSR with dense bit rows for hub nodes. Phase 2 runs entirely
//! on internal ids — hot rows pack into adjacent cache lines, which is what
//! keeps neighbor probes local at n = 10⁶ — and outcomes are written back
//! through the inverse permutation. Protocols, per-node RNG streams, action
//! collection, and feedback delivery stay keyed by external [`NodeId`]s, so
//! renumbering is observationally invisible (proven bit-identically by the
//! permutation differential in `tests/`). Per-node outcome state is a
//! packed `u32` array rather than an enum array, and when `c` is small the
//! sequential and sharded `Auto` paths fuse the listener pass across a
//! slot's channels: one marking sweep tags every broadcaster with its
//! channel, and each listener walk checks tags instead of rebuilding a
//! per-channel broadcaster bit set.

use crate::bitset::{BitSet, Intersection};
use crate::ids::{GlobalChannel, LocalChannel, NodeId, Slot};
use crate::network::Network;
use crate::pool::WorkerPool;
use crate::protocol::{outcome, Action, BatchCtx, FeedbackBatch, NodeCtx, Protocol};
#[cfg(test)]
use crate::protocol::{Feedback, SlotCtx};
use crate::rng::{channel_slot_rng, stream_rng};
use crate::spectrum::{SpectrumDynamics, SpectrumState};
use rand::rngs::SmallRng;

/// Default node-count threshold at or above which a
/// [`Resolver::ParallelSharded`] engine also routes phase-1 action
/// collection through its worker pool. Below it the extra wake/merge
/// round-trip costs more than the parallelized collection saves (the
/// per-slot wake is ~2.5 µs on the bench container, per-node collection a
/// few tens of ns). Tunable per engine via
/// [`Engine::set_phase1_pool_min_nodes`]; purely a performance knob —
/// pooled and sequential collection are bit-identical.
pub const DEFAULT_PHASE1_POOL_MIN_NODES: usize = 2048;

/// Sharded slots of each phase-1 routing (sequential first, then pooled)
/// the auto-tuner measures before locking the faster one; see
/// [`Engine::set_phase1_pool_autotune`].
const PHASE1_TUNE_SLOTS: u32 = 3;

/// Default node-count threshold at or above which a
/// [`Resolver::ParallelSharded`] engine routes phase-3 feedback delivery
/// through its worker pool in contiguous node-range chunks. The
/// cost-benefit mirrors phase 1 (one pool wake ~2.5 µs vs a few tens of
/// ns per delivered node), so the default matches
/// [`DEFAULT_PHASE1_POOL_MIN_NODES`]. Tunable per engine via
/// [`Engine::set_phase3_pool_min_nodes`]; purely a performance knob —
/// pooled and sequential delivery are bit-identical by construction
/// (feedback order across nodes is independent, and the per-chunk counter
/// deltas are merged deterministically in chunk order).
pub const DEFAULT_PHASE3_POOL_MIN_NODES: usize = 2048;

/// Channels-per-node bound at or below which the `Auto` strategies may
/// fuse the listener pass across a slot's (or shard's) touched channels;
/// see [`mark_broadcast_channels`].
const FUSED_MAX_C: usize = 8;

/// Average per-channel bucket population (broadcasters + listeners) at or
/// below which the fused pass actually engages. Fusion trades the
/// per-channel broadcaster-set build/teardown (a fixed cost per touched
/// channel) for heavier per-probe tag loads on every listener walk
/// (`mark_epoch` + `hit_src`, 12 bytes, vs one bit in a channel-local,
/// L1-resident set). That trade only wins when channels are numerous and
/// nearly empty — with well-populated buckets the walk term dominates and
/// fusion measured ~40% *slower* on the `small_slot_200` and
/// `dense_broadcast_5000` bench shapes, so the gate is deliberately tight.
const FUSED_MAX_AVG_BUCKET: usize = 16;

/// Node count at or below which [`IntGraph`] keeps a dense adjacency row
/// for *every* node rather than only above the degree threshold. The full
/// bit matrix costs n²/8 bytes — ≤ 2 MiB at this bound — and keeps every
/// pairwise adjacency test an O(1) probe, which the listener scan path
/// (and the `Naive` reference resolver) lean on heavily at small n.
const DENSE_ALL_MAX_N: usize = 4096;

/// Aggregate event counters for a run, useful for energy/traffic accounting
/// and for sanity-checking experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Slots executed.
    pub slots: u64,
    /// Broadcast actions.
    pub broadcasts: u64,
    /// Listen actions.
    pub listens: u64,
    /// Sleep actions.
    pub sleeps: u64,
    /// Successful deliveries (listener heard exactly one neighbor).
    pub deliveries: u64,
    /// Listener-slots lost to collision (≥ 2 broadcasting neighbors), or
    /// silenced by primary-user activity on the tuned channel — the two
    /// are indistinguishable to the listener, so they share this counter
    /// (the PU share is broken out in [`Counters::pu_blocked_listens`]).
    pub collisions: u64,
    /// Listener-slots in which no neighbor broadcast on the channel.
    pub idle_listens: u64,
    /// Listener-slots silenced *specifically* by primary-user activity
    /// (always ≤ [`Counters::collisions`]). Zero unless spectrum dynamics
    /// are installed ([`Engine::set_spectrum`]).
    pub pu_blocked_listens: u64,
    /// Broadcast actions transmitted into a PU-busy channel and lost (the
    /// broadcaster cannot tell; these are also counted in
    /// [`Counters::broadcasts`]).
    pub pu_blocked_broadcasts: u64,
    /// (Touched channel, slot) pairs observed PU-busy — channel-slots in
    /// which at least one node tuned to a busy channel.
    pub pu_busy_channel_slots: u64,
}

impl Counters {
    /// Folds one phase-3 counting-sweep delta in (see [`count_outcomes`]).
    fn apply(&mut self, d: DeliverDelta) {
        self.idle_listens += d.idle_listens;
        self.collisions += d.collisions;
        self.pu_blocked_listens += d.pu_blocked_listens;
        self.deliveries += d.deliveries;
    }
}

/// Outcome of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Slots actually executed.
    pub slots_run: u64,
    /// First slot (1-based count of executed slots) at which the progress
    /// probe returned `true`, if it ever did.
    pub completed_at: Option<u64>,
    /// `true` if every protocol reported [`Protocol::is_complete`] when the
    /// run stopped.
    pub all_protocols_done: bool,
}

/// How the engine resolves deliveries on each channel. All strategies are
/// observationally identical; they differ only in per-slot cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Resolver {
    /// Per channel, pick the cheaper of the broadcaster-centric sweep and
    /// the listener-centric probe by comparing (weighted) `Σ_b deg(b)`
    /// with `Σ_l min(B, deg(l), n/64)`. The right default.
    #[default]
    Auto,
    /// Always walk broadcasters' CSR neighbor slices.
    BroadcasterCentric,
    /// Always probe from the listener side (per listener: broadcaster-list
    /// scan, own-CSR walk, or word intersection — whichever bounds cheapest).
    ListenerCentric,
    /// The original reference implementation: every listener linearly scans
    /// every broadcaster on its channel with a per-pair adjacency test.
    /// Kept for differential testing and as the benchmark baseline.
    Naive,
    /// Channel-sharded parallel resolution: the touched channels of a slot
    /// are partitioned across the calling thread plus `threads − 1`
    /// persistent pool workers (channels are independent within a slot;
    /// each shard resolves its channels with the [`Resolver::Auto`]
    /// heuristic and its own scratch). The engine-owned [`WorkerPool`] is
    /// spawned on the first sharded slot, parks between slots, and is torn
    /// down on drop — per-slot cost is a generation-counter wake, not a
    /// thread spawn. Bit-identical to the sequential strategies at any
    /// thread count; `threads ≤ 1` falls back to sequential `Auto`.
    ParallelSharded {
        /// Worker threads for phase-2 resolution.
        threads: usize,
    },
}

impl Resolver {
    /// Convenience constructor for [`Resolver::ParallelSharded`].
    pub fn sharded(threads: usize) -> Resolver {
        Resolver::ParallelSharded { threads }
    }

    /// The per-channel strategy this resolver applies once a channel is in
    /// hand (the sharded mode resolves each channel with `Auto`).
    fn per_channel(self) -> Resolver {
        match self {
            Resolver::ParallelSharded { .. } => Resolver::Auto,
            r => r,
        }
    }
}

/// The execution engine. Owns one protocol instance and one RNG stream per
/// node; borrows the immutable [`Network`].
///
/// # Examples
/// ```
/// use crn_sim::*;
///
/// // Two nodes, one shared channel; node 0 beacons, node 1 listens.
/// struct Side { tx: bool, heard: Option<u32> }
/// impl Protocol for Side {
///     type Message = u32;
///     type Output = Option<u32>;
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
///         if self.tx {
///             Action::Broadcast { channel: LocalChannel(0), message: 7 }
///         } else {
///             Action::Listen { channel: LocalChannel(0) }
///         }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
///         if let Feedback::Heard(m) = fb { self.heard = Some(*m); }
///     }
///     fn is_complete(&self) -> bool { self.heard.is_some() || self.tx }
///     fn into_output(self) -> Option<u32> { self.heard }
/// }
///
/// let mut b = Network::builder(2);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
/// b.set_channels(NodeId(1), vec![GlobalChannel(0)]);
/// b.add_edge(NodeId(0), NodeId(1));
/// let net = b.build()?;
/// let mut eng = Engine::new(&net, 1, |ctx| Side { tx: ctx.id == NodeId(0), heard: None });
/// eng.run(10, None);
/// assert_eq!(eng.into_outputs()[1], Some(7));
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
pub struct Engine<'net, P: Protocol> {
    net: &'net Network,
    protocols: Vec<P>,
    rngs: Vec<SmallRng>,
    slot: u64,
    counters: Counters,
    resolver: Resolver,
    /// Master seed, retained to derive per-(slot, channel) streams.
    seed: u64,
    /// Channels per node.
    c: usize,
    /// Flat `(node, local label) → dense channel` translation table (`n·c`
    /// entries) — one lookup in the hot loop instead of a nested-`Vec`
    /// chase plus a raw-id remap.
    xlate: Vec<u32>,
    /// Dense channel → raw global id (the inverse of the remap behind
    /// `xlate`), kept for consumers that must key by *global* channel —
    /// the spectrum layer's per-(slot, channel) RNG streams.
    dense_to_raw: Vec<u32>,
    /// Primary-user spectrum dynamics, if installed ([`Engine::set_spectrum`]).
    /// `None` ≡ [`SpectrumDynamics::Static`]: every channel idle forever.
    spectrum: Option<SpectrumState>,
    /// Per-node packed plan for the current slot: a channel-bucket index
    /// with [`BCAST_BIT`] for broadcasters, or [`SLEEPING`]. Sequential
    /// collection stores *global* touched-channel indices here; pooled
    /// collection stores *chunk-local* ones (each chunk scatters into its
    /// own local buckets before the merge).
    node_plan: Vec<u32>,
    /// This slot's actions in node order, exactly as the protocols returned
    /// them. Heard messages are delivered by reference out of this buffer.
    actions: Vec<Action<P::Message>>,
    /// Per-node packed resolution results for the current slot (external
    /// node order; see [`OC_MIN_SENTINEL`]).
    outcomes: Vec<u32>,
    /// The active renumbering (see [`Renumbering`]).
    renumbering: Renumbering,
    /// `ext2int[external] = internal` under the active renumbering.
    ext2int: Vec<u32>,
    /// `int2ext[internal] = external` (inverse of `ext2int`).
    int2ext: Vec<u32>,
    /// Internal-id adjacency view phase 2 resolves against.
    ig: IntGraph,
    /// Per-worker phase-1 state for pooled collection; `[0]` belongs to the
    /// calling thread. Allocated lazily on the first pooled slot.
    collect: Vec<CollectShard<P::Message>>,
    /// Node-count threshold for routing phase-1 collection through the
    /// pool; see [`DEFAULT_PHASE1_POOL_MIN_NODES`]. Ignored while the
    /// auto-tuner is measuring, overwritten when it decides.
    phase1_min_nodes: usize,
    /// In-flight phase-1 auto-tune measurement; `None` once decided or when
    /// tuning is off ([`Engine::set_phase1_pool_min_nodes`] pins the
    /// threshold and disables it).
    phase1_tune: Option<Phase1Tune>,
    /// Node-count threshold for routing phase-3 feedback delivery through
    /// the pool; see [`DEFAULT_PHASE3_POOL_MIN_NODES`].
    phase3_min_nodes: usize,
    /// Per-chunk counter deltas for pooled phase-3 delivery, merged into
    /// [`Counters`] in chunk order after the join. O(threads) and
    /// long-lived across slots (and across [`Engine::reset`]); allocated
    /// lazily on the first pooled delivery.
    deliver: Vec<DeliverDelta>,
    // --- flat channel-bucketed action table, rebuilt each slot ---
    /// Dense channels touched this slot, in first-touch order.
    touched: Vec<u32>,
    /// Per dense channel: stamp marking it touched in the current slot.
    chan_epoch: Vec<u64>,
    /// Per dense channel: its index into `touched` (valid iff stamped).
    chan_slot: Vec<u32>,
    slot_epoch: u64,
    /// Per touched channel: population counts, then scatter cursors.
    b_cnt: Vec<u32>,
    l_cnt: Vec<u32>,
    /// Per touched channel: CSR offsets into the flat node buckets.
    b_off: Vec<u32>,
    l_off: Vec<u32>,
    /// Flat buckets: broadcasters/listeners grouped by touched channel, in
    /// ascending node order within each group.
    bcast_nodes: Vec<u32>,
    listen_nodes: Vec<u32>,
    /// Per-shard resolution state (epoch-stamped scratch + outcome buffer),
    /// long-lived across slots: `[0]` serves sequential resolution and the
    /// caller-thread shard, `[1..]` belong to the pool workers.
    shards: Vec<ShardSlot>,
    /// Per-channel cost proxies and group bounds for the sharded partition,
    /// persisted across slots to avoid reallocation.
    shard_weights: Vec<u64>,
    shard_bounds: Vec<(usize, usize)>,
    /// Persistent phase-2 worker pool. Spawned lazily on the first sharded
    /// slot (sequential engines never pay for it), kept parked between
    /// slots, re-sized if the resolver's thread count changes, and torn
    /// down when the engine drops.
    pool: Option<WorkerPool>,
    /// Cumulative per-phase wall-clock totals ([`Engine::set_phase_timing`]).
    /// `None` (the default) records nothing; `Some` pays ~5 monotonic clock
    /// reads per slot and is observationally invisible (see
    /// [`PhaseTimings`]).
    phase_timings: Option<PhaseTimings>,
}

/// A progress probe: evaluated every `interval` slots with the slot count
/// and the engine; returning `true` stops the run (ground-truth completion).
pub type Probe<'a, 'b, 'net, P> = (u64, &'a mut (dyn FnMut(u64, &Engine<'net, P>) -> bool + 'b));

/// Running phase-1 auto-tune state: wall-clock totals for the first
/// [`PHASE1_TUNE_SLOTS`] sharded slots collected sequentially and the next
/// [`PHASE1_TUNE_SLOTS`] collected through the pool. Routing choice is a
/// pure performance knob (both paths are bit-identical), so measuring live
/// cannot change results.
#[derive(Debug, Clone, Copy, Default)]
struct Phase1Tune {
    seq_ns: u128,
    pooled_ns: u128,
    measured: u32,
}

/// Cumulative per-phase wall-clock totals for [`Engine::step`], split by
/// routing (sequential vs pooled/sharded) where a phase has both paths.
/// Off by default; enabled with [`Engine::set_phase_timing`] and read with
/// [`Engine::phase_timings`].
///
/// **Observationally invisible by construction:** the timers only *read*
/// the monotonic clock and accumulate into this struct — no engine control
/// flow, counter, RNG stream, or protocol callback depends on a measured
/// value. (Contrast the phase-1 auto-tuner, which does route on timing —
/// but only between two bit-identical paths.) The guarantee "timers on vs
/// off is bit-identical" is enforced by the lockstep differential in
/// `tests/tests/metrics_equiv.rs` across all resolvers, thread counts, and
/// pooling settings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Slots measured (== slots stepped while timing was enabled).
    pub slots: u64,
    /// Phase 0: spectrum/PU process advance (zero when no dynamics are
    /// installed — the phase is skipped entirely).
    pub spectrum_ns: u64,
    /// Phase 1, sequential collection path.
    pub collect_sequential_ns: u64,
    /// Phase 1, pooled collection path.
    pub collect_pooled_ns: u64,
    /// Slots that routed phase 1 through the pool.
    pub collect_pooled_slots: u64,
    /// Phase 2, sequential resolution path.
    pub resolve_sequential_ns: u64,
    /// Phase 2, sharded resolution path.
    pub resolve_sharded_ns: u64,
    /// Slots that resolved phase 2 sharded.
    pub resolve_sharded_slots: u64,
    /// Phase 3, sequential delivery path.
    pub deliver_sequential_ns: u64,
    /// Phase 3, pooled delivery path.
    pub deliver_pooled_ns: u64,
    /// Slots that delivered phase 3 through the pool.
    pub deliver_pooled_slots: u64,
}

impl PhaseTimings {
    /// Phase-1 total across both routings.
    pub fn collect_ns(&self) -> u64 {
        self.collect_sequential_ns + self.collect_pooled_ns
    }

    /// Phase-2 total across both routings.
    pub fn resolve_ns(&self) -> u64 {
        self.resolve_sequential_ns + self.resolve_sharded_ns
    }

    /// Phase-3 total across both routings.
    pub fn deliver_ns(&self) -> u64 {
        self.deliver_sequential_ns + self.deliver_pooled_ns
    }

    /// Sum over all four phases.
    pub fn total_ns(&self) -> u64 {
        self.spectrum_ns + self.collect_ns() + self.resolve_ns() + self.deliver_ns()
    }
}

/// Reads the elapsed time since `*mark` and re-arms the mark at the same
/// clock read, so consecutive laps share boundaries (one read per phase
/// boundary, not two). `0` when timing is off (`mark` is `None`).
fn lap(mark: &mut Option<std::time::Instant>) -> u64 {
    match mark {
        Some(prev) => {
            let now = std::time::Instant::now();
            let ns = now.duration_since(*prev).as_nanos() as u64;
            *mark = Some(now);
            ns
        }
        None => 0,
    }
}

/// Per-outcome counter updates accumulated by one phase-3 delivery chunk
/// (see [`count_outcomes`]). Merging the chunks' deltas in chunk order
/// reproduces the scalar loop's totals exactly: each counter is a sum of
/// per-node contributions, the chunks partition the node range, and `u64`
/// addition is associative — no ordering effect can survive the merge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct DeliverDelta {
    idle_listens: u64,
    collisions: u64,
    pu_blocked_listens: u64,
    deliveries: u64,
}

/// The phase-3 counting sweep: fold a packed-outcome range into per-outcome
/// counter deltas in one branch-predictable pass (comparison masks, no
/// data-dependent branches — the scalar loop's six-way match ran once per
/// node interleaved with the virtual feedback call). `OC_PU_BUSY` counts as
/// both a collision and a PU-blocked listen, exactly as the scalar arms did.
fn count_outcomes(outcomes: &[u32]) -> DeliverDelta {
    let mut d = DeliverDelta::default();
    for &oc in outcomes {
        d.idle_listens += u64::from(oc == OC_IDLE);
        d.collisions += u64::from(oc == OC_COLLISION) + u64::from(oc == OC_PU_BUSY);
        d.pu_blocked_listens += u64::from(oc == OC_PU_BUSY);
        d.deliveries += u64::from(oc < OC_MIN_SENTINEL);
    }
    d
}

/// `node_plan` bit marking a broadcaster.
const BCAST_BIT: u32 = 1 << 31;
/// `node_plan` sentinel for a sleeping node.
const SLEEPING: u32 = u32::MAX;

/// Per-node resolution results are packed into one `u32` each — the
/// struct-of-arrays layout the million-node path needs (half the bytes and
/// no discriminant branch in the scatter loops). Values below
/// [`OC_MIN_SENTINEL`] mean `Heard(broadcaster)`: an *internal* id while a
/// channel is being resolved, converted to the external id at the final
/// write into `Engine::outcomes` so the delivery phase can borrow the
/// message straight out of the action buffer.
///
/// The packing is public API since batched delivery
/// ([`Protocol::feedback_batch`]) hands protocols the raw array; the
/// canonical constants live in [`crate::protocol::outcome`] and are
/// re-bound here under the engine's historical `OC_*` names. A node count
/// must stay strictly below [`OC_MIN_SENTINEL`] so a broadcaster id can
/// never alias a sentinel (asserted at construction).
const OC_SENT: u32 = outcome::SENT;
const OC_SLEPT: u32 = outcome::SLEPT;
const OC_IDLE: u32 = outcome::IDLE;
const OC_COLLISION: u32 = outcome::COLLISION;
const OC_PU_BUSY: u32 = outcome::PU_BUSY;
const OC_MIN_SENTINEL: u32 = outcome::MIN_SENTINEL;

/// How the engine relabels nodes internally for phase-2 cache locality.
///
/// Renumbering is *observationally invisible*: protocols, per-node RNG
/// streams, feedback order, counters, and outputs are all keyed by the
/// external [`NodeId`]s; only the engine-private CSR copy that resolution
/// walks is relabeled, and outcomes are written back through the inverse
/// permutation. The permutation differential in `tests/` proves
/// bit-identity against [`Renumbering::Identity`] under every resolver and
/// thread count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum Renumbering {
    /// Hubs first: internal ids in descending external degree, ties by
    /// ascending external id. The rows every CSR probe keeps landing on
    /// pack into the first cache lines of the internal adjacency arrays.
    /// The default.
    #[default]
    DegreeSorted,
    /// Internal ids equal external ids (the pre-renumbering layout).
    Identity,
    /// Explicit permutation, `perm[external] = internal`. Must be a
    /// permutation of `0..n` (checked at construction); this is how the
    /// permutation-differential tests drive arbitrary relabelings.
    Custom(Vec<u32>),
}

/// Builds `(ext2int, int2ext)` for a renumbering.
///
/// # Panics
/// Panics if a [`Renumbering::Custom`] vector is not a permutation of
/// `0..n`.
fn renumber_perm(net: &Network, r: &Renumbering) -> (Vec<u32>, Vec<u32>) {
    let n = net.len();
    let g = net.graph();
    let int2ext: Vec<u32> = match r {
        Renumbering::Identity => (0..n as u32).collect(),
        Renumbering::DegreeSorted => {
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                g.degree(b as usize).cmp(&g.degree(a as usize)).then(a.cmp(&b))
            });
            order
        }
        Renumbering::Custom(perm) => {
            assert_eq!(perm.len(), n, "renumbering permutation must cover all {n} nodes");
            let mut int2ext = vec![u32::MAX; n];
            for (ext, &int) in perm.iter().enumerate() {
                assert!((int as usize) < n, "renumbering target {int} out of range");
                let slot = &mut int2ext[int as usize];
                assert_eq!(*slot, u32::MAX, "renumbering maps two nodes to internal id {int}");
                *slot = ext as u32;
            }
            int2ext
        }
    };
    let mut ext2int = vec![0u32; n];
    for (int, &ext) in int2ext.iter().enumerate() {
        ext2int[ext as usize] = int as u32;
    }
    (ext2int, int2ext)
}

/// The engine-private adjacency view in internal-id space: a CSR copy of
/// the network graph relabeled by the active [`Renumbering`] (neighbor
/// slices sorted ascending by internal id), plus dense bit rows for nodes
/// whose degree crosses the same `max(64, n/64)` threshold the network's
/// index uses — `O(n + m)` memory overall. All of phase 2 runs on internal
/// ids against this structure; external ids reappear only when outcomes
/// are written back.
struct IntGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    /// Per internal node: index into `rows`, or `u32::MAX`.
    row_of: Vec<u32>,
    rows: Vec<BitSet>,
}

impl IntGraph {
    fn build(net: &Network, ext2int: &[u32], int2ext: &[u32]) -> IntGraph {
        let n = net.len();
        let g = net.graph();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[ext2int[v] as usize + 1] = g.degree(v) as u32;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Transpose-style fill: visiting internal ids in ascending order and
        // appending each to all of its neighbors' rows (adjacency is
        // symmetric) leaves every row sorted — O(n + m), no per-row sort,
        // which keeps engine construction cheap under arbitrary
        // renumberings (a comparison sort here tripled construction time at
        // n = 5000).
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut targets = vec![0u32; offsets[n] as usize];
        for ti in 0..n as u32 {
            for &w in g.neighbors(int2ext[ti as usize] as usize) {
                let row = ext2int[w as usize] as usize;
                targets[cursor[row] as usize] = ti;
                cursor[row] += 1;
            }
        }
        // Below `DENSE_ALL_MAX_N` the full bit matrix costs at most n²/8
        // ≤ 2 MiB, so every node gets a row and every adjacency test is an
        // O(1) probe — the degree threshold only starts to matter at scales
        // where the quadratic matrix would dominate memory.
        let threshold = if n <= DENSE_ALL_MAX_N { 0 } else { ((n / 64).max(64)) as u32 };
        let mut row_of = vec![u32::MAX; n];
        let mut rows = Vec::new();
        for v in 0..n {
            if offsets[v + 1] - offsets[v] >= threshold {
                let mut bits = BitSet::new(n);
                for &w in &targets[offsets[v] as usize..offsets[v + 1] as usize] {
                    bits.insert(w as usize);
                }
                row_of[v] = u32::try_from(rows.len()).expect("row count fits u32");
                rows.push(bits);
            }
        }
        IntGraph { offsets, targets, row_of, rows }
    }

    #[inline]
    fn neighbor_slice(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    #[inline]
    fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    #[inline]
    fn row(&self, v: u32) -> Option<&BitSet> {
        match self.row_of[v as usize] {
            u32::MAX => None,
            r => Some(&self.rows[r as usize]),
        }
    }

    /// `true` if internal nodes `u` and `v` are adjacent: dense-row probe
    /// when either endpoint has one, else a binary search of the shorter
    /// CSR slice.
    #[inline]
    fn are(&self, u: u32, v: u32) -> bool {
        if let Some(row) = self.row(u) {
            return row.contains(v as usize);
        }
        if let Some(row) = self.row(v) {
            return row.contains(u as usize);
        }
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbor_slice(a).binary_search(&b).is_ok()
    }

    /// Heap bytes of the internal view — reported next to the network
    /// footprint in the huge-sparse bench row.
    fn memory_bytes(&self) -> usize {
        (self.offsets.capacity() + self.targets.capacity() + self.row_of.capacity())
            * std::mem::size_of::<u32>()
            + self.rows.iter().map(|b| b.words().len() * 8).sum::<usize>()
    }
}

/// Epoch-stamped per-thread resolution scratch. Sized to the node count;
/// nothing in it is ever bulk-cleared (a stamp comparison makes stale cells
/// invisible), so shards pay O(work) rather than O(n) per channel.
struct Scratch {
    /// Epoch stamps for `hit_count`/`hit_src` (broadcaster-centric) or for
    /// broadcaster marks (listener-centric).
    mark_epoch: Vec<u64>,
    hit_count: Vec<u32>,
    hit_src: Vec<u32>,
    epoch: u64,
    /// Scratch bit set of the broadcasters on the channel being resolved
    /// (built and un-built per channel, O(B) each way).
    bcast_bits: BitSet,
}

impl Scratch {
    fn new(n: usize) -> Scratch {
        Scratch {
            mark_epoch: vec![0; n],
            hit_count: vec![0; n],
            hit_src: vec![0; n],
            epoch: 0,
            bcast_bits: BitSet::new(n),
        }
    }
}

/// One shard's long-lived resolution state: the epoch-stamped [`Scratch`]
/// plus the outcome buffer the shard resolves into (listener-position
/// order). Shard 0 belongs to the calling thread (and doubles as the
/// sequential engine's scratch); shards `1..` are handed to pool workers —
/// each worker mutates only its own slot, which is what makes the
/// fork-join hand-out race-free.
struct ShardSlot {
    scratch: Scratch,
    /// Packed outcomes in listener-position order (internal `Heard` ids;
    /// converted to external at the scatter).
    out: Vec<u32>,
}

impl ShardSlot {
    fn new(n: usize) -> ShardSlot {
        ShardSlot { scratch: Scratch::new(n), out: Vec::new() }
    }
}

/// One worker's long-lived phase-1 state for pooled action collection: the
/// chunk's actions (in node order), a chunk-local epoch-stamped channel
/// table mirroring the engine's global one, per-channel counts and CSR
/// offsets, and chunk-local broadcaster/listener buckets that the caller
/// merges into the global buckets by prefix-sum after the join.
struct CollectShard<M> {
    /// The chunk's actions, appended to `Engine::actions` after the join.
    out: Vec<Action<M>>,
    /// Chunk-local touched channels, in chunk-first-touch order.
    touched: Vec<u32>,
    /// Per dense channel: stamp marking it touched in this chunk's current
    /// slot (universe-sized, like the engine's global table).
    ch_epoch: Vec<u64>,
    /// Per dense channel: its index into the local `touched` list.
    ch_slot: Vec<u32>,
    /// This shard's private slot epoch (monotonic per shard).
    epoch: u64,
    /// Per local touched channel: population counts, then scatter cursors.
    b_cnt: Vec<u32>,
    l_cnt: Vec<u32>,
    /// Per local touched channel: CSR offsets into the local buckets.
    b_off: Vec<u32>,
    l_off: Vec<u32>,
    /// Chunk-local buckets, ascending node order within each channel group.
    b_nodes: Vec<u32>,
    l_nodes: Vec<u32>,
    /// The chunk's action tallies, summed into [`Counters`] after the join.
    nb: u64,
    nl: u64,
    ns: u64,
}

impl<M> CollectShard<M> {
    fn new(universe: usize) -> CollectShard<M> {
        CollectShard {
            out: Vec::new(),
            touched: Vec::new(),
            ch_epoch: vec![0; universe],
            ch_slot: vec![0; universe],
            epoch: 0,
            b_cnt: Vec::new(),
            l_cnt: Vec::new(),
            b_off: Vec::new(),
            l_off: Vec::new(),
            b_nodes: Vec::new(),
            l_nodes: Vec::new(),
            nb: 0,
            nl: 0,
            ns: 0,
        }
    }

    /// Heap bytes of this shard's scratch, for the engine's `O(n + m)`
    /// memory accounting (`out` is reported by capacity × element size —
    /// `Action` payloads may own heap of their own, which is the
    /// protocol's memory, not the engine's).
    fn memory_bytes(&self) -> usize {
        self.out.capacity() * std::mem::size_of::<Action<M>>()
            + self.ch_epoch.capacity() * std::mem::size_of::<u64>()
            + (self.touched.capacity()
                + self.ch_slot.capacity()
                + self.b_cnt.capacity()
                + self.l_cnt.capacity()
                + self.b_off.capacity()
                + self.l_off.capacity()
                + self.b_nodes.capacity()
                + self.l_nodes.capacity())
                * std::mem::size_of::<u32>()
    }
}

/// Translates node `v`'s local label through the flat `(node, label) →
/// dense channel` table.
///
/// # Panics
/// Panics if a protocol tunes to a label outside `0..c` — without the
/// check, a bad label would silently alias into the next node's
/// translation row.
#[inline]
fn translate_label(xlate: &[u32], c: usize, v: usize, channel: LocalChannel) -> usize {
    let l = channel.index();
    assert!(l < c, "node {v} tuned to local channel {l} but c = {c}");
    xlate[v * c + l] as usize
}

/// Registers dense channel `ch` as touched (idempotent per `epoch`) in the
/// given touched-list/stamp/count structures — shared by the engine's
/// global table (sequential collection and the pooled merge) and each
/// chunk's local table — and returns its index into `touched`.
#[inline]
fn touch_channel(
    touched: &mut Vec<u32>,
    ch_epoch: &mut [u64],
    ch_slot: &mut [u32],
    b_cnt: &mut Vec<u32>,
    l_cnt: &mut Vec<u32>,
    ch: usize,
    epoch: u64,
) -> u32 {
    if ch_epoch[ch] == epoch {
        ch_slot[ch]
    } else {
        ch_epoch[ch] = epoch;
        let ti = touched.len() as u32;
        debug_assert!(ti < BCAST_BIT, "touched-channel index overflows the role bit");
        ch_slot[ch] = ti;
        touched.push(ch as u32);
        b_cnt.push(0);
        l_cnt.push(0);
        ti
    }
}

/// Phase-1 work for one contiguous node chunk `[base, base + len)`:
/// collect the chunk's actions through [`Protocol::act_batch`], translate
/// and count them into the shard's local channel table, and counting-sort
/// the chunk's nodes into local per-channel buckets. Identical on the
/// calling thread and on a pool worker; touches only the chunk's disjoint
/// slices plus the shard's private state.
#[allow(clippy::too_many_arguments)]
fn collect_chunk<P: Protocol>(
    slot: Slot,
    base: usize,
    xlate: &[u32],
    ext2int: &[u32],
    c: usize,
    protos: &mut [P],
    rngs: &mut [SmallRng],
    node_plan: &mut [u32],
    outcomes: &mut [u32],
    shard: &mut CollectShard<P::Message>,
) {
    shard.out.clear();
    shard.touched.clear();
    shard.b_cnt.clear();
    shard.l_cnt.clear();
    shard.epoch += 1;
    let epoch = shard.epoch;

    let mut ctx = BatchCtx::new(slot, rngs);
    P::act_batch(protos, &mut ctx, &mut shard.out);
    assert_eq!(shard.out.len(), protos.len(), "act_batch must emit one action per node");

    let (mut nb, mut nl, mut ns) = (0u64, 0u64, 0u64);
    for (i, action) in shard.out.iter().enumerate() {
        let v = base + i;
        let (packed, outcome) = match action {
            Action::Broadcast { channel, .. } => {
                nb += 1;
                let ch = translate_label(xlate, c, v, *channel);
                let ti = touch_channel(
                    &mut shard.touched,
                    &mut shard.ch_epoch,
                    &mut shard.ch_slot,
                    &mut shard.b_cnt,
                    &mut shard.l_cnt,
                    ch,
                    epoch,
                );
                shard.b_cnt[ti as usize] += 1;
                (ti | BCAST_BIT, OC_SENT)
            }
            Action::Listen { channel } => {
                nl += 1;
                let ch = translate_label(xlate, c, v, *channel);
                let ti = touch_channel(
                    &mut shard.touched,
                    &mut shard.ch_epoch,
                    &mut shard.ch_slot,
                    &mut shard.b_cnt,
                    &mut shard.l_cnt,
                    ch,
                    epoch,
                );
                shard.l_cnt[ti as usize] += 1;
                (ti, OC_IDLE)
            }
            Action::Sleep => {
                ns += 1;
                (SLEEPING, OC_SLEPT)
            }
        };
        node_plan[i] = packed;
        outcomes[i] = outcome;
    }
    shard.nb = nb;
    shard.nl = nl;
    shard.ns = ns;

    // Local prefix sums + counting-sort scatter into the local buckets
    // (ascending node order within each group by construction).
    let t = shard.touched.len();
    shard.b_off.clear();
    shard.l_off.clear();
    shard.b_off.push(0);
    shard.l_off.push(0);
    let (mut tb, mut tl) = (0u32, 0u32);
    for ti in 0..t {
        tb += shard.b_cnt[ti];
        tl += shard.l_cnt[ti];
        shard.b_off.push(tb);
        shard.l_off.push(tl);
    }
    shard.b_nodes.resize(tb as usize, 0);
    shard.l_nodes.resize(tl as usize, 0);
    shard.b_cnt.copy_from_slice(&shard.b_off[..t]);
    shard.l_cnt.copy_from_slice(&shard.l_off[..t]);
    for (i, &packed) in node_plan.iter().enumerate() {
        if packed == SLEEPING {
            continue;
        }
        // Buckets hold *internal* ids (in ascending external order — the
        // same order the sequential scatter produces, so pooled collection
        // stays bit-identical to sequential).
        let v = ext2int[base + i];
        if packed & BCAST_BIT != 0 {
            let ti = (packed & !BCAST_BIT) as usize;
            shard.b_nodes[shard.b_cnt[ti] as usize] = v;
            shard.b_cnt[ti] += 1;
        } else {
            let ti = packed as usize;
            shard.l_nodes[shard.l_cnt[ti] as usize] = v;
            shard.l_cnt[ti] += 1;
        }
    }
}

/// `Σ_v min(deg(v), cap)` over `nodes`, estimated from at most 32
/// evenly-strided samples (exact below that). Deterministic — no RNG, no
/// dependence on thread count — so the `Auto` choice it feeds stays
/// reproducible; and since every strategy is observationally identical,
/// the approximation can only ever change *speed*, never results.
fn approx_degree_sum(ig: &IntGraph, nodes: &[u32], cap: usize) -> usize {
    const SAMPLE: usize = 32;
    if nodes.len() <= SAMPLE {
        nodes.iter().map(|&v| ig.degree(v).min(cap)).sum()
    } else {
        // Ceiling stride so the samples span the whole bucket — a floor
        // stride of 1 for lengths in (SAMPLE, 2·SAMPLE) would sample only
        // a prefix, and buckets are in ascending node order (hubs first in
        // star-like scenarios).
        let stride = nodes.len().div_ceil(SAMPLE);
        let taken = nodes.len().div_ceil(stride);
        let sampled: usize = nodes.iter().step_by(stride).map(|&v| ig.degree(v).min(cap)).sum();
        sampled * nodes.len() / taken
    }
}

/// One listener's scan over a channel broadcaster list (shared by the
/// naive reference resolver and the adaptive listener paths). Internal ids.
#[inline]
fn scan_listener(ig: &IntGraph, bcasters: &[u32], l: u32) -> u32 {
    let mut heard_from = 0u32;
    let mut adjacent = 0u32;
    for &b in bcasters {
        if ig.are(l, b) {
            adjacent += 1;
            if adjacent > 1 {
                break;
            }
            heard_from = b;
        }
    }
    match adjacent {
        0 => OC_IDLE,
        1 => heard_from,
        _ => OC_COLLISION,
    }
}

/// Marks every broadcaster of touched channels `lo..hi` with its channel
/// index under a fresh scratch epoch — one pass over the bucket range,
/// valid for the whole range because a node broadcasts on at most one
/// channel per slot and only *listeners* are ever re-stamped by the
/// broadcaster-centric sweep (disjoint node sets). Enables the fused
/// listener walk of [`resolve_listener_fused`]. Returns the epoch.
fn mark_broadcast_channels(
    scratch: &mut Scratch,
    b_off: &[u32],
    bcast_nodes: &[u32],
    lo: usize,
    hi: usize,
) -> u64 {
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    for ti in lo..hi {
        for &b in &bcast_nodes[b_off[ti] as usize..b_off[ti + 1] as usize] {
            scratch.mark_epoch[b as usize] = epoch;
            scratch.hit_src[b as usize] = ti as u32;
        }
    }
    epoch
}

/// Fused listener probe for one channel: per listener, the cheaper of
/// scanning the channel's broadcaster list and walking its own CSR slice
/// against the slot-wide `(epoch, channel)` marks laid down by
/// [`mark_broadcast_channels`] — no per-channel broadcaster-set build or
/// teardown. Early exit at the second hit, as everywhere.
fn resolve_listener_fused(
    ig: &IntGraph,
    scratch: &Scratch,
    epoch: u64,
    tag: u32,
    bcasters: &[u32],
    listeners: &[u32],
    emit: &mut impl FnMut(usize, u32, u32),
) {
    let nb = bcasters.len();
    for (pos, &l) in listeners.iter().enumerate() {
        let neighbors = ig.neighbor_slice(l);
        let outcome = if nb <= neighbors.len() {
            scan_listener(ig, bcasters, l)
        } else {
            let mut count = 0u32;
            let mut src = 0u32;
            for &w in neighbors {
                let hit = (scratch.mark_epoch[w as usize] == epoch
                    && scratch.hit_src[w as usize] == tag) as u32;
                src = if count == 0 && hit != 0 { w } else { src };
                count += hit;
                if count >= 2 {
                    break;
                }
            }
            match count {
                0 => OC_IDLE,
                1 => src,
                _ => OC_COLLISION,
            }
        };
        emit(pos, l, outcome);
    }
}

/// Broadcaster-centric sweep: stamp the channel's listeners with a fresh
/// epoch, then walk each broadcaster's CSR neighbor slice once,
/// accumulating hit counts only in stamped cells. `O(L + Σ_b deg(b))`,
/// independent of how many listeners each broadcaster reaches.
fn resolve_broadcaster_centric(
    ig: &IntGraph,
    scratch: &mut Scratch,
    bcasters: &[u32],
    listeners: &[u32],
    emit: &mut impl FnMut(usize, u32, u32),
) {
    scratch.epoch += 1;
    let epoch = scratch.epoch;
    for &l in listeners {
        scratch.mark_epoch[l as usize] = epoch;
        scratch.hit_count[l as usize] = 0;
    }
    for &b in bcasters {
        for &w in ig.neighbor_slice(b) {
            let w = w as usize;
            if scratch.mark_epoch[w] == epoch {
                scratch.hit_count[w] += 1;
                scratch.hit_src[w] = b;
            }
        }
    }
    for (pos, &l) in listeners.iter().enumerate() {
        let outcome = match scratch.hit_count[l as usize] {
            0 => OC_IDLE,
            1 => scratch.hit_src[l as usize],
            _ => OC_COLLISION,
        };
        emit(pos, l, outcome);
    }
}

/// Listener-centric probe, adaptive per listener: each listener takes
/// the cheapest of three equivalent tests, all with early exit at the
/// second hit —
///
/// 1. *scan* the channel's broadcaster list with `O(1)` adjacency bits
///    (cost ≤ `B`, best when the list is shorter than the degree);
/// 2. *walk* its own CSR neighbor slice, testing each neighbor against the
///    channel's broadcaster bit set (cost ≤ `deg(l)` probes into an
///    `n/8`-byte, L1-resident set — for n = 5000 that is 632 bytes, versus
///    the 40 KB an epoch-stamp array would thrash; best for low-degree
///    listeners and crowded channels, where a couple of probes already
///    collide);
/// 3. *word-intersect* its adjacency row with the same broadcaster bit set
///    (cost ≤ `n/64` words, best for high-degree listeners on channels
///    with many broadcasters).
fn resolve_listener_centric(
    ig: &IntGraph,
    scratch: &mut Scratch,
    bcasters: &[u32],
    listeners: &[u32],
    emit: &mut impl FnMut(usize, u32, u32),
) {
    let nb = bcasters.len();
    let words = scratch.bcast_bits.words().len().max(1);
    // Both the walk and the word path probe the broadcaster bit set; build
    // it once per channel, un-build after (O(B) each way).
    for &b in bcasters {
        scratch.bcast_bits.insert(b as usize);
    }
    for (pos, &l) in listeners.iter().enumerate() {
        let neighbors = ig.neighbor_slice(l);
        let d = neighbors.len();
        // Dense rows only exist above the degree threshold; a listener in
        // the (rare) `words < d < threshold` band without one takes the
        // cheaper of the two remaining tests — any choice is
        // observationally identical.
        let has_row = ig.row(l).is_some();
        let outcome = if nb <= d && (nb <= words || !has_row) {
            scan_listener(ig, bcasters, l)
        } else if d <= words || !has_row {
            // Walk the listener's own neighbors against the bit set,
            // probing the backing words directly (the slice borrow keeps
            // the base pointer in a register across the walk). Hits are
            // accumulated as data dependencies, not an if-body: whether a
            // neighbor broadcasts is a coin flip the branch predictor
            // cannot learn, and a mispredict costs more than the probe.
            let bits = scratch.bcast_bits.words();
            let mut count = 0u32;
            let mut src = 0u32;
            for &w in neighbors {
                let hit = ((bits[(w >> 6) as usize] >> (w & 63)) & 1) as u32;
                src = if count == 0 && hit != 0 { w } else { src };
                count += hit;
                if count >= 2 {
                    break;
                }
            }
            match count {
                0 => OC_IDLE,
                1 => src,
                _ => OC_COLLISION,
            }
        } else {
            let row = ig.row(l).expect("checked above");
            match row.intersect_unique(&scratch.bcast_bits) {
                Intersection::Empty => OC_IDLE,
                Intersection::Unique(b) => b as u32,
                Intersection::Many => OC_COLLISION,
            }
        };
        emit(pos, l, outcome);
    }
    for &b in bcasters {
        scratch.bcast_bits.remove(b as usize);
    }
}

/// Resolves one channel with a *sequential* strategy, emitting
/// `(position-in-listener-list, listener, outcome)` triples (internal ids,
/// packed outcomes). The caller guarantees both populations are non-empty.
/// When `fused` carries the `(epoch, channel-tag)` of a
/// [`mark_broadcast_channels`] sweep covering this channel, the `Auto`
/// listener side uses the fused walk instead of building a per-channel
/// broadcaster set.
fn resolve_channel_into(
    ig: &IntGraph,
    scratch: &mut Scratch,
    strategy: Resolver,
    fused: Option<(u64, u32)>,
    bcasters: &[u32],
    listeners: &[u32],
    emit: &mut impl FnMut(usize, u32, u32),
) {
    debug_assert!(!bcasters.is_empty() && !listeners.is_empty());
    match strategy {
        Resolver::Naive => {
            for (pos, &l) in listeners.iter().enumerate() {
                emit(pos, l, scan_listener(ig, bcasters, l));
            }
        }
        Resolver::BroadcasterCentric => {
            resolve_broadcaster_centric(ig, scratch, bcasters, listeners, emit)
        }
        Resolver::ListenerCentric => {
            resolve_listener_centric(ig, scratch, bcasters, listeners, emit)
        }
        Resolver::Auto => {
            // Broadcaster side: one pass over all broadcasters' neighbor
            // slices — scattered increments, so weight them ~2× against
            // the listener side's sequential probes. Listener side: each
            // listener pays the cheapest of scanning the broadcaster
            // list, walking its own CSR slice, or one word sweep. Degree
            // sums are estimated from a deterministic sample: the choice
            // needs the order of magnitude, and exact sums would cost a
            // random read per node — a measurable slice of dense slots.
            // (Any choice is observationally identical, so sampling can
            // never change results.)
            let d_b = approx_degree_sum(ig, bcasters, usize::MAX);
            let nb = bcasters.len();
            let bcast_cost = listeners.len() + 2 * d_b;
            if let Some((epoch, tag)) = fused {
                let listen_cost = approx_degree_sum(ig, listeners, nb);
                if bcast_cost <= listen_cost {
                    resolve_broadcaster_centric(ig, scratch, bcasters, listeners, emit)
                } else {
                    resolve_listener_fused(ig, scratch, epoch, tag, bcasters, listeners, emit)
                }
            } else {
                let words = scratch.bcast_bits.words().len().max(1);
                let per_listener_cap = nb.min(words);
                let listen_cost = 2 * nb + approx_degree_sum(ig, listeners, per_listener_cap);
                if bcast_cost <= listen_cost {
                    resolve_broadcaster_centric(ig, scratch, bcasters, listeners, emit)
                } else {
                    resolve_listener_centric(ig, scratch, bcasters, listeners, emit)
                }
            }
        }
        Resolver::ParallelSharded { .. } => {
            unreachable!("sharded resolution dispatches whole slots, not single channels")
        }
    }
}

impl<'net, P: Protocol> Engine<'net, P> {
    /// Creates an engine for `net` with the default [`Resolver::Auto`],
    /// constructing each node's protocol via `make`, and deriving all node
    /// RNG streams from `seed`.
    pub fn new(net: &'net Network, seed: u64, make: impl FnMut(NodeCtx) -> P) -> Self {
        Engine::with_resolver(net, seed, Resolver::Auto, make)
    }

    /// Like [`Engine::new`] but with an explicit resolution strategy —
    /// used by differential tests, resolver benchmarks, and callers opting
    /// into [`Resolver::ParallelSharded`].
    pub fn with_resolver(
        net: &'net Network,
        seed: u64,
        resolver: Resolver,
        make: impl FnMut(NodeCtx) -> P,
    ) -> Self {
        Engine::with_renumbering(net, seed, resolver, Renumbering::default(), make)
    }

    /// Like [`Engine::with_resolver`] but with an explicit internal
    /// [`Renumbering`] — all renumberings are observationally identical, so
    /// this is a performance/testing knob, not a semantic one.
    pub fn with_renumbering(
        net: &'net Network,
        seed: u64,
        resolver: Resolver,
        renumbering: Renumbering,
        mut make: impl FnMut(NodeCtx) -> P,
    ) -> Self {
        let n = net.len();
        let c = net.channels_per_node();
        assert!(
            n < OC_MIN_SENTINEL as usize,
            "{n} nodes collide with the packed-outcome sentinel range"
        );
        // Dense channel remap so scratch vectors are O(universe), not
        // O(max raw id): mark the raw ids present, then number them in
        // ascending raw order (no sort — O(n·c + max_raw)).
        let mut max_raw = 0u32;
        for v in 0..n {
            for g in net.channel_map(NodeId(v as u32)) {
                max_raw = max_raw.max(g.0);
            }
        }
        let mut present = vec![false; max_raw as usize + 1];
        for v in 0..n {
            for g in net.channel_map(NodeId(v as u32)) {
                present[g.index()] = true;
            }
        }
        let mut dense = vec![u32::MAX; max_raw as usize + 1];
        let mut dense_to_raw = Vec::new();
        let mut universe = 0u32;
        for (raw, &p) in present.iter().enumerate() {
            if p {
                dense[raw] = universe;
                dense_to_raw.push(raw as u32);
                universe += 1;
            }
        }
        // Flat translation table: local label l of node v at xlate[v*c + l].
        let mut xlate = vec![0u32; n * c];
        for v in 0..n {
            for (l, g) in net.channel_map(NodeId(v as u32)).iter().enumerate() {
                xlate[v * c + l] = dense[g.index()];
            }
        }
        let universe = universe as usize;

        let protocols = (0..n)
            .map(|v| make(NodeCtx { id: NodeId(v as u32), num_channels: c as u16 }))
            .collect();
        let rngs = (0..n).map(|v| stream_rng(seed, v as u64)).collect();
        let (ext2int, int2ext) = renumber_perm(net, &renumbering);
        let ig = IntGraph::build(net, &ext2int, &int2ext);
        Engine {
            net,
            protocols,
            rngs,
            slot: 0,
            counters: Counters::default(),
            resolver,
            seed,
            c,
            xlate,
            dense_to_raw,
            spectrum: None,
            node_plan: vec![SLEEPING; n],
            actions: Vec::with_capacity(n),
            outcomes: Vec::with_capacity(n),
            renumbering,
            ext2int,
            int2ext,
            ig,
            collect: Vec::new(),
            phase1_min_nodes: DEFAULT_PHASE1_POOL_MIN_NODES,
            phase1_tune: Some(Phase1Tune::default()),
            phase3_min_nodes: DEFAULT_PHASE3_POOL_MIN_NODES,
            deliver: Vec::new(),
            touched: Vec::new(),
            chan_epoch: vec![0; universe],
            chan_slot: vec![0; universe],
            slot_epoch: 0,
            b_cnt: Vec::new(),
            l_cnt: Vec::new(),
            b_off: Vec::new(),
            l_off: Vec::new(),
            bcast_nodes: Vec::new(),
            listen_nodes: Vec::new(),
            shards: vec![ShardSlot::new(n)],
            shard_weights: Vec::new(),
            shard_bounds: Vec::new(),
            pool: None,
            phase_timings: None,
        }
    }

    /// Re-arms the engine for a fresh run on the same network: rebuilds
    /// every node's protocol via `make`, re-derives all node RNG streams
    /// from `seed`, and zeroes the slot counter and [`Counters`].
    ///
    /// Everything expensive survives: the channel translation table, the
    /// flat action buckets, the per-shard scratch, and — crucially — the
    /// persistent worker pool, whose threads stay parked rather than being
    /// torn down and re-spawned. A reset engine is observationally
    /// indistinguishable from a freshly constructed one (the epoch-stamped
    /// scratch makes stale state invisible by construction; enforced by the
    /// reuse regression test in `tests/tests/engine_equiv.rs`), so trial
    /// harnesses can amortize engine setup across many runs.
    pub fn reset(&mut self, seed: u64, mut make: impl FnMut(NodeCtx) -> P) {
        let n = self.net.len();
        let c = self.c;
        self.protocols = (0..n)
            .map(|v| make(NodeCtx { id: NodeId(v as u32), num_channels: c as u16 }))
            .collect();
        self.rngs = (0..n).map(|v| stream_rng(seed, v as u64)).collect();
        self.seed = seed;
        self.slot = 0;
        self.counters = Counters::default();
        // The spectrum process rewinds to its pre-run state; its draws are
        // keyed by (seed, slot, channel), so a reset engine reproduces a
        // fresh engine's busy masks bit for bit.
        if let Some(sp) = self.spectrum.as_mut() {
            sp.reset();
        }
        // `slot_epoch` keeps counting monotonically: the stamps in
        // `chan_epoch` and the shard scratches only ever compare for
        // equality with the *current* epoch, so continuing the sequence is
        // exactly as invisible as starting over — and cheaper.
    }

    /// The network this engine runs on.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The current slot index (number of slots already executed).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// The master seed this engine's streams are currently derived from
    /// (the `seed` of the last [`Engine::new`] / [`Engine::reset`]).
    ///
    /// This is the only value checkpoint/resume machinery needs to
    /// persist to replay a run bit-identically: every node stream, every
    /// per-(slot, channel) stream, and the spectrum process are pure
    /// functions of it (plus the immutable network), so re-running
    /// `reset(seed, make)` reproduces the run exactly.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Aggregate counters so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// The active resolution strategy.
    pub fn resolver(&self) -> Resolver {
        self.resolver
    }

    /// Switches the resolution strategy (takes effect from the next slot;
    /// all strategies — sequential and sharded — are observationally
    /// identical, so this never changes results).
    pub fn set_resolver(&mut self, resolver: Resolver) {
        self.resolver = resolver;
    }

    /// The node-count threshold at or above which a
    /// [`Resolver::ParallelSharded`] engine routes phase-1 action
    /// collection through its worker pool (see
    /// [`DEFAULT_PHASE1_POOL_MIN_NODES`]).
    pub fn phase1_pool_min_nodes(&self) -> usize {
        self.phase1_min_nodes
    }

    /// Sets the pooled-collection threshold: `0` forces phase-1 pooling on
    /// (whenever the resolver is sharded), `usize::MAX` forces it off.
    /// Pinning a threshold disables the auto-tuner. Purely a performance
    /// knob — the pooled and sequential collection paths are bit-identical
    /// (enforced by the batch differential suite), so this never changes
    /// results.
    pub fn set_phase1_pool_min_nodes(&mut self, min_nodes: usize) {
        self.phase1_min_nodes = min_nodes;
        self.phase1_tune = None;
    }

    /// Turns the phase-1 routing auto-tuner on or off. On (the default for
    /// a fresh engine), the first `PHASE1_TUNE_SLOTS` sharded slots
    /// collect sequentially and the next as many through the pool, both
    /// timed, and the faster routing is locked in for the rest of the
    /// engine's life (surviving [`Engine::reset`]). Both routings are
    /// bit-identical, so tuning never changes results — it only replaces
    /// the static [`DEFAULT_PHASE1_POOL_MIN_NODES`] guess with a measured
    /// decision.
    pub fn set_phase1_pool_autotune(&mut self, on: bool) {
        self.phase1_tune = on.then(Phase1Tune::default);
    }

    /// The node-count threshold at or above which a
    /// [`Resolver::ParallelSharded`] engine routes phase-3 feedback
    /// delivery through its worker pool (see
    /// [`DEFAULT_PHASE3_POOL_MIN_NODES`]).
    pub fn phase3_pool_min_nodes(&self) -> usize {
        self.phase3_min_nodes
    }

    /// Sets the pooled-delivery threshold: `0` forces phase-3 pooling on
    /// (whenever the resolver is sharded), `usize::MAX` forces it off.
    /// Purely a performance knob — the pooled and sequential delivery
    /// paths are bit-identical (enforced by the batch differential suite),
    /// so this never changes results.
    pub fn set_phase3_pool_min_nodes(&mut self, min_nodes: usize) {
        self.phase3_min_nodes = min_nodes;
    }

    /// Turns per-phase wall-clock timing on or off (off for a fresh
    /// engine). Enabling zeroes any previous totals; disabling discards
    /// them. Costs ~5 monotonic clock reads per slot while on, and is
    /// observationally invisible — counters, traces, and RNG streams are
    /// bit-identical with timing on or off (see [`PhaseTimings`]).
    pub fn set_phase_timing(&mut self, on: bool) {
        self.phase_timings = on.then(PhaseTimings::default);
    }

    /// Cumulative per-phase timings since [`Engine::set_phase_timing`]
    /// enabled them; `None` while timing is off.
    pub fn phase_timings(&self) -> Option<PhaseTimings> {
        self.phase_timings
    }

    /// The active internal [`Renumbering`].
    pub fn renumbering(&self) -> &Renumbering {
        &self.renumbering
    }

    /// Heap bytes of the engine's per-node and adjacency structures (the
    /// internal CSR + dense rows, translation table, permutations, packed
    /// outcomes) plus the lazily allocated pooled-phase scratch (per-chunk
    /// collection shards, per-chunk delivery counter deltas) — reported
    /// next to the network footprint by the huge-sparse bench row to prove
    /// `O(n + m)` setup. The `huge_smoke` CI gate asserts this both before
    /// and after a pooled run, so any hidden `O(n · threads)` buffer a
    /// pooled path allocates on first use trips the gate.
    pub fn internal_memory_bytes(&self) -> usize {
        self.ig.memory_bytes()
            + (self.xlate.capacity()
                + self.ext2int.capacity()
                + self.int2ext.capacity()
                + self.node_plan.capacity()
                + self.outcomes.capacity())
                * std::mem::size_of::<u32>()
            + self.collect.iter().map(CollectShard::memory_bytes).sum::<usize>()
            + self.deliver.capacity() * std::mem::size_of::<DeliverDelta>()
    }

    /// Installs primary-user spectrum dynamics (see [`crate::spectrum`]):
    /// from the next slot on, the process is advanced once per slot and
    /// channels it marks busy behave as occupied — broadcasts on them are
    /// lost and listeners hear noise (the existing collision outcome).
    ///
    /// [`SpectrumDynamics::Static`] uninstalls the layer entirely (an
    /// engine with `Static` dynamics is bit-identical to one that never
    /// had any). The process state is derived from the engine's master
    /// seed via the per-(slot, channel) streams of
    /// [`crate::rng::channel_slot_seed`], so results are deterministic and
    /// identical across all [`Resolver`] modes and thread counts; installing
    /// mid-run starts the process fresh at the current slot.
    pub fn set_spectrum(&mut self, dynamics: SpectrumDynamics) {
        self.spectrum = if dynamics.is_static() {
            None
        } else {
            Some(SpectrumState::new(dynamics, &self.dense_to_raw))
        };
    }

    /// The installed spectrum state (utilization, busy history), if any.
    /// `None` when no dynamics are installed (≡ [`SpectrumDynamics::Static`]).
    pub fn spectrum(&self) -> Option<&SpectrumState> {
        self.spectrum.as_ref()
    }

    /// Mutable access to the spectrum state — for knobs like
    /// [`SpectrumState::set_record_history`]. The process itself offers no
    /// public mutators, so determinism is not at risk.
    pub fn spectrum_mut(&mut self) -> Option<&mut SpectrumState> {
        self.spectrum.as_mut()
    }

    /// The deterministic RNG stream belonging to `channel` in the current
    /// slot. Phase-2 resolution is deterministic today; any future
    /// randomized channel effect (fading, capture, external noise) must
    /// draw from this stream, which is keyed by `(run seed, slot, channel)`
    /// — independent of channel visit order and shard thread count — so the
    /// sharded resolver stays bit-identical at any parallelism (see
    /// [`crate::rng::channel_slot_seed`]).
    pub fn channel_rng(&self, channel: GlobalChannel) -> SmallRng {
        channel_slot_rng(self.seed, self.slot, channel.0)
    }

    /// Read access to the protocol instances (for progress probes).
    pub fn protocol(&self, v: NodeId) -> &P {
        &self.protocols[v.index()]
    }

    /// Applies `f` to every protocol in node order.
    pub fn for_each_protocol(&self, mut f: impl FnMut(NodeId, &P)) {
        for (i, p) in self.protocols.iter().enumerate() {
            f(NodeId(i as u32), p);
        }
    }

    /// `true` once every node's protocol reports completion.
    pub fn all_complete(&self) -> bool {
        self.protocols.iter().all(|p| p.is_complete())
    }

    /// Executes exactly one slot.
    ///
    /// The `Send` bounds exist for the pooled phase-1 collection path,
    /// which hands protocol and message state to worker threads; the
    /// `Sync` bound for the pooled phase-3 delivery path, whose workers
    /// share the slot's action buffer read-only while decoding `Heard`
    /// borrows. Every protocol in this workspace satisfies them.
    pub fn step(&mut self)
    where
        P: Send,
        P::Message: Send + Sync,
    {
        let slot = Slot(self.slot);
        let n = self.net.len();
        self.touched.clear();
        self.b_cnt.clear();
        self.l_cnt.clear();
        self.slot_epoch += 1;
        let epoch = self.slot_epoch;

        // Optional phase timing: one clock read here plus one per phase
        // boundary (laps share their boundary read). `None` when timing is
        // off — zero clock reads, and nothing below ever branches on a
        // measured value, so enabling this is observationally invisible.
        let mut mark = self.phase_timings.is_some().then(std::time::Instant::now);

        // Phase 0: advance the primary-user spectrum process into this
        // slot (sequential, per-(slot, channel)-keyed draws — the busy
        // mask is identical whatever resolver or thread count follows).
        // With no dynamics installed the phase is a no-op and its time is
        // exactly zero — skipping the lap (one clock read per slot) is
        // both cheaper and more accurate than measuring it.
        let spectrum_ns = if let Some(sp) = self.spectrum.as_mut() {
            sp.advance(self.seed, self.slot);
            lap(&mut mark)
        } else {
            0
        };

        // Phase 1: collect every node's action through `act_batch`,
        // translate local labels, count per-channel populations, and
        // counting-sort into the flat channel buckets — chunked across the
        // worker pool when the engine is sharded and the routing (measured
        // by the auto-tuner, or the static threshold) says pooling pays.
        let pool_threads = match self.resolver {
            Resolver::ParallelSharded { threads } if threads >= 2 && n >= 2 => Some(threads),
            _ => None,
        };
        let route_pooled = pool_threads.is_some()
            && match &self.phase1_tune {
                Some(t) => t.measured >= PHASE1_TUNE_SLOTS,
                None => n >= self.phase1_min_nodes,
            };
        let timer = pool_threads.and(self.phase1_tune.as_ref()).map(|_| std::time::Instant::now());
        match pool_threads {
            Some(threads) if route_pooled => self.collect_pooled(threads, slot, epoch),
            _ => self.collect_sequential(slot, epoch),
        }
        if let Some(start) = timer {
            let ns = start.elapsed().as_nanos();
            if let Some(t) = self.phase1_tune.as_mut() {
                if t.measured < PHASE1_TUNE_SLOTS {
                    t.seq_ns += ns;
                } else {
                    t.pooled_ns += ns;
                }
                t.measured += 1;
                if t.measured == 2 * PHASE1_TUNE_SLOTS {
                    // Lock the measured winner by collapsing the threshold.
                    self.phase1_min_nodes = if t.pooled_ns < t.seq_ns { 0 } else { usize::MAX };
                    self.phase1_tune = None;
                }
            }
        }

        // PU accounting over the touched channels (O(t), sequential in
        // every mode): a busy touched channel swallows its broadcasts.
        // Listener-side effects are applied during resolution below.
        if let Some(sp) = &self.spectrum {
            let mask = sp.mask();
            for ti in 0..self.touched.len() {
                if mask.contains(self.touched[ti] as usize) {
                    self.counters.pu_busy_channel_slots += 1;
                    self.counters.pu_blocked_broadcasts +=
                        (self.b_off[ti + 1] - self.b_off[ti]) as u64;
                }
            }
        }
        // The PU sweep and tuner bookkeeping above are charged to phase 1:
        // both are O(touched) postludes of collection, not resolution work.
        let collect_ns = lap(&mut mark);

        // Phase 2: resolve each touched channel — sharded across the pool
        // when requested, sequentially otherwise.
        let t = self.touched.len();
        let route_sharded = matches!(self.resolver, Resolver::ParallelSharded { threads } if threads >= 2)
            && t >= 2;
        match self.resolver {
            Resolver::ParallelSharded { threads } if threads >= 2 && t >= 2 => {
                self.resolve_all_sharded(threads);
            }
            r => self.resolve_all_sequential(r.per_channel()),
        }
        let resolve_ns = lap(&mut mark);

        // Phase 3: batched feedback delivery. A counting sweep folds the
        // per-outcome counter updates in one branch-predictable pass, then
        // `feedback_batch` hands the protocols their packed outcome range —
        // heard messages are borrowed from the broadcasters' entries in the
        // action buffer, zero clones. On a sharded engine at large n the
        // delivery itself runs on the worker pool in contiguous node-range
        // chunks (bit-identical: a node's feedback depends only on its own
        // outcome, action buffer, and RNG stream, and the per-chunk counter
        // deltas merge to the sequential totals exactly).
        let deliver_pooled = pool_threads.is_some() && n >= self.phase3_min_nodes;
        match pool_threads {
            Some(threads) if n >= self.phase3_min_nodes => self.deliver_pooled(threads, slot),
            _ => self.deliver_sequential(slot),
        }
        let deliver_ns = lap(&mut mark);

        if let Some(pt) = self.phase_timings.as_mut() {
            pt.slots += 1;
            pt.spectrum_ns += spectrum_ns;
            if route_pooled {
                pt.collect_pooled_ns += collect_ns;
                pt.collect_pooled_slots += 1;
            } else {
                pt.collect_sequential_ns += collect_ns;
            }
            if route_sharded {
                pt.resolve_sharded_ns += resolve_ns;
                pt.resolve_sharded_slots += 1;
            } else {
                pt.resolve_sequential_ns += resolve_ns;
            }
            if deliver_pooled {
                pt.deliver_pooled_ns += deliver_ns;
                pt.deliver_pooled_slots += 1;
            } else {
                pt.deliver_sequential_ns += deliver_ns;
            }
        }

        self.slot += 1;
        self.counters.slots += 1;
    }

    /// Sequential phase 3: the counting sweep over the whole outcome
    /// range, then one `feedback_batch` call over the whole node range.
    fn deliver_sequential(&mut self, slot: Slot) {
        self.counters.apply(count_outcomes(&self.outcomes));
        let Engine { protocols, rngs, actions, outcomes, .. } = self;
        let mut ctx = BatchCtx::new(slot, rngs);
        P::feedback_batch(protocols, &mut ctx, FeedbackBatch::new(outcomes, actions));
    }

    /// Pooled phase 3: contiguous node-range chunks of (protocols, RNG
    /// streams, outcomes) delivered by the pool workers plus the calling
    /// thread, each chunk folding its own counter delta; deltas merge in
    /// chunk order after the join. Chunk boundaries mirror
    /// [`Engine::collect_pooled`]; every chunk reads the *full* shared
    /// action buffer, since broadcaster ids are global.
    fn deliver_pooled(&mut self, threads: usize, slot: Slot)
    where
        P: Send,
        P::Message: Sync,
    {
        let n = self.net.len();
        let groups = threads.min(n);
        let chunk = n.div_ceil(groups);
        let groups = n.div_ceil(chunk);
        debug_assert!(groups >= 2, "caller guarantees threads >= 2 and n >= 2");
        self.ensure_pool(threads - 1);
        while self.deliver.len() < groups {
            self.deliver.push(DeliverDelta::default());
        }
        {
            let Engine { protocols, rngs, actions, outcomes, deliver, pool, .. } = self;
            let actions: &[Action<P::Message>] = actions;

            struct DeliverTask<'a, P: Protocol> {
                protos: &'a mut [P],
                rngs: &'a mut [SmallRng],
                outc: &'a [u32],
                delta: &'a mut DeliverDelta,
            }
            let mut tasks: Vec<DeliverTask<'_, P>> = protocols
                .chunks_mut(chunk)
                .zip(rngs.chunks_mut(chunk))
                .zip(outcomes.chunks(chunk))
                .zip(deliver[..groups].iter_mut())
                .map(|(((protos, rngs), outc), delta)| DeliverTask { protos, rngs, outc, delta })
                .collect();
            debug_assert_eq!(tasks.len(), groups);

            let run_task = |t: &mut DeliverTask<'_, P>| {
                *t.delta = count_outcomes(t.outc);
                let mut ctx = BatchCtx::new(slot, t.rngs);
                P::feedback_batch(t.protos, &mut ctx, FeedbackBatch::new(t.outc, actions));
            };
            let (first, rest) = tasks.split_at_mut(1);
            pool.as_mut().expect("pool ensured above").run_with(
                rest,
                |_, t| run_task(t),
                || run_task(&mut first[0]),
            );
        }
        for i in 0..groups {
            self.counters.apply(self.deliver[i]);
        }
    }

    /// Sequential phase 1: one `act_batch` call over the whole node range,
    /// then a counting pass over the returned actions and the classic
    /// prefix-sum + counting-sort scatter into the global channel buckets.
    fn collect_sequential(&mut self, slot: Slot, epoch: u64) {
        let n = self.net.len();
        self.actions.clear();
        self.outcomes.clear();
        {
            let Engine { protocols, rngs, actions, .. } = self;
            let mut ctx = BatchCtx::new(slot, rngs);
            P::act_batch(protocols, &mut ctx, actions);
        }
        assert_eq!(self.actions.len(), n, "act_batch must emit one action per node");

        // Phase 1a: translate + count with epoch-stamped first-touch
        // detection.
        let (mut nb, mut nl, mut ns) = (0u64, 0u64, 0u64);
        {
            let Engine {
                actions,
                xlate,
                c,
                node_plan,
                outcomes,
                touched,
                chan_epoch,
                chan_slot,
                b_cnt,
                l_cnt,
                ..
            } = self;
            let (c, xlate) = (*c, &xlate[..]);
            for (v, action) in actions.iter().enumerate() {
                let (packed, outcome) = match action {
                    Action::Broadcast { channel, .. } => {
                        nb += 1;
                        let ch = translate_label(xlate, c, v, *channel);
                        let ti =
                            touch_channel(touched, chan_epoch, chan_slot, b_cnt, l_cnt, ch, epoch);
                        b_cnt[ti as usize] += 1;
                        (ti | BCAST_BIT, OC_SENT)
                    }
                    Action::Listen { channel } => {
                        nl += 1;
                        let ch = translate_label(xlate, c, v, *channel);
                        let ti =
                            touch_channel(touched, chan_epoch, chan_slot, b_cnt, l_cnt, ch, epoch);
                        l_cnt[ti as usize] += 1;
                        (ti, OC_IDLE)
                    }
                    Action::Sleep => {
                        ns += 1;
                        (SLEEPING, OC_SLEPT)
                    }
                };
                node_plan[v] = packed;
                outcomes.push(outcome);
            }
        }
        self.counters.broadcasts += nb;
        self.counters.listens += nl;
        self.counters.sleeps += ns;

        // Phase 1b: counting-sort scatter into the flat channel buckets
        // (prefix sums over the touched channels, then one pass over the
        // nodes — ascending node order within each bucket by construction).
        let t = self.touched.len();
        self.b_off.clear();
        self.l_off.clear();
        self.b_off.push(0);
        self.l_off.push(0);
        let (mut tb, mut tl) = (0u32, 0u32);
        for ti in 0..t {
            tb += self.b_cnt[ti];
            tl += self.l_cnt[ti];
            self.b_off.push(tb);
            self.l_off.push(tl);
        }
        self.bcast_nodes.resize(tb as usize, 0);
        self.listen_nodes.resize(tl as usize, 0);
        // Reuse the count vectors as scatter cursors.
        self.b_cnt.copy_from_slice(&self.b_off[..t]);
        self.l_cnt.copy_from_slice(&self.l_off[..t]);
        for v in 0..n {
            let packed = self.node_plan[v];
            if packed == SLEEPING {
                continue;
            }
            // Buckets hold *internal* ids, scattered in ascending external
            // order (matching the pooled path exactly).
            if packed & BCAST_BIT != 0 {
                let ti = (packed & !BCAST_BIT) as usize;
                let cur = self.b_cnt[ti] as usize;
                self.bcast_nodes[cur] = self.ext2int[v];
                self.b_cnt[ti] += 1;
            } else {
                let ti = packed as usize;
                let cur = self.l_cnt[ti] as usize;
                self.listen_nodes[cur] = self.ext2int[v];
                self.l_cnt[ti] += 1;
            }
        }
    }

    /// Pooled phase 1: the node range is split into `threads` contiguous
    /// chunks; the calling thread plus `threads − 1` pool workers each run
    /// [`collect_chunk`] on one chunk (its `act_batch` call, local counts,
    /// and local buckets), and the caller then merges the chunk results:
    ///
    /// * the **global touched-channel list** is rebuilt by walking the
    ///   chunk-local lists in ascending chunk order and keeping first
    ///   occurrences — which reproduces the sequential path's global
    ///   first-touch order *exactly*, because chunks cover ascending node
    ///   ranges and each local list is in first-touch (node) order;
    /// * per-channel counts are summed and prefix-summed into the global
    ///   CSR offsets, and each chunk's local bucket segments are copied in
    ///   chunk order — ascending chunk order × ascending node order within
    ///   a chunk = globally ascending node order within every bucket,
    ///   exactly what the sequential scatter produces.
    ///
    /// Node RNG streams are untouched by the partition (stream `i` is only
    /// ever advanced by node `i`'s own draws, in slot order), so the pooled
    /// path is bit-identical to the sequential one at any thread count —
    /// enforced by the batch differential suite in
    /// `tests/tests/engine_equiv.rs`.
    fn collect_pooled(&mut self, threads: usize, slot: Slot, epoch: u64)
    where
        P: Send,
        P::Message: Send,
    {
        let n = self.net.len();
        let groups = threads.min(n);
        let chunk = n.div_ceil(groups);
        let groups = n.div_ceil(chunk);
        debug_assert!(groups >= 2, "caller guarantees threads >= 2 and n >= 2");
        self.ensure_pool(threads - 1);
        let universe = self.chan_epoch.len();
        while self.collect.len() < groups {
            self.collect.push(CollectShard::new(universe));
        }
        self.actions.clear();
        self.outcomes.clear();
        self.outcomes.resize(n, OC_IDLE);

        // Fan out: each chunk task owns disjoint slices of the per-node
        // state plus one private shard; shard 0 runs on the calling thread.
        {
            let Engine {
                protocols,
                rngs,
                node_plan,
                outcomes,
                collect,
                xlate,
                ext2int,
                c,
                pool,
                ..
            } = self;
            let (c, xlate, ext2int) = (*c, &xlate[..], &ext2int[..]);
            struct ChunkTask<'a, P: Protocol> {
                base: usize,
                protos: &'a mut [P],
                rngs: &'a mut [SmallRng],
                plan: &'a mut [u32],
                outc: &'a mut [u32],
                shard: &'a mut CollectShard<P::Message>,
            }
            let mut tasks: Vec<ChunkTask<'_, P>> = Vec::with_capacity(groups);
            for (i, ((((protos, rngs), plan), outc), shard)) in protocols
                .chunks_mut(chunk)
                .zip(rngs.chunks_mut(chunk))
                .zip(node_plan.chunks_mut(chunk))
                .zip(outcomes.chunks_mut(chunk))
                .zip(collect[..groups].iter_mut())
                .enumerate()
            {
                tasks.push(ChunkTask { base: i * chunk, protos, rngs, plan, outc, shard });
            }
            let run_task = |t: &mut ChunkTask<'_, P>| {
                collect_chunk(
                    slot, t.base, xlate, ext2int, c, t.protos, t.rngs, t.plan, t.outc, t.shard,
                );
            };
            let (first, rest) = tasks.split_at_mut(1);
            pool.as_mut().expect("pool ensured above").run_with(
                rest,
                |_, t| run_task(t),
                || run_task(&mut first[0]),
            );
        }

        // Merge 1: global first-touch channel list + summed counts.
        {
            let Engine { collect, touched, chan_epoch, chan_slot, b_cnt, l_cnt, .. } = self;
            for shard in &collect[..groups] {
                for (lti, &ch) in shard.touched.iter().enumerate() {
                    let ti = touch_channel(
                        touched,
                        chan_epoch,
                        chan_slot,
                        b_cnt,
                        l_cnt,
                        ch as usize,
                        epoch,
                    ) as usize;
                    b_cnt[ti] += shard.b_off[lti + 1] - shard.b_off[lti];
                    l_cnt[ti] += shard.l_off[lti + 1] - shard.l_off[lti];
                }
            }
        }

        // Merge 2: global prefix sums over the merged counts.
        let t = self.touched.len();
        self.b_off.clear();
        self.l_off.clear();
        self.b_off.push(0);
        self.l_off.push(0);
        let (mut tb, mut tl) = (0u32, 0u32);
        for ti in 0..t {
            tb += self.b_cnt[ti];
            tl += self.l_cnt[ti];
            self.b_off.push(tb);
            self.l_off.push(tl);
        }
        self.bcast_nodes.resize(tb as usize, 0);
        self.listen_nodes.resize(tl as usize, 0);
        self.b_cnt.copy_from_slice(&self.b_off[..t]);
        self.l_cnt.copy_from_slice(&self.l_off[..t]);

        // Merge 3: copy each chunk's local bucket segments into the global
        // buckets (contiguous memcpys, cursor per channel), collect the
        // chunk actions in node order, and sum the action tallies.
        {
            let Engine {
                collect,
                chan_slot,
                b_cnt,
                l_cnt,
                bcast_nodes,
                listen_nodes,
                actions,
                counters,
                ..
            } = self;
            for shard in &mut collect[..groups] {
                for (lti, &ch) in shard.touched.iter().enumerate() {
                    let ti = chan_slot[ch as usize] as usize;
                    let src =
                        &shard.b_nodes[shard.b_off[lti] as usize..shard.b_off[lti + 1] as usize];
                    let cur = b_cnt[ti] as usize;
                    bcast_nodes[cur..cur + src.len()].copy_from_slice(src);
                    b_cnt[ti] += src.len() as u32;
                    let src =
                        &shard.l_nodes[shard.l_off[lti] as usize..shard.l_off[lti + 1] as usize];
                    let cur = l_cnt[ti] as usize;
                    listen_nodes[cur..cur + src.len()].copy_from_slice(src);
                    l_cnt[ti] += src.len() as u32;
                }
                actions.append(&mut shard.out);
                counters.broadcasts += shard.nb;
                counters.listens += shard.nl;
                counters.sleeps += shard.ns;
            }
        }
        debug_assert_eq!(self.actions.len(), n);
    }

    /// Ensures the engine owns a pool with exactly `workers` worker
    /// threads, recreating it (graceful teardown of the old one) if the
    /// count changed since the last pooled slot. Shared by pooled phase-1
    /// collection and sharded phase-2 resolution, which therefore reuse
    /// the same parked threads within a slot.
    fn ensure_pool(&mut self, workers: usize) {
        if self.pool.as_ref().map(WorkerPool::workers) != Some(workers) {
            self.pool = Some(WorkerPool::new(workers));
        }
    }

    /// Sequentially resolves every touched channel with `strategy`, writing
    /// `self.outcomes` in place.
    fn resolve_all_sequential(&mut self, strategy: Resolver) {
        let Engine {
            ig,
            int2ext,
            c,
            touched,
            b_off,
            l_off,
            bcast_nodes,
            listen_nodes,
            shards,
            outcomes,
            spectrum,
            ..
        } = self;
        let busy = spectrum.as_ref().map(SpectrumState::mask);
        let scratch = &mut shards[0].scratch;
        let t = touched.len();
        // Many near-empty channels: one slot-wide marking pass lets every
        // listener-side probe run against `(epoch, channel)` tags instead
        // of a per-channel broadcaster set (the fused listener pass). With
        // populated buckets the per-probe tag loads cost more than the
        // per-channel set builds they avoid — see `FUSED_MAX_AVG_BUCKET`.
        let active = (b_off[t] + l_off[t]) as usize;
        let fused_epoch = (strategy == Resolver::Auto
            && t >= 2
            && *c <= FUSED_MAX_C
            && active <= FUSED_MAX_AVG_BUCKET * t)
            .then(|| mark_broadcast_channels(scratch, b_off, bcast_nodes, 0, t));
        for ti in 0..t {
            let bs = &bcast_nodes[b_off[ti] as usize..b_off[ti + 1] as usize];
            let ls = &listen_nodes[l_off[ti] as usize..l_off[ti + 1] as usize];
            if busy.is_some_and(|m| m.contains(touched[ti] as usize)) {
                // PU-busy channel: broadcasts are lost, every listener
                // hears noise (even with zero broadcasters — the primary
                // user itself occupies the medium).
                for &l in ls {
                    outcomes[int2ext[l as usize] as usize] = OC_PU_BUSY;
                }
                continue;
            }
            if bs.is_empty() || ls.is_empty() {
                // No broadcasters: listeners keep their provisional Idle.
                // No listeners: nothing can be heard.
                continue;
            }
            let fused = fused_epoch.map(|e| (e, ti as u32));
            resolve_channel_into(ig, scratch, strategy, fused, bs, ls, &mut |_, l, oc| {
                outcomes[int2ext[l as usize] as usize] =
                    if oc < OC_MIN_SENTINEL { int2ext[oc as usize] } else { oc };
            });
        }
    }

    /// Resolves the touched channels across `threads`-way parallelism: the
    /// calling thread plus `threads − 1` persistent pool workers.
    ///
    /// The partition is contiguous in touched order and balanced by a
    /// deterministic per-channel cost proxy (`1 + L + Σ_b deg(b)`); each
    /// shard resolves its channels with the `Auto` heuristic into a private
    /// outcome buffer using private scratch, and the buffers are scattered
    /// into `self.outcomes` after the join. Channels are independent within
    /// a slot and resolution is deterministic, so the result is
    /// bit-identical to sequential resolution at any thread count.
    ///
    /// Workers live in a persistent [`WorkerPool`] owned by the engine:
    /// parked between slots and woken by a generation counter, so the
    /// per-slot cost is one wake/park round-trip instead of the
    /// spawn/join (~tens of µs) the previous `std::thread::scope`
    /// implementation paid — the difference between losing and winning on
    /// the small-slot, many-slot workloads the paper's Ω(polylog n)-slot
    /// primitives produce (see `small_slot_200` in the engine bench). The
    /// pool is spawned on the first sharded slot and re-sized if the
    /// resolver's thread count changes; shard 0 always runs on the calling
    /// thread, overlapping with the workers.
    fn resolve_all_sharded(&mut self, threads: usize) {
        let t = self.touched.len();
        let n = self.net.len();
        let groups = threads.min(t);
        debug_assert!(groups >= 2);

        // Deterministic cost-balanced contiguous partition.
        self.shard_weights.clear();
        for ti in 0..t {
            let bs = &self.bcast_nodes[self.b_off[ti] as usize..self.b_off[ti + 1] as usize];
            let nl = (self.l_off[ti + 1] - self.l_off[ti]) as u64;
            self.shard_weights.push(1 + nl + approx_degree_sum(&self.ig, bs, usize::MAX) as u64);
        }
        let total: u64 = self.shard_weights.iter().sum();
        self.shard_bounds.clear();
        let mut start = 0usize;
        let mut cum = 0u64;
        for (ti, &w) in self.shard_weights.iter().enumerate() {
            cum += w;
            let g = self.shard_bounds.len() + 1; // group being filled (1-based)
            let must_close = t - ti - 1 == groups - g; // leave one channel per group
            if g < groups && (must_close || cum * groups as u64 >= total * g as u64) {
                self.shard_bounds.push((start, ti + 1));
                start = ti + 1;
            }
        }
        self.shard_bounds.push((start, t));
        let groups = self.shard_bounds.len();

        while self.shards.len() < groups {
            self.shards.push(ShardSlot::new(n));
        }
        // Workers beyond shard 0, spawned once and kept parked between
        // slots; recreated (old pool torn down gracefully) only if the
        // resolver's thread count changed since the last sharded slot.
        self.ensure_pool(threads - 1);

        let c = self.c;
        let Engine {
            ig,
            int2ext,
            touched,
            b_off,
            l_off,
            bcast_nodes,
            listen_nodes,
            shards,
            shard_bounds,
            outcomes,
            pool,
            spectrum,
            ..
        } = self;
        let ig: &IntGraph = ig;
        let int2ext: &[u32] = int2ext;
        let bounds: &[(usize, usize)] = shard_bounds;
        let touched: &[u32] = touched;
        let busy: Option<&BitSet> = spectrum.as_ref().map(SpectrumState::mask);
        let (b_off, l_off): (&[u32], &[u32]) = (b_off, l_off);
        let (bcast_nodes, listen_nodes): (&[u32], &[u32]) = (bcast_nodes, listen_nodes);

        // One shard's work, identical on the calling thread and on a pool
        // worker: resolve the group's channels into the shard's private
        // outcome buffer (listener-position order) with private scratch.
        // The PU busy mask was fixed in phase 0, so reading it from every
        // shard is race-free and order-independent.
        let resolve_group = |g: usize, shard: &mut ShardSlot| {
            let (lo, hi) = bounds[g];
            let listeners_total = (l_off[hi] - l_off[lo]) as usize;
            shard.out.clear();
            shard.out.resize(listeners_total, OC_IDLE);
            // Per-group fused marking: tags are absolute channel indices,
            // so shards never alias each other's marks even though every
            // shard bumps its own private scratch epoch independently.
            // Same near-empty-bucket gate as the sequential path.
            let active = ((b_off[hi] - b_off[lo]) + (l_off[hi] - l_off[lo])) as usize;
            let fused_epoch = (hi - lo >= 2
                && c <= FUSED_MAX_C
                && active <= FUSED_MAX_AVG_BUCKET * (hi - lo))
                .then(|| mark_broadcast_channels(&mut shard.scratch, b_off, bcast_nodes, lo, hi));
            let mut base = 0usize;
            for ti in lo..hi {
                let bs = &bcast_nodes[b_off[ti] as usize..b_off[ti + 1] as usize];
                let ls = &listen_nodes[l_off[ti] as usize..l_off[ti + 1] as usize];
                if busy.is_some_and(|m| m.contains(touched[ti] as usize)) {
                    for slot in &mut shard.out[base..base + ls.len()] {
                        *slot = OC_PU_BUSY;
                    }
                } else if !bs.is_empty() && !ls.is_empty() {
                    let slice = &mut shard.out[base..base + ls.len()];
                    resolve_channel_into(
                        ig,
                        &mut shard.scratch,
                        Resolver::Auto,
                        fused_epoch.map(|e| (e, ti as u32)),
                        bs,
                        ls,
                        &mut |pos, _, oc| slice[pos] = oc,
                    );
                }
                base += ls.len();
            }
        };

        let (first, rest) = shards.split_at_mut(1);
        pool.as_mut().expect("pool ensured above").run_with(
            &mut rest[..groups - 1],
            |w, shard| resolve_group(w + 1, shard),
            || resolve_group(0, &mut first[0]),
        );

        // Scatter the shard buffers into per-node outcomes. Every listener
        // belongs to exactly one channel (a node takes one action per
        // slot), so the writes are disjoint and order-free.
        for (&(lo, hi), shard) in bounds.iter().zip(shards[..groups].iter()) {
            let mut base = 0usize;
            for ti in lo..hi {
                let ls = &listen_nodes[l_off[ti] as usize..l_off[ti + 1] as usize];
                for (j, &l) in ls.iter().enumerate() {
                    let oc = shard.out[base + j];
                    outcomes[int2ext[l as usize] as usize] =
                        if oc < OC_MIN_SENTINEL { int2ext[oc as usize] } else { oc };
                }
                base += ls.len();
            }
        }
    }

    /// Runs until `max_slots` slots have executed, every protocol is
    /// complete, or the optional probe returns `true`.
    ///
    /// The probe (if provided as `Some((interval, f))`) is evaluated every
    /// `interval` slots with the current slot count; it is how experiments
    /// measure *time-to-completion* against external ground truth. The run
    /// continues to the protocols' own schedule end even after the probe
    /// fires only if `stop_on_probe` is false — here we always stop, because
    /// completion-time experiments don't need the tail.
    pub fn run(&mut self, max_slots: u64, mut probe: Option<Probe<'_, '_, 'net, P>>) -> RunOutcome
    where
        P: Send,
        P::Message: Send + Sync,
    {
        let mut completed_at = None;
        // Evaluate the probe at slot 0 too: some scenarios are trivially
        // complete before any communication.
        if let Some((_, f)) = probe.as_mut() {
            if f(0, self) {
                completed_at = Some(0);
            }
        }
        while completed_at.is_none() && self.slot < max_slots && !self.all_complete() {
            self.step();
            if let Some((interval, f)) = probe.as_mut() {
                if self.slot.is_multiple_of(*interval) && f(self.slot, self) {
                    completed_at = Some(self.slot);
                }
            }
        }
        // One final probe evaluation at the end of the schedule, so that a
        // coarse probe interval cannot miss a completion at the tail.
        if completed_at.is_none() {
            if let Some((_, f)) = probe.as_mut() {
                if f(self.slot, self) {
                    completed_at = Some(self.slot);
                }
            }
        }
        RunOutcome { slots_run: self.slot, completed_at, all_protocols_done: self.all_complete() }
    }

    /// Runs the protocols' full fixed schedule (up to `max_slots`) with no
    /// probe.
    pub fn run_to_completion(&mut self, max_slots: u64) -> RunOutcome
    where
        P: Send,
        P::Message: Send + Sync,
    {
        self.run(max_slots, None)
    }

    /// Consumes the engine and extracts each node's protocol output.
    pub fn into_outputs(self) -> Vec<P::Output> {
        self.protocols.into_iter().map(P::into_output).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LocalChannel;

    const ALL_RESOLVERS: [Resolver; 6] = [
        Resolver::Auto,
        Resolver::BroadcasterCentric,
        Resolver::ListenerCentric,
        Resolver::Naive,
        Resolver::ParallelSharded { threads: 2 },
        Resolver::ParallelSharded { threads: 4 },
    ];

    /// Test protocol: node 0..k broadcast a constant each slot on local
    /// channel `ch`; others listen on local channel `lch`; records hears.
    struct Fixed {
        bcast: bool,
        ch: LocalChannel,
        heard: Vec<u32>,
        id: u32,
    }

    impl Protocol for Fixed {
        type Message = u32;
        type Output = Vec<u32>;
        fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
            if self.bcast {
                Action::Broadcast { channel: self.ch, message: self.id }
            } else {
                Action::Listen { channel: self.ch }
            }
        }
        fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
            if let Feedback::Heard(m) = fb {
                self.heard.push(*m);
            }
        }
        fn is_complete(&self) -> bool {
            false
        }
        fn into_output(self) -> Vec<u32> {
            self.heard
        }
    }

    /// Star network: node 0 center; all share global channel 0; optionally
    /// extra private channels to make c uniform.
    fn star(leaves: usize) -> Network {
        let n = leaves + 1;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(NodeId(v as u32), vec![GlobalChannel(0), GlobalChannel(1 + v as u32)]);
        }
        for l in 1..n {
            b.add_edge(NodeId(0), NodeId(l as u32));
        }
        b.build().unwrap()
    }

    #[test]
    fn single_broadcaster_is_heard_under_every_resolver() {
        let net = star(1);
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 7, resolver, |ctx| Fixed {
                bcast: ctx.id == NodeId(1),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            let out = eng.into_outputs();
            assert_eq!(out[0], vec![1], "center hears the lone leaf ({resolver:?})");
            assert!(out[1].is_empty(), "broadcaster hears nothing ({resolver:?})");
        }
    }

    #[test]
    fn two_broadcasters_collide_to_silence() {
        let net = star(2);
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 7, resolver, |ctx| Fixed {
                bcast: ctx.id != NodeId(0),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            assert_eq!(eng.counters().collisions, 1, "{resolver:?}");
            let out = eng.into_outputs();
            assert!(out[0].is_empty(), "collision is silence ({resolver:?})");
        }
    }

    #[test]
    fn non_neighbor_broadcasts_are_inaudible() {
        // Path 0-1 plus isolated node 2 broadcasting on the same channel:
        // node 2's broadcast must not interfere at node 0.
        let mut b = Network::builder(3);
        for v in 0..3u32 {
            b.set_channels(NodeId(v), vec![GlobalChannel(0)]);
        }
        b.add_edge(NodeId(0), NodeId(1));
        let net = b.build().unwrap();
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 3, resolver, |ctx| Fixed {
                bcast: ctx.id != NodeId(0),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            let out = eng.into_outputs();
            assert_eq!(out[0], vec![1], "only the true neighbor is audible ({resolver:?})");
        }
    }

    #[test]
    fn different_channels_do_not_interfere() {
        // Node 1 and node 2 broadcast on *different* global channels; the
        // center listens on channel 0 and must cleanly hear node 1.
        let mut b = Network::builder(3);
        b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(9)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0), GlobalChannel(5)]);
        b.set_channels(NodeId(2), vec![GlobalChannel(5), GlobalChannel(0)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let net = b.build().unwrap();
        let mut eng = Engine::new(&net, 3, |ctx| Fixed {
            bcast: ctx.id != NodeId(0),
            // Local channel 0 maps to g0 for nodes 0 and 1, but to g5 for
            // node 2 — local labels are node-private.
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        let out = eng.into_outputs();
        assert_eq!(out[0], vec![1]);
    }

    #[test]
    fn counters_track_actions() {
        let net = star(3);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        eng.step();
        let c = eng.counters();
        assert_eq!(c.slots, 2);
        assert_eq!(c.broadcasts, 2);
        assert_eq!(c.listens, 6);
        // Center hears leaf 1 twice; leaves 2 and 3 are not adjacent to leaf
        // 1, so they idle-listen.
        assert_eq!(c.deliveries, 2);
        assert_eq!(c.idle_listens, 4);
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        struct Rnd {
            heard: u64,
        }
        impl Protocol for Rnd {
            type Message = u8;
            type Output = u64;
            fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u8> {
                use rand::Rng;
                if ctx.rng.gen_bool(0.5) {
                    Action::Broadcast { channel: LocalChannel(ctx.rng.gen_range(0..2)), message: 1 }
                } else {
                    Action::Listen { channel: LocalChannel(ctx.rng.gen_range(0..2)) }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u8>) {
                if matches!(fb, Feedback::Heard(_)) {
                    self.heard += 1;
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> u64 {
                self.heard
            }
        }
        let net = star(4);
        let run = |seed: u64, resolver: Resolver| {
            let mut eng = Engine::with_resolver(&net, seed, resolver, |_| Rnd { heard: 0 });
            eng.run_to_completion(200);
            (eng.counters(), eng.into_outputs())
        };
        let (c1, o1) = run(42, Resolver::Auto);
        let (c2, o2) = run(42, Resolver::Auto);
        let (c3, _) = run(43, Resolver::Auto);
        assert_eq!(c1, c2);
        assert_eq!(o1, o2);
        assert_ne!(c1, c3, "different seeds should (generically) differ");
        // Every resolver — including the sharded one — is observationally
        // identical.
        for resolver in ALL_RESOLVERS {
            let (c, o) = run(42, resolver);
            assert_eq!(c, c1, "{resolver:?} diverges on counters");
            assert_eq!(o, o1, "{resolver:?} diverges on outputs");
        }
    }

    #[test]
    fn probe_stops_run_early() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let mut probe = |_slot: u64, eng: &Engine<'_, Fixed>| -> bool {
            !eng.protocol(NodeId(0)).heard.is_empty()
        };
        let outcome = eng.run(1000, Some((1, &mut probe)));
        assert_eq!(outcome.completed_at, Some(1));
        assert_eq!(outcome.slots_run, 1);
    }

    #[test]
    fn run_respects_max_slots() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let outcome = eng.run_to_completion(17);
        assert_eq!(outcome.slots_run, 17);
        assert!(!outcome.all_protocols_done);
    }

    #[test]
    fn sleeping_nodes_neither_send_nor_hear() {
        struct Sleepy;
        impl Protocol for Sleepy {
            type Message = u8;
            type Output = ();
            fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
                Action::Sleep
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u8>) {
                assert_eq!(fb, Feedback::Slept);
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) {}
        }
        let net = star(2);
        let mut eng = Engine::new(&net, 7, |_| Sleepy);
        eng.step();
        assert_eq!(eng.counters().sleeps, 3);
    }

    #[test]
    fn heard_messages_are_not_cloned_by_the_engine() {
        // A message type whose clone count is observable: the engine must
        // never clone it, even across many deliveries.
        use std::sync::atomic::{AtomicU64, Ordering};
        static CLONES: AtomicU64 = AtomicU64::new(0);

        #[derive(Debug, PartialEq, Eq)]
        struct Counted(u32);
        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::Relaxed);
                Counted(self.0)
            }
        }

        struct Payload {
            bcast: bool,
            heard: u64,
        }
        impl Protocol for Payload {
            type Message = Counted;
            type Output = u64;
            fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<Counted> {
                if self.bcast {
                    Action::Broadcast { channel: LocalChannel(0), message: Counted(9) }
                } else {
                    Action::Listen { channel: LocalChannel(0) }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, Counted>) {
                if let Feedback::Heard(m) = fb {
                    assert_eq!(m.0, 9);
                    self.heard += 1;
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> u64 {
                self.heard
            }
        }

        // One leaf broadcasting to the center: a delivery in every slot.
        let net = star(1);
        let mut eng = Engine::new(&net, 5, |ctx| Payload { bcast: ctx.id == NodeId(1), heard: 0 });
        for _ in 0..50 {
            eng.step();
        }
        assert_eq!(eng.counters().deliveries, 50);
        let outputs = eng.into_outputs();
        assert_eq!(outputs[0], 50, "center heard every slot");
        assert_eq!(CLONES.load(Ordering::Relaxed), 0, "engine cloned a message");
    }

    #[test]
    fn dense_channel_mix_is_resolver_invariant() {
        // A tougher scenario than the unit cases above: several overlapping
        // channels, random roles, non-trivial topology. All resolvers —
        // sequential and sharded — must agree slot-by-slot on every counter
        // and output.
        struct Rnd {
            c: u16,
            heard: Vec<u32>,
        }
        impl Protocol for Rnd {
            type Message = u32;
            type Output = Vec<u32>;
            fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
                use rand::Rng;
                let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
                if ctx.rng.gen_bool(0.4) {
                    Action::Broadcast { channel, message: ctx.rng.gen_range(0..1000u32) }
                } else {
                    Action::Listen { channel }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
                if let Feedback::Heard(m) = fb {
                    self.heard.push(*m);
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> Vec<u32> {
                self.heard
            }
        }

        // Wheel graph: hub 0 plus a cycle of 12, all sharing 3 channels.
        let n = 13usize;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(
                NodeId(v as u32),
                vec![GlobalChannel(0), GlobalChannel(1), GlobalChannel(2)],
            );
        }
        for v in 1..n as u32 {
            b.add_edge(NodeId(0), NodeId(v));
            let next = if v as usize == n - 1 { 1 } else { v + 1 };
            b.add_edge(NodeId(v), NodeId(next));
        }
        let net = b.build().unwrap();

        let run = |resolver: Resolver| {
            let mut eng =
                Engine::with_resolver(&net, 99, resolver, |_| Rnd { c: 3, heard: Vec::new() });
            eng.run_to_completion(300);
            (eng.counters(), eng.into_outputs())
        };
        let (c0, o0) = run(Resolver::Naive);
        assert!(c0.deliveries > 0, "scenario must exercise deliveries");
        assert!(c0.collisions > 0, "scenario must exercise collisions");
        for resolver in ALL_RESOLVERS {
            let (c, o) = run(resolver);
            assert_eq!(c, c0, "{resolver:?} counters diverge from naive");
            assert_eq!(o, o0, "{resolver:?} outputs diverge from naive");
        }
    }

    #[test]
    fn sharded_resolver_with_one_thread_is_sequential_auto() {
        // threads ≤ 1 must take the sequential path (and still be correct).
        let net = star(5);
        for threads in [0usize, 1] {
            let mut eng = Engine::with_resolver(&net, 7, Resolver::sharded(threads), |ctx| Fixed {
                bcast: ctx.id == NodeId(1),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            assert_eq!(eng.counters().deliveries, 1, "threads={threads}");
        }
    }

    #[test]
    fn pu_busy_channel_blocks_delivery_under_every_resolver() {
        // Lone leaf broadcasting to the center, but the PU camps on the
        // shared channel every slot: no delivery ever, listeners hear
        // noise, and the PU counters account for every blocked slot —
        // identically under every resolver.
        let net = star(1);
        let always_busy = SpectrumDynamics::TraceReplay(vec![vec![GlobalChannel(0)]]);
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 7, resolver, |ctx| Fixed {
                bcast: ctx.id == NodeId(1),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.set_spectrum(always_busy.clone());
            for _ in 0..5 {
                eng.step();
            }
            let c = eng.counters();
            assert_eq!(c.deliveries, 0, "{resolver:?}");
            assert_eq!(c.collisions, 5, "{resolver:?}: PU noise is a collision");
            assert_eq!(c.pu_blocked_listens, 5, "{resolver:?}");
            assert_eq!(c.pu_blocked_broadcasts, 5, "{resolver:?}");
            assert_eq!(c.pu_busy_channel_slots, 5, "{resolver:?}");
            assert_eq!(c.broadcasts, 5, "{resolver:?}: the action itself still counts");
            let out = eng.into_outputs();
            assert!(out[0].is_empty(), "{resolver:?}: nothing audible through the PU");
        }
    }

    #[test]
    fn pu_mask_is_per_channel() {
        // Two leaves on different global channels; the PU occupies only
        // channel 0, so the center still hears cleanly on channel 5.
        let mut b = Network::builder(3);
        b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(5)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0), GlobalChannel(9)]);
        b.set_channels(NodeId(2), vec![GlobalChannel(5), GlobalChannel(7)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let net = b.build().unwrap();
        // Node 1 broadcasts on g0 (busy), node 2 on g5 (free); the center
        // listens on g5 (its local label 1).
        let mut eng = Engine::new(&net, 3, |ctx| Fixed {
            bcast: ctx.id != NodeId(0),
            ch: if ctx.id == NodeId(0) { LocalChannel(1) } else { LocalChannel(0) },
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.set_spectrum(SpectrumDynamics::TraceReplay(vec![vec![GlobalChannel(0)]]));
        eng.step();
        let c = eng.counters();
        assert_eq!(c.deliveries, 1);
        assert_eq!(c.pu_blocked_broadcasts, 1, "only the g0 broadcast is lost");
        assert_eq!(c.pu_blocked_listens, 0, "the center listened on the free channel");
        let out = eng.into_outputs();
        assert_eq!(out[0], vec![2], "channel 5 is unaffected by the PU on channel 0");
    }

    #[test]
    fn static_spectrum_is_observationally_absent() {
        let net = star(3);
        let run = |install: bool| {
            let mut eng = Engine::new(&net, 7, |ctx| Fixed {
                bcast: ctx.id == NodeId(1),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            if install {
                eng.set_spectrum(SpectrumDynamics::Static);
                assert!(eng.spectrum().is_none(), "Static uninstalls the layer");
            }
            eng.step();
            eng.step();
            (eng.counters(), eng.into_outputs())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn channel_rng_is_keyed_by_slot_and_channel() {
        use rand::Rng;
        let net = star(1);
        let mut eng = Engine::new(&net, 9, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let before: u64 = eng.channel_rng(GlobalChannel(0)).gen();
        let again: u64 = eng.channel_rng(GlobalChannel(0)).gen();
        assert_eq!(before, again, "same (seed, slot, channel) — same stream");
        let other: u64 = eng.channel_rng(GlobalChannel(1)).gen();
        assert_ne!(before, other, "different channels get different streams");
        eng.step();
        let after: u64 = eng.channel_rng(GlobalChannel(0)).gen();
        assert_ne!(before, after, "different slots get different streams");
    }
}
