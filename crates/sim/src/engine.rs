//! The synchronous slot-stepped execution engine.
//!
//! In each slot the engine: (1) collects one [`Action`] from every node,
//! grouping broadcasters *and listeners* by dense global channel, (2) for
//! each touched channel resolves deliveries — a listener hears a message iff
//! **exactly one** of its neighbors broadcast on the listened channel —
//! and (3) hands every node its [`Feedback`], with heard messages passed by
//! reference out of the broadcasters' action buffer (the engine never clones
//! a payload). This is precisely the communication model of paper §3 (no
//! collision detection, collision ≡ silence, broadcasters hear only
//! themselves).
//!
//! # Slot resolution strategies
//!
//! Resolution cost is where simulation time goes for every Θ(n·polylog n)
//! primitive in this repo, so the resolver adapts per channel and per slot
//! (see [`Resolver`]):
//!
//! * **Broadcaster-centric sweep** — walk each broadcaster's CSR neighbor
//!   slice once, accumulating per-listener hit counts in epoch-stamped
//!   scratch arrays (no per-slot `O(n)` clears). Cost `Σ_b deg(b)`; wins on
//!   dense channels with many listeners (epidemic dissemination workloads).
//! * **Listener-centric probe** — per listener, the cheapest of: scanning
//!   the channel's broadcaster list with `O(1)` adjacency-bit tests,
//!   walking its own CSR slice against epoch-stamped broadcaster marks, or
//!   intersecting its adjacency row with the channel's broadcaster bit set
//!   word-by-word ([`BitSet::intersect_unique`]) — each with early exit at
//!   the second hit (a collision is a collision).
//! * The [`Resolver::Auto`] heuristic compares `Σ_b deg(b)` (weighted for
//!   its scattered writes) against the summed per-listener probe bound
//!   `Σ_l min(B, deg(l), n/64)` and picks the cheaper side for each channel
//!   independently.
//!
//! All strategies produce bit-identical counters, feedbacks, and outputs;
//! `Resolver::Naive` keeps the original quadratic reference implementation
//! for differential testing and benchmarking.

use crate::bitset::{BitSet, Intersection};
use crate::ids::{LocalChannel, NodeId, Slot};
use crate::network::Network;
use crate::protocol::{Action, Feedback, NodeCtx, Protocol, SlotCtx};
use crate::rng::stream_rng;
use rand::rngs::SmallRng;

/// Aggregate event counters for a run, useful for energy/traffic accounting
/// and for sanity-checking experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Slots executed.
    pub slots: u64,
    /// Broadcast actions.
    pub broadcasts: u64,
    /// Listen actions.
    pub listens: u64,
    /// Sleep actions.
    pub sleeps: u64,
    /// Successful deliveries (listener heard exactly one neighbor).
    pub deliveries: u64,
    /// Listener-slots lost to collision (≥ 2 broadcasting neighbors).
    pub collisions: u64,
    /// Listener-slots in which no neighbor broadcast on the channel.
    pub idle_listens: u64,
}

/// Outcome of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Slots actually executed.
    pub slots_run: u64,
    /// First slot (1-based count of executed slots) at which the progress
    /// probe returned `true`, if it ever did.
    pub completed_at: Option<u64>,
    /// `true` if every protocol reported [`Protocol::is_complete`] when the
    /// run stopped.
    pub all_protocols_done: bool,
}

/// How the engine resolves deliveries on each channel. All strategies are
/// observationally identical; they differ only in per-slot cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Resolver {
    /// Per channel, pick the cheaper of the broadcaster-centric sweep and
    /// the listener-centric probe by comparing (weighted) `Σ_b deg(b)`
    /// with `Σ_l min(B, deg(l), n/64)`. The right default.
    #[default]
    Auto,
    /// Always walk broadcasters' CSR neighbor slices.
    BroadcasterCentric,
    /// Always probe from the listener side (per listener: broadcaster-list
    /// scan, own-CSR walk, or word intersection — whichever bounds cheapest).
    ListenerCentric,
    /// The original reference implementation: every listener linearly scans
    /// every broadcaster on its channel with a per-pair adjacency test.
    /// Kept for differential testing and as the benchmark baseline.
    Naive,
}

/// The execution engine. Owns one protocol instance and one RNG stream per
/// node; borrows the immutable [`Network`].
///
/// # Examples
/// ```
/// use crn_sim::*;
///
/// // Two nodes, one shared channel; node 0 beacons, node 1 listens.
/// struct Side { tx: bool, heard: Option<u32> }
/// impl Protocol for Side {
///     type Message = u32;
///     type Output = Option<u32>;
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
///         if self.tx {
///             Action::Broadcast { channel: LocalChannel(0), message: 7 }
///         } else {
///             Action::Listen { channel: LocalChannel(0) }
///         }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
///         if let Feedback::Heard(m) = fb { self.heard = Some(*m); }
///     }
///     fn is_complete(&self) -> bool { self.heard.is_some() || self.tx }
///     fn into_output(self) -> Option<u32> { self.heard }
/// }
///
/// let mut b = Network::builder(2);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
/// b.set_channels(NodeId(1), vec![GlobalChannel(0)]);
/// b.add_edge(NodeId(0), NodeId(1));
/// let net = b.build()?;
/// let mut eng = Engine::new(&net, 1, |ctx| Side { tx: ctx.id == NodeId(0), heard: None });
/// eng.run(10, None);
/// assert_eq!(eng.into_outputs()[1], Some(7));
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
pub struct Engine<'net, P: Protocol> {
    net: &'net Network,
    protocols: Vec<Option<P>>,
    rngs: Vec<SmallRng>,
    slot: u64,
    counters: Counters,
    resolver: Resolver,
    // Retained scratch buffers (cleared each slot via the touched list).
    bcasters_by_channel: Vec<Vec<u32>>,
    listeners_by_channel: Vec<Vec<u32>>,
    touched_channels: Vec<u32>,
    actions: Vec<SlotPlan<P::Message>>,
    /// Per-node resolution results for the current slot.
    outcomes: Vec<Outcome>,
    /// Epoch stamps for `hit_count`/`hit_src`: a cell is live iff its stamp
    /// equals the current epoch, so nothing is ever bulk-cleared.
    mark_epoch: Vec<u64>,
    hit_count: Vec<u32>,
    hit_src: Vec<u32>,
    epoch: u64,
    /// Scratch bit set of the broadcasters on the channel being resolved
    /// (built and un-built per channel, O(B) each way).
    bcast_bits: BitSet,
    /// Densely remapped global channels: `global -> dense index`.
    dense: Vec<u32>,
}

/// A progress probe: evaluated every `interval` slots with the slot count
/// and the engine; returning `true` stops the run (ground-truth completion).
pub type Probe<'a, 'b, 'net, P> = (u64, &'a mut (dyn FnMut(u64, &Engine<'net, P>) -> bool + 'b));

/// Internal per-node slot plan after local→global translation.
#[derive(Debug, Clone)]
enum SlotPlan<M> {
    Bcast { message: M },
    Listen,
    Sleep,
}

/// Per-node resolution result; `Heard` carries the broadcaster index so the
/// delivery phase can borrow the message straight out of the action buffer.
#[derive(Debug, Clone, Copy)]
enum Outcome {
    Sent,
    Slept,
    /// Listener with no broadcasting neighbor on the channel (provisional
    /// state for every listener until its channel is resolved).
    Idle,
    /// Listener with ≥ 2 broadcasting neighbors: collision, heard silence.
    Collision,
    /// Listener with exactly one broadcasting neighbor: delivery.
    Heard(u32),
}

impl<'net, P: Protocol> Engine<'net, P> {
    /// Creates an engine for `net` with the default [`Resolver::Auto`],
    /// constructing each node's protocol via `make`, and deriving all node
    /// RNG streams from `seed`.
    pub fn new(net: &'net Network, seed: u64, make: impl FnMut(NodeCtx) -> P) -> Self {
        Engine::with_resolver(net, seed, Resolver::Auto, make)
    }

    /// Like [`Engine::new`] but with an explicit resolution strategy —
    /// used by differential tests and resolver benchmarks.
    pub fn with_resolver(
        net: &'net Network,
        seed: u64,
        resolver: Resolver,
        mut make: impl FnMut(NodeCtx) -> P,
    ) -> Self {
        let n = net.len();
        let c = net.channels_per_node();
        // Dense channel remap so scratch vectors are O(universe), not
        // O(max raw id).
        let mut raw_ids: Vec<u32> =
            (0..n).flat_map(|v| net.channel_map(NodeId(v as u32)).iter().map(|g| g.0)).collect();
        raw_ids.sort_unstable();
        raw_ids.dedup();
        let max_raw = raw_ids.last().copied().unwrap_or(0) as usize;
        let mut dense = vec![u32::MAX; max_raw + 1];
        for (i, &raw) in raw_ids.iter().enumerate() {
            dense[raw as usize] = i as u32;
        }
        let universe = raw_ids.len();

        let protocols = (0..n)
            .map(|v| Some(make(NodeCtx { id: NodeId(v as u32), num_channels: c as u16 })))
            .collect();
        let rngs = (0..n).map(|v| stream_rng(seed, v as u64)).collect();
        Engine {
            net,
            protocols,
            rngs,
            slot: 0,
            counters: Counters::default(),
            resolver,
            bcasters_by_channel: vec![Vec::new(); universe],
            listeners_by_channel: vec![Vec::new(); universe],
            touched_channels: Vec::new(),
            actions: Vec::with_capacity(n),
            outcomes: Vec::with_capacity(n),
            mark_epoch: vec![0; n],
            hit_count: vec![0; n],
            hit_src: vec![0; n],
            epoch: 0,
            bcast_bits: BitSet::new(n),
            dense,
        }
    }

    /// The network this engine runs on.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The current slot index (number of slots already executed).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Aggregate counters so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// The active resolution strategy.
    pub fn resolver(&self) -> Resolver {
        self.resolver
    }

    /// Switches the resolution strategy (takes effect from the next slot;
    /// all strategies are observationally identical, so this never changes
    /// results).
    pub fn set_resolver(&mut self, resolver: Resolver) {
        self.resolver = resolver;
    }

    /// Read access to the protocol instances (for progress probes).
    ///
    /// # Panics
    /// Panics if called after [`Engine::into_outputs`].
    pub fn protocol(&self, v: NodeId) -> &P {
        self.protocols[v.index()].as_ref().expect("protocol already consumed")
    }

    /// Applies `f` to every protocol in node order.
    pub fn for_each_protocol(&self, mut f: impl FnMut(NodeId, &P)) {
        for (i, p) in self.protocols.iter().enumerate() {
            f(NodeId(i as u32), p.as_ref().expect("protocol already consumed"));
        }
    }

    /// `true` once every node's protocol reports completion.
    pub fn all_complete(&self) -> bool {
        self.protocols.iter().all(|p| p.as_ref().map(|p| p.is_complete()).unwrap_or(true))
    }

    /// Executes exactly one slot.
    pub fn step(&mut self) {
        let slot = Slot(self.slot);
        let n = self.net.len();
        debug_assert!(self.touched_channels.is_empty());
        self.actions.clear();
        self.outcomes.clear();

        // Phase 1: collect actions; translate local labels to dense global
        // channels; group broadcasters and listeners per channel.
        for v in 0..n {
            let proto = self.protocols[v].as_mut().expect("protocol consumed");
            let mut ctx = SlotCtx { slot, rng: &mut self.rngs[v] };
            let action = proto.act(&mut ctx);
            let (plan, outcome) = match action {
                Action::Broadcast { channel, message } => {
                    self.counters.broadcasts += 1;
                    let dense = self.translate(NodeId(v as u32), channel);
                    let ch = dense as usize;
                    if self.bcasters_by_channel[ch].is_empty()
                        && self.listeners_by_channel[ch].is_empty()
                    {
                        self.touched_channels.push(dense);
                    }
                    self.bcasters_by_channel[ch].push(v as u32);
                    (SlotPlan::Bcast { message }, Outcome::Sent)
                }
                Action::Listen { channel } => {
                    self.counters.listens += 1;
                    let dense = self.translate(NodeId(v as u32), channel);
                    let ch = dense as usize;
                    if self.bcasters_by_channel[ch].is_empty()
                        && self.listeners_by_channel[ch].is_empty()
                    {
                        self.touched_channels.push(dense);
                    }
                    self.listeners_by_channel[ch].push(v as u32);
                    (SlotPlan::Listen, Outcome::Idle)
                }
                Action::Sleep => {
                    self.counters.sleeps += 1;
                    (SlotPlan::Sleep, Outcome::Slept)
                }
            };
            self.actions.push(plan);
            self.outcomes.push(outcome);
        }

        // Phase 2: resolve each touched channel with the cheapest strategy.
        for ti in 0..self.touched_channels.len() {
            let ch = self.touched_channels[ti] as usize;
            self.resolve_channel(ch);
        }

        // Phase 3: deliver feedback. Heard messages are borrowed from the
        // broadcasters' entries in the action buffer — zero clones.
        let actions = &self.actions;
        let outcomes = &self.outcomes;
        let counters = &mut self.counters;
        for (v, (proto, rng)) in self.protocols.iter_mut().zip(self.rngs.iter_mut()).enumerate() {
            let fb = match outcomes[v] {
                Outcome::Sent => Feedback::Sent,
                Outcome::Slept => Feedback::Slept,
                Outcome::Idle => {
                    counters.idle_listens += 1;
                    Feedback::Silence
                }
                Outcome::Collision => {
                    counters.collisions += 1;
                    Feedback::Silence
                }
                Outcome::Heard(b) => {
                    counters.deliveries += 1;
                    match &actions[b as usize] {
                        SlotPlan::Bcast { message } => Feedback::Heard(message),
                        _ => unreachable!("resolved broadcaster must be broadcasting"),
                    }
                }
            };
            let mut ctx = SlotCtx { slot, rng };
            proto.as_mut().expect("protocol consumed").feedback(&mut ctx, fb);
        }

        // Cleanup scratch.
        for ch in self.touched_channels.drain(..) {
            self.bcasters_by_channel[ch as usize].clear();
            self.listeners_by_channel[ch as usize].clear();
        }
        self.slot += 1;
        self.counters.slots += 1;
    }

    /// Resolves one channel's listeners, writing `self.outcomes` entries.
    fn resolve_channel(&mut self, ch: usize) {
        let bcasters = &self.bcasters_by_channel[ch];
        let listeners = &self.listeners_by_channel[ch];
        let (nb, nl) = (bcasters.len(), listeners.len());
        if nb == 0 || nl == 0 {
            // No broadcasters: every listener keeps its provisional Idle.
            // No listeners: nothing can be heard.
            return;
        }
        match self.resolver {
            Resolver::Naive => self.resolve_naive(ch),
            Resolver::BroadcasterCentric => self.resolve_broadcaster_centric(ch),
            Resolver::ListenerCentric => self.resolve_listener_centric(ch),
            Resolver::Auto => {
                // Broadcaster side: one pass over all broadcasters' neighbor
                // slices — scattered increments, so weight them ~2× against
                // the listener side's sequential probes. Listener side: each
                // listener pays the cheapest of scanning the broadcaster
                // list, walking its own CSR slice, or one word sweep.
                let d_b: usize = bcasters.iter().map(|&b| self.net.degree(NodeId(b))).sum();
                let words = self.bcast_bits.words().len().max(1);
                let per_listener_cap = nb.min(words);
                let listen_cost = 2 * nb
                    + listeners
                        .iter()
                        .map(|&l| self.net.degree(NodeId(l)).min(per_listener_cap))
                        .sum::<usize>();
                let bcast_cost = nl + 2 * d_b;
                if bcast_cost <= listen_cost {
                    self.resolve_broadcaster_centric(ch);
                } else {
                    self.resolve_listener_centric(ch);
                }
            }
        }
    }

    /// Reference resolver: per listener, linear scan of the channel's
    /// broadcaster list with an adjacency-bit test per pair. `O(L·B)`.
    fn resolve_naive(&mut self, ch: usize) {
        let bcasters = &self.bcasters_by_channel[ch];
        for &l in &self.listeners_by_channel[ch] {
            self.outcomes[l as usize] = Self::scan_listener(self.net, bcasters, l);
        }
    }

    /// Broadcaster-centric sweep: stamp the channel's listeners with a fresh
    /// epoch, then walk each broadcaster's CSR neighbor slice once,
    /// accumulating hit counts only in stamped cells. `O(L + Σ_b deg(b))`,
    /// independent of how many listeners each broadcaster reaches.
    fn resolve_broadcaster_centric(&mut self, ch: usize) {
        self.epoch += 1;
        let epoch = self.epoch;
        for &l in &self.listeners_by_channel[ch] {
            self.mark_epoch[l as usize] = epoch;
            self.hit_count[l as usize] = 0;
        }
        for &b in &self.bcasters_by_channel[ch] {
            for &w in self.net.neighbor_slice(NodeId(b)) {
                let w = w as usize;
                if self.mark_epoch[w] == epoch {
                    self.hit_count[w] += 1;
                    self.hit_src[w] = b;
                }
            }
        }
        for &l in &self.listeners_by_channel[ch] {
            let l = l as usize;
            self.outcomes[l] = match self.hit_count[l] {
                0 => Outcome::Idle,
                1 => Outcome::Heard(self.hit_src[l]),
                _ => Outcome::Collision,
            };
        }
    }

    /// Listener-centric probe, adaptive per listener: each listener takes
    /// the cheapest of three equivalent tests, all with early exit at the
    /// second hit —
    ///
    /// 1. *scan* the channel's broadcaster list with `O(1)` adjacency bits
    ///    (cost ≤ `B`, best when the list is shorter than the degree);
    /// 2. *walk* its own CSR neighbor slice against the epoch-stamped
    ///    broadcaster marks (cost ≤ `deg(l)`, best for low-degree listeners
    ///    and crowded channels, where a couple of probes already collide);
    /// 3. *word-intersect* its adjacency row with the channel's broadcaster
    ///    bit set (cost ≤ `n/64` words, best for high-degree listeners on
    ///    channels with many broadcasters; the bit set is built lazily on
    ///    first use).
    fn resolve_listener_centric(&mut self, ch: usize) {
        self.epoch += 1;
        let epoch = self.epoch;
        for &b in &self.bcasters_by_channel[ch] {
            self.mark_epoch[b as usize] = epoch;
        }
        let nb = self.bcasters_by_channel[ch].len();
        let words = self.bcast_bits.words().len().max(1);
        let mut bits_built = false;
        for &l in &self.listeners_by_channel[ch] {
            let d = self.net.degree(NodeId(l));
            let outcome = if nb <= d && nb <= words {
                Self::scan_listener(self.net, &self.bcasters_by_channel[ch], l)
            } else if d <= words {
                // Walk the listener's own neighbors, testing the stamp.
                let mut count = 0u32;
                let mut src = 0u32;
                for &w in self.net.neighbor_slice(NodeId(l)) {
                    if self.mark_epoch[w as usize] == epoch {
                        count += 1;
                        if count > 1 {
                            break;
                        }
                        src = w;
                    }
                }
                match count {
                    0 => Outcome::Idle,
                    1 => Outcome::Heard(src),
                    _ => Outcome::Collision,
                }
            } else {
                if !bits_built {
                    for &b in &self.bcasters_by_channel[ch] {
                        self.bcast_bits.insert(b as usize);
                    }
                    bits_built = true;
                }
                let row = self.net.adjacency_bits(NodeId(l));
                match row.intersect_unique(&self.bcast_bits) {
                    Intersection::Empty => Outcome::Idle,
                    Intersection::Unique(b) => Outcome::Heard(b as u32),
                    Intersection::Many => Outcome::Collision,
                }
            };
            self.outcomes[l as usize] = outcome;
        }
        if bits_built {
            for &b in &self.bcasters_by_channel[ch] {
                self.bcast_bits.remove(b as usize);
            }
        }
    }

    /// One listener's scan over a channel broadcaster list (shared by the
    /// naive reference resolver and the adaptive listener path).
    #[inline]
    fn scan_listener(net: &Network, bcasters: &[u32], l: u32) -> Outcome {
        let mut heard_from: Option<u32> = None;
        let mut adjacent = 0u32;
        for &b in bcasters {
            if net.are_neighbors(NodeId(l), NodeId(b)) {
                adjacent += 1;
                if adjacent > 1 {
                    break;
                }
                heard_from = Some(b);
            }
        }
        match (adjacent, heard_from) {
            (1, Some(b)) => Outcome::Heard(b),
            (0, _) => Outcome::Idle,
            _ => Outcome::Collision,
        }
    }

    #[inline]
    fn translate(&self, v: NodeId, l: LocalChannel) -> u32 {
        let g = self.net.local_to_global(v, l);
        let dense = self.dense[g.index()];
        debug_assert_ne!(dense, u32::MAX, "channel {g} not in dense map");
        dense
    }

    /// Runs until `max_slots` slots have executed, every protocol is
    /// complete, or the optional probe returns `true`.
    ///
    /// The probe (if provided as `Some((interval, f))`) is evaluated every
    /// `interval` slots with the current slot count; it is how experiments
    /// measure *time-to-completion* against external ground truth. The run
    /// continues to the protocols' own schedule end even after the probe
    /// fires only if `stop_on_probe` is false — here we always stop, because
    /// completion-time experiments don't need the tail.
    pub fn run(&mut self, max_slots: u64, mut probe: Option<Probe<'_, '_, 'net, P>>) -> RunOutcome {
        let mut completed_at = None;
        // Evaluate the probe at slot 0 too: some scenarios are trivially
        // complete before any communication.
        if let Some((_, f)) = probe.as_mut() {
            if f(0, self) {
                completed_at = Some(0);
            }
        }
        while completed_at.is_none() && self.slot < max_slots && !self.all_complete() {
            self.step();
            if let Some((interval, f)) = probe.as_mut() {
                if self.slot.is_multiple_of(*interval) && f(self.slot, self) {
                    completed_at = Some(self.slot);
                }
            }
        }
        // One final probe evaluation at the end of the schedule, so that a
        // coarse probe interval cannot miss a completion at the tail.
        if completed_at.is_none() {
            if let Some((_, f)) = probe.as_mut() {
                if f(self.slot, self) {
                    completed_at = Some(self.slot);
                }
            }
        }
        RunOutcome { slots_run: self.slot, completed_at, all_protocols_done: self.all_complete() }
    }

    /// Runs the protocols' full fixed schedule (up to `max_slots`) with no
    /// probe.
    pub fn run_to_completion(&mut self, max_slots: u64) -> RunOutcome {
        self.run(max_slots, None)
    }

    /// Consumes the engine and extracts each node's protocol output.
    pub fn into_outputs(mut self) -> Vec<P::Output> {
        self.protocols
            .iter_mut()
            .map(|p| p.take().expect("protocol consumed twice").into_output())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalChannel;

    const ALL_RESOLVERS: [Resolver; 4] =
        [Resolver::Auto, Resolver::BroadcasterCentric, Resolver::ListenerCentric, Resolver::Naive];

    /// Test protocol: node 0..k broadcast a constant each slot on local
    /// channel `ch`; others listen on local channel `lch`; records hears.
    struct Fixed {
        bcast: bool,
        ch: LocalChannel,
        heard: Vec<u32>,
        id: u32,
    }

    impl Protocol for Fixed {
        type Message = u32;
        type Output = Vec<u32>;
        fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
            if self.bcast {
                Action::Broadcast { channel: self.ch, message: self.id }
            } else {
                Action::Listen { channel: self.ch }
            }
        }
        fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
            if let Feedback::Heard(m) = fb {
                self.heard.push(*m);
            }
        }
        fn is_complete(&self) -> bool {
            false
        }
        fn into_output(self) -> Vec<u32> {
            self.heard
        }
    }

    /// Star network: node 0 center; all share global channel 0; optionally
    /// extra private channels to make c uniform.
    fn star(leaves: usize) -> Network {
        let n = leaves + 1;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(NodeId(v as u32), vec![GlobalChannel(0), GlobalChannel(1 + v as u32)]);
        }
        for l in 1..n {
            b.add_edge(NodeId(0), NodeId(l as u32));
        }
        b.build().unwrap()
    }

    #[test]
    fn single_broadcaster_is_heard_under_every_resolver() {
        let net = star(1);
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 7, resolver, |ctx| Fixed {
                bcast: ctx.id == NodeId(1),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            let out = eng.into_outputs();
            assert_eq!(out[0], vec![1], "center hears the lone leaf ({resolver:?})");
            assert!(out[1].is_empty(), "broadcaster hears nothing ({resolver:?})");
        }
    }

    #[test]
    fn two_broadcasters_collide_to_silence() {
        let net = star(2);
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 7, resolver, |ctx| Fixed {
                bcast: ctx.id != NodeId(0),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            assert_eq!(eng.counters().collisions, 1, "{resolver:?}");
            let out = eng.into_outputs();
            assert!(out[0].is_empty(), "collision is silence ({resolver:?})");
        }
    }

    #[test]
    fn non_neighbor_broadcasts_are_inaudible() {
        // Path 0-1 plus isolated node 2 broadcasting on the same channel:
        // node 2's broadcast must not interfere at node 0.
        let mut b = Network::builder(3);
        for v in 0..3u32 {
            b.set_channels(NodeId(v), vec![GlobalChannel(0)]);
        }
        b.add_edge(NodeId(0), NodeId(1));
        let net = b.build().unwrap();
        for resolver in ALL_RESOLVERS {
            let mut eng = Engine::with_resolver(&net, 3, resolver, |ctx| Fixed {
                bcast: ctx.id != NodeId(0),
                ch: LocalChannel(0),
                heard: Vec::new(),
                id: ctx.id.0,
            });
            eng.step();
            let out = eng.into_outputs();
            assert_eq!(out[0], vec![1], "only the true neighbor is audible ({resolver:?})");
        }
    }

    #[test]
    fn different_channels_do_not_interfere() {
        // Node 1 and node 2 broadcast on *different* global channels; the
        // center listens on channel 0 and must cleanly hear node 1.
        let mut b = Network::builder(3);
        b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(9)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0), GlobalChannel(5)]);
        b.set_channels(NodeId(2), vec![GlobalChannel(5), GlobalChannel(0)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let net = b.build().unwrap();
        let mut eng = Engine::new(&net, 3, |ctx| Fixed {
            bcast: ctx.id != NodeId(0),
            // Local channel 0 maps to g0 for nodes 0 and 1, but to g5 for
            // node 2 — local labels are node-private.
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        let out = eng.into_outputs();
        assert_eq!(out[0], vec![1]);
    }

    #[test]
    fn counters_track_actions() {
        let net = star(3);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        eng.step();
        let c = eng.counters();
        assert_eq!(c.slots, 2);
        assert_eq!(c.broadcasts, 2);
        assert_eq!(c.listens, 6);
        // Center hears leaf 1 twice; leaves 2 and 3 are not adjacent to leaf
        // 1, so they idle-listen.
        assert_eq!(c.deliveries, 2);
        assert_eq!(c.idle_listens, 4);
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        struct Rnd {
            heard: u64,
        }
        impl Protocol for Rnd {
            type Message = u8;
            type Output = u64;
            fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u8> {
                use rand::Rng;
                if ctx.rng.gen_bool(0.5) {
                    Action::Broadcast { channel: LocalChannel(ctx.rng.gen_range(0..2)), message: 1 }
                } else {
                    Action::Listen { channel: LocalChannel(ctx.rng.gen_range(0..2)) }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u8>) {
                if matches!(fb, Feedback::Heard(_)) {
                    self.heard += 1;
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> u64 {
                self.heard
            }
        }
        let net = star(4);
        let run = |seed: u64, resolver: Resolver| {
            let mut eng = Engine::with_resolver(&net, seed, resolver, |_| Rnd { heard: 0 });
            eng.run_to_completion(200);
            (eng.counters(), eng.into_outputs())
        };
        let (c1, o1) = run(42, Resolver::Auto);
        let (c2, o2) = run(42, Resolver::Auto);
        let (c3, _) = run(43, Resolver::Auto);
        assert_eq!(c1, c2);
        assert_eq!(o1, o2);
        assert_ne!(c1, c3, "different seeds should (generically) differ");
        // Every resolver is observationally identical.
        for resolver in ALL_RESOLVERS {
            let (c, o) = run(42, resolver);
            assert_eq!(c, c1, "{resolver:?} diverges on counters");
            assert_eq!(o, o1, "{resolver:?} diverges on outputs");
        }
    }

    #[test]
    fn probe_stops_run_early() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let mut probe = |_slot: u64, eng: &Engine<'_, Fixed>| -> bool {
            !eng.protocol(NodeId(0)).heard.is_empty()
        };
        let outcome = eng.run(1000, Some((1, &mut probe)));
        assert_eq!(outcome.completed_at, Some(1));
        assert_eq!(outcome.slots_run, 1);
    }

    #[test]
    fn run_respects_max_slots() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let outcome = eng.run_to_completion(17);
        assert_eq!(outcome.slots_run, 17);
        assert!(!outcome.all_protocols_done);
    }

    #[test]
    fn sleeping_nodes_neither_send_nor_hear() {
        struct Sleepy;
        impl Protocol for Sleepy {
            type Message = u8;
            type Output = ();
            fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
                Action::Sleep
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u8>) {
                assert_eq!(fb, Feedback::Slept);
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) {}
        }
        let net = star(2);
        let mut eng = Engine::new(&net, 7, |_| Sleepy);
        eng.step();
        assert_eq!(eng.counters().sleeps, 3);
    }

    #[test]
    fn heard_messages_are_not_cloned_by_the_engine() {
        // A message type whose clone count is observable: the engine must
        // never clone it, even across many deliveries.
        use std::sync::atomic::{AtomicU64, Ordering};
        static CLONES: AtomicU64 = AtomicU64::new(0);

        #[derive(Debug, PartialEq, Eq)]
        struct Counted(u32);
        impl Clone for Counted {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, Ordering::Relaxed);
                Counted(self.0)
            }
        }

        struct Payload {
            bcast: bool,
            heard: u64,
        }
        impl Protocol for Payload {
            type Message = Counted;
            type Output = u64;
            fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<Counted> {
                if self.bcast {
                    Action::Broadcast { channel: LocalChannel(0), message: Counted(9) }
                } else {
                    Action::Listen { channel: LocalChannel(0) }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, Counted>) {
                if let Feedback::Heard(m) = fb {
                    assert_eq!(m.0, 9);
                    self.heard += 1;
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> u64 {
                self.heard
            }
        }

        // One leaf broadcasting to the center: a delivery in every slot.
        let net = star(1);
        let mut eng = Engine::new(&net, 5, |ctx| Payload { bcast: ctx.id == NodeId(1), heard: 0 });
        for _ in 0..50 {
            eng.step();
        }
        assert_eq!(eng.counters().deliveries, 50);
        let outputs = eng.into_outputs();
        assert_eq!(outputs[0], 50, "center heard every slot");
        assert_eq!(CLONES.load(Ordering::Relaxed), 0, "engine cloned a message");
    }

    #[test]
    fn dense_channel_mix_is_resolver_invariant() {
        // A tougher scenario than the unit cases above: several overlapping
        // channels, random roles, non-trivial topology. All four resolvers
        // must agree slot-by-slot on every counter and output.
        struct Rnd {
            c: u16,
            heard: Vec<u32>,
        }
        impl Protocol for Rnd {
            type Message = u32;
            type Output = Vec<u32>;
            fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
                use rand::Rng;
                let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
                if ctx.rng.gen_bool(0.4) {
                    Action::Broadcast { channel, message: ctx.rng.gen_range(0..1000u32) }
                } else {
                    Action::Listen { channel }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
                if let Feedback::Heard(m) = fb {
                    self.heard.push(*m);
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> Vec<u32> {
                self.heard
            }
        }

        // Wheel graph: hub 0 plus a cycle of 12, all sharing 3 channels.
        let n = 13usize;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(
                NodeId(v as u32),
                vec![GlobalChannel(0), GlobalChannel(1), GlobalChannel(2)],
            );
        }
        for v in 1..n as u32 {
            b.add_edge(NodeId(0), NodeId(v));
            let next = if v as usize == n - 1 { 1 } else { v + 1 };
            b.add_edge(NodeId(v), NodeId(next));
        }
        let net = b.build().unwrap();

        let run = |resolver: Resolver| {
            let mut eng =
                Engine::with_resolver(&net, 99, resolver, |_| Rnd { c: 3, heard: Vec::new() });
            eng.run_to_completion(300);
            (eng.counters(), eng.into_outputs())
        };
        let (c0, o0) = run(Resolver::Naive);
        assert!(c0.deliveries > 0, "scenario must exercise deliveries");
        assert!(c0.collisions > 0, "scenario must exercise collisions");
        for resolver in [Resolver::Auto, Resolver::BroadcasterCentric, Resolver::ListenerCentric] {
            let (c, o) = run(resolver);
            assert_eq!(c, c0, "{resolver:?} counters diverge from naive");
            assert_eq!(o, o0, "{resolver:?} outputs diverge from naive");
        }
    }
}
