//! The synchronous slot-stepped execution engine.
//!
//! In each slot the engine: (1) collects one [`Action`] from every node,
//! (2) groups broadcasters by *global* channel, (3) for each listener,
//! counts how many of its *neighbors* broadcast on the listened channel and
//! delivers the message iff that count is exactly one, and (4) hands every
//! node its [`Feedback`]. This is precisely the communication model of paper
//! §3 (no collision detection, collision ≡ silence, broadcasters hear only
//! themselves).

use crate::ids::{LocalChannel, NodeId, Slot};
use crate::network::Network;
use crate::protocol::{Action, Feedback, NodeCtx, Protocol, SlotCtx};
use crate::rng::stream_rng;
use rand::rngs::SmallRng;

/// Aggregate event counters for a run, useful for energy/traffic accounting
/// and for sanity-checking experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Slots executed.
    pub slots: u64,
    /// Broadcast actions.
    pub broadcasts: u64,
    /// Listen actions.
    pub listens: u64,
    /// Sleep actions.
    pub sleeps: u64,
    /// Successful deliveries (listener heard exactly one neighbor).
    pub deliveries: u64,
    /// Listener-slots lost to collision (≥ 2 broadcasting neighbors).
    pub collisions: u64,
    /// Listener-slots in which no neighbor broadcast on the channel.
    pub idle_listens: u64,
}

/// Outcome of [`Engine::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Slots actually executed.
    pub slots_run: u64,
    /// First slot (1-based count of executed slots) at which the progress
    /// probe returned `true`, if it ever did.
    pub completed_at: Option<u64>,
    /// `true` if every protocol reported [`Protocol::is_complete`] when the
    /// run stopped.
    pub all_protocols_done: bool,
}

/// The execution engine. Owns one protocol instance and one RNG stream per
/// node; borrows the immutable [`Network`].
///
/// # Examples
/// ```
/// use crn_sim::*;
///
/// // Two nodes, one shared channel; node 0 beacons, node 1 listens.
/// struct Side { tx: bool, heard: Option<u32> }
/// impl Protocol for Side {
///     type Message = u32;
///     type Output = Option<u32>;
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
///         if self.tx {
///             Action::Broadcast { channel: LocalChannel(0), message: 7 }
///         } else {
///             Action::Listen { channel: LocalChannel(0) }
///         }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<u32>) {
///         if let Feedback::Heard(m) = fb { self.heard = Some(m); }
///     }
///     fn is_complete(&self) -> bool { self.heard.is_some() || self.tx }
///     fn into_output(self) -> Option<u32> { self.heard }
/// }
///
/// let mut b = Network::builder(2);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
/// b.set_channels(NodeId(1), vec![GlobalChannel(0)]);
/// b.add_edge(NodeId(0), NodeId(1));
/// let net = b.build()?;
/// let mut eng = Engine::new(&net, 1, |ctx| Side { tx: ctx.id == NodeId(0), heard: None });
/// eng.run(10, None);
/// assert_eq!(eng.into_outputs()[1], Some(7));
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
pub struct Engine<'net, P: Protocol> {
    net: &'net Network,
    protocols: Vec<Option<P>>,
    rngs: Vec<SmallRng>,
    slot: u64,
    counters: Counters,
    // Retained scratch buffers (cleared each slot via the touched list).
    bcasters_by_channel: Vec<Vec<u32>>,
    touched_channels: Vec<u32>,
    actions: Vec<SlotPlan<P::Message>>,
    feedbacks: Vec<Feedback<P::Message>>,
    /// Densely remapped global channels: `global -> dense index`.
    dense: Vec<u32>,
}

/// A progress probe: evaluated every `interval` slots with the slot count
/// and the engine; returning `true` stops the run (ground-truth completion).
pub type Probe<'a, 'b, 'net, P> = (u64, &'a mut (dyn FnMut(u64, &Engine<'net, P>) -> bool + 'b));

/// Internal per-node slot plan after local→global translation.
#[derive(Debug, Clone)]
enum SlotPlan<M> {
    Bcast { message: M },
    Listen { dense_channel: u32 },
    Sleep,
}

impl<'net, P: Protocol> Engine<'net, P> {
    /// Creates an engine for `net`, constructing each node's protocol via
    /// `make`, and deriving all node RNG streams from `seed`.
    pub fn new(net: &'net Network, seed: u64, mut make: impl FnMut(NodeCtx) -> P) -> Self {
        let n = net.len();
        let c = net.channels_per_node();
        // Dense channel remap so scratch vectors are O(universe), not
        // O(max raw id).
        let mut raw_ids: Vec<u32> = (0..n)
            .flat_map(|v| net.channel_map(NodeId(v as u32)).iter().map(|g| g.0))
            .collect();
        raw_ids.sort_unstable();
        raw_ids.dedup();
        let max_raw = raw_ids.last().copied().unwrap_or(0) as usize;
        let mut dense = vec![u32::MAX; max_raw + 1];
        for (i, &raw) in raw_ids.iter().enumerate() {
            dense[raw as usize] = i as u32;
        }
        let universe = raw_ids.len();

        let protocols = (0..n)
            .map(|v| {
                Some(make(NodeCtx {
                    id: NodeId(v as u32),
                    num_channels: c as u16,
                }))
            })
            .collect();
        let rngs = (0..n).map(|v| stream_rng(seed, v as u64)).collect();
        Engine {
            net,
            protocols,
            rngs,
            slot: 0,
            counters: Counters::default(),
            bcasters_by_channel: vec![Vec::new(); universe],
            touched_channels: Vec::new(),
            actions: Vec::with_capacity(n),
            feedbacks: Vec::with_capacity(n),
            dense,
        }
    }

    /// The network this engine runs on.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// The current slot index (number of slots already executed).
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Aggregate counters so far.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Read access to the protocol instances (for progress probes).
    ///
    /// # Panics
    /// Panics if called after [`Engine::into_outputs`].
    pub fn protocol(&self, v: NodeId) -> &P {
        self.protocols[v.index()].as_ref().expect("protocol already consumed")
    }

    /// Applies `f` to every protocol in node order.
    pub fn for_each_protocol(&self, mut f: impl FnMut(NodeId, &P)) {
        for (i, p) in self.protocols.iter().enumerate() {
            f(NodeId(i as u32), p.as_ref().expect("protocol already consumed"));
        }
    }

    /// `true` once every node's protocol reports completion.
    pub fn all_complete(&self) -> bool {
        self.protocols
            .iter()
            .all(|p| p.as_ref().map(|p| p.is_complete()).unwrap_or(true))
    }

    /// Executes exactly one slot.
    pub fn step(&mut self) {
        let slot = Slot(self.slot);
        let n = self.net.len();
        debug_assert!(self.touched_channels.is_empty());
        self.actions.clear();

        // Phase 1: collect actions; translate local labels to dense global
        // channels; register broadcasters.
        for v in 0..n {
            let proto = self.protocols[v].as_mut().expect("protocol consumed");
            let mut ctx = SlotCtx { slot, rng: &mut self.rngs[v] };
            let action = proto.act(&mut ctx);
            let plan = match action {
                Action::Broadcast { channel, message } => {
                    self.counters.broadcasts += 1;
                    let dense = self.translate(NodeId(v as u32), channel);
                    let list = &mut self.bcasters_by_channel[dense as usize];
                    if list.is_empty() {
                        self.touched_channels.push(dense);
                    }
                    list.push(v as u32);
                    SlotPlan::Bcast { message }
                }
                Action::Listen { channel } => {
                    self.counters.listens += 1;
                    let dense = self.translate(NodeId(v as u32), channel);
                    SlotPlan::Listen { dense_channel: dense }
                }
                Action::Sleep => {
                    self.counters.sleeps += 1;
                    SlotPlan::Sleep
                }
            };
            self.actions.push(plan);
        }

        // Phase 2: resolve deliveries.
        self.feedbacks.clear();
        for v in 0..n {
            let fb = match &self.actions[v] {
                SlotPlan::Bcast { .. } => Feedback::Sent,
                SlotPlan::Sleep => Feedback::Slept,
                SlotPlan::Listen { dense_channel } => {
                    let mut heard_from: Option<u32> = None;
                    let mut adjacent_bcasters = 0u32;
                    for &b in &self.bcasters_by_channel[*dense_channel as usize] {
                        if self.net.are_neighbors(NodeId(v as u32), NodeId(b)) {
                            adjacent_bcasters += 1;
                            if adjacent_bcasters > 1 {
                                break;
                            }
                            heard_from = Some(b);
                        }
                    }
                    match (adjacent_bcasters, heard_from) {
                        (1, Some(b)) => {
                            self.counters.deliveries += 1;
                            match &self.actions[b as usize] {
                                SlotPlan::Bcast { message, .. } => {
                                    Feedback::Heard(message.clone())
                                }
                                _ => unreachable!("registered broadcaster must be broadcasting"),
                            }
                        }
                        (0, _) => {
                            self.counters.idle_listens += 1;
                            Feedback::Silence
                        }
                        _ => {
                            self.counters.collisions += 1;
                            Feedback::Silence
                        }
                    }
                }
            };
            self.feedbacks.push(fb);
        }

        // Phase 3: deliver feedback.
        for (v, fb) in self.feedbacks.drain(..).enumerate() {
            let proto = self.protocols[v].as_mut().expect("protocol consumed");
            let mut ctx = SlotCtx { slot, rng: &mut self.rngs[v] };
            proto.feedback(&mut ctx, fb);
        }

        // Cleanup scratch.
        for ch in self.touched_channels.drain(..) {
            self.bcasters_by_channel[ch as usize].clear();
        }
        self.slot += 1;
        self.counters.slots += 1;
    }

    #[inline]
    fn translate(&self, v: NodeId, l: LocalChannel) -> u32 {
        let g = self.net.local_to_global(v, l);
        let dense = self.dense[g.index()];
        debug_assert_ne!(dense, u32::MAX, "channel {g} not in dense map");
        dense
    }

    /// Runs until `max_slots` slots have executed, every protocol is
    /// complete, or the optional probe returns `true`.
    ///
    /// The probe (if provided as `Some((interval, f))`) is evaluated every
    /// `interval` slots with the current slot count; it is how experiments
    /// measure *time-to-completion* against external ground truth. The run
    /// continues to the protocols' own schedule end even after the probe
    /// fires only if `stop_on_probe` is false — here we always stop, because
    /// completion-time experiments don't need the tail.
    pub fn run(&mut self, max_slots: u64, mut probe: Option<Probe<'_, '_, 'net, P>>) -> RunOutcome {
        let mut completed_at = None;
        // Evaluate the probe at slot 0 too: some scenarios are trivially
        // complete before any communication.
        if let Some((_, f)) = probe.as_mut() {
            if f(0, self) {
                completed_at = Some(0);
            }
        }
        while completed_at.is_none() && self.slot < max_slots && !self.all_complete() {
            self.step();
            if let Some((interval, f)) = probe.as_mut() {
                if self.slot.is_multiple_of(*interval) && f(self.slot, self) {
                    completed_at = Some(self.slot);
                }
            }
        }
        // One final probe evaluation at the end of the schedule, so that a
        // coarse probe interval cannot miss a completion at the tail.
        if completed_at.is_none() {
            if let Some((_, f)) = probe.as_mut() {
                if f(self.slot, self) {
                    completed_at = Some(self.slot);
                }
            }
        }
        RunOutcome {
            slots_run: self.slot,
            completed_at,
            all_protocols_done: self.all_complete(),
        }
    }

    /// Runs the protocols' full fixed schedule (up to `max_slots`) with no
    /// probe.
    pub fn run_to_completion(&mut self, max_slots: u64) -> RunOutcome {
        self.run(max_slots, None)
    }

    /// Consumes the engine and extracts each node's protocol output.
    pub fn into_outputs(mut self) -> Vec<P::Output> {
        self.protocols
            .iter_mut()
            .map(|p| p.take().expect("protocol consumed twice").into_output())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::GlobalChannel;

    /// Test protocol: node 0..k broadcast a constant each slot on local
    /// channel `ch`; others listen on local channel `lch`; records hears.
    struct Fixed {
        bcast: bool,
        ch: LocalChannel,
        heard: Vec<u32>,
        id: u32,
    }

    impl Protocol for Fixed {
        type Message = u32;
        type Output = Vec<u32>;
        fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
            if self.bcast {
                Action::Broadcast { channel: self.ch, message: self.id }
            } else {
                Action::Listen { channel: self.ch }
            }
        }
        fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<u32>) {
            if let Feedback::Heard(m) = fb {
                self.heard.push(m);
            }
        }
        fn is_complete(&self) -> bool {
            false
        }
        fn into_output(self) -> Vec<u32> {
            self.heard
        }
    }

    /// Star network: node 0 center; all share global channel 0; optionally
    /// extra private channels to make c uniform.
    fn star(leaves: usize) -> Network {
        let n = leaves + 1;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(NodeId(v as u32), vec![GlobalChannel(0), GlobalChannel(1 + v as u32)]);
        }
        for l in 1..n {
            b.add_edge(NodeId(0), NodeId(l as u32));
        }
        b.build().unwrap()
    }

    #[test]
    fn single_broadcaster_is_heard() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        let out = eng.into_outputs();
        assert_eq!(out[0], vec![1], "center hears the lone leaf");
        assert!(out[1].is_empty(), "broadcaster hears nothing");
    }

    #[test]
    fn two_broadcasters_collide_to_silence() {
        let net = star(2);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id != NodeId(0),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        assert_eq!(eng.counters().collisions, 1);
        let out = eng.into_outputs();
        assert!(out[0].is_empty(), "collision is silence");
    }

    #[test]
    fn non_neighbor_broadcasts_are_inaudible() {
        // Path 0-1 plus isolated node 2 broadcasting on the same channel:
        // node 2's broadcast must not interfere at node 0.
        let mut b = Network::builder(3);
        for v in 0..3u32 {
            b.set_channels(NodeId(v), vec![GlobalChannel(0)]);
        }
        b.add_edge(NodeId(0), NodeId(1));
        let net = b.build().unwrap();
        let mut eng = Engine::new(&net, 3, |ctx| Fixed {
            bcast: ctx.id != NodeId(0),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        let out = eng.into_outputs();
        assert_eq!(out[0], vec![1], "only the true neighbor is audible");
    }

    #[test]
    fn different_channels_do_not_interfere() {
        // Node 1 and node 2 broadcast on *different* global channels; the
        // center listens on channel 0 and must cleanly hear node 1.
        let mut b = Network::builder(3);
        b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(9)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0), GlobalChannel(5)]);
        b.set_channels(NodeId(2), vec![GlobalChannel(5), GlobalChannel(0)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let net = b.build().unwrap();
        let mut eng = Engine::new(&net, 3, |ctx| Fixed {
            bcast: ctx.id != NodeId(0),
            // Local channel 0 maps to g0 for nodes 0 and 1, but to g5 for
            // node 2 — local labels are node-private.
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        let out = eng.into_outputs();
        assert_eq!(out[0], vec![1]);
    }

    #[test]
    fn counters_track_actions() {
        let net = star(3);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        eng.step();
        eng.step();
        let c = eng.counters();
        assert_eq!(c.slots, 2);
        assert_eq!(c.broadcasts, 2);
        assert_eq!(c.listens, 6);
        // Center hears leaf 1 twice; leaves 2 and 3 are not adjacent to leaf
        // 1, so they idle-listen.
        assert_eq!(c.deliveries, 2);
        assert_eq!(c.idle_listens, 4);
    }

    #[test]
    fn determinism_same_seed_same_counters() {
        struct Rnd {
            heard: u64,
        }
        impl Protocol for Rnd {
            type Message = u8;
            type Output = u64;
            fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u8> {
                use rand::Rng;
                if ctx.rng.gen_bool(0.5) {
                    Action::Broadcast { channel: LocalChannel(ctx.rng.gen_range(0..2)), message: 1 }
                } else {
                    Action::Listen { channel: LocalChannel(ctx.rng.gen_range(0..2)) }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<u8>) {
                if matches!(fb, Feedback::Heard(_)) {
                    self.heard += 1;
                }
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) -> u64 {
                self.heard
            }
        }
        let net = star(4);
        let run = |seed: u64| {
            let mut eng = Engine::new(&net, seed, |_| Rnd { heard: 0 });
            eng.run_to_completion(200);
            (eng.counters(), eng.into_outputs())
        };
        let (c1, o1) = run(42);
        let (c2, o2) = run(42);
        let (c3, _) = run(43);
        assert_eq!(c1, c2);
        assert_eq!(o1, o2);
        assert_ne!(c1, c3, "different seeds should (generically) differ");
    }

    #[test]
    fn probe_stops_run_early() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let mut probe = |_slot: u64, eng: &Engine<'_, Fixed>| -> bool {
            !eng.protocol(NodeId(0)).heard.is_empty()
        };
        let outcome = eng.run(1000, Some((1, &mut probe)));
        assert_eq!(outcome.completed_at, Some(1));
        assert_eq!(outcome.slots_run, 1);
    }

    #[test]
    fn run_respects_max_slots() {
        let net = star(1);
        let mut eng = Engine::new(&net, 7, |ctx| Fixed {
            bcast: ctx.id == NodeId(1),
            ch: LocalChannel(0),
            heard: Vec::new(),
            id: ctx.id.0,
        });
        let outcome = eng.run_to_completion(17);
        assert_eq!(outcome.slots_run, 17);
        assert!(!outcome.all_protocols_done);
    }

    #[test]
    fn sleeping_nodes_neither_send_nor_hear() {
        struct Sleepy;
        impl Protocol for Sleepy {
            type Message = u8;
            type Output = ();
            fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
                Action::Sleep
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<u8>) {
                assert_eq!(fb, Feedback::Slept);
            }
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) {}
        }
        let net = star(2);
        let mut eng = Engine::new(&net, 7, |_| Sleepy);
        eng.step();
        assert_eq!(eng.counters().sleeps, 3);
    }
}
