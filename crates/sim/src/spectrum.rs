//! Primary-user spectrum dynamics: per-slot channel availability.
//!
//! Cognitive radios are *secondary* users: every channel they access is
//! licensed to a primary user (PU) who can reclaim it at any moment (paper
//! §1 motivates the whole model with exactly this). The base simulator
//! assigns channel sets once and never changes them; this module adds the
//! missing time dimension — a pluggable process that marks global channels
//! *busy* or *idle* per slot, in the spirit of the Poissonian/Markovian
//! primary-traffic models of Chaoub & Ibn-Elhaj (arXiv:1206.0133) and the
//! PU-activity-aware dissemination work of Rehmani (arXiv:1107.4950).
//!
//! A busy channel behaves like an occupied medium: broadcasts on it are
//! lost (the broadcaster cannot tell — it still observes
//! [`Feedback::Sent`](crate::protocol::Feedback)) and listeners on it hear
//! noise, which in this no-collision-detection model is indistinguishable
//! from a collision. Install dynamics on an engine with
//! [`Engine::set_spectrum`](crate::engine::Engine::set_spectrum).
//!
//! # Determinism
//!
//! The state is advanced **once per slot**, before any node acts, and every
//! random draw comes from the per-(slot, channel) streams of
//! [`rng::channel_slot_seed`](crate::rng::channel_slot_seed) — keyed by
//! *which channel is transitioning in which slot*, never by visit order.
//! The busy mask is therefore a pure function of `(master seed, dynamics,
//! slot)`: bit-identical across every
//! [`Resolver`](crate::engine::Resolver), every worker-pool thread count,
//! pooled phase-1 collection on or off, and across
//! [`Engine::reset`](crate::engine::Engine::reset) reuse.
//!
//! The on/off processes are sojourn-based: a channel holds its state for a
//! dwell time drawn *when the state is entered* (geometric/Poisson, via the
//! rand shim's `sample_geometric`/`sample_poisson`), so a slot costs one
//! RNG construction only on the (rare) transition slots, not per channel
//! per slot. All channels start **idle**; the stationary mix is reached
//! within a few mean sojourn times.

use crate::bitset::BitSet;
use crate::ids::GlobalChannel;
use crate::rng::channel_slot_rng;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::HashMap;

/// Sojourn sentinel for a state that never expires (a transition
/// probability of zero).
const FOREVER: u64 = u64::MAX;

/// A primary-user traffic process, evaluated per slot into a busy mask over
/// the network's global channels.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectrumDynamics {
    /// No primary-user activity: every channel is idle in every slot. An
    /// engine with `Static` dynamics is bit-identical to one with no
    /// spectrum layer at all — today's behaviour.
    Static,
    /// Two-state Markov chain per channel: an idle channel turns busy with
    /// probability `p_busy` per slot, a busy channel turns idle with
    /// probability `p_free`. Dwell times are geometric (mean `1/p_busy`
    /// idle, `1/p_free` busy); the stationary busy fraction is
    /// `p_busy / (p_busy + p_free)`. A probability of zero pins the state
    /// forever.
    MarkovOnOff {
        /// Per-slot idle → busy transition probability, in `[0, 1]`.
        p_busy: f64,
        /// Per-slot busy → idle transition probability, in `[0, 1]`.
        p_free: f64,
    },
    /// Poisson burst arrivals per channel: while idle, a burst begins each
    /// slot with probability `1 − exp(−rate)` (the discretization of a
    /// Poisson arrival process with `rate` arrivals per slot); a burst
    /// holds the channel busy for `max(1, Poisson(mean_len))` slots.
    PoissonBursts {
        /// Burst arrival rate per slot (≥ 0; 0 means never busy).
        rate: f64,
        /// Mean burst length in slots (≥ 1).
        mean_len: f64,
    },
    /// Replay an explicit per-slot busy schedule: entry `t` lists the
    /// global channels busy in slot `t`. The trace is **periodic** — slot
    /// `t` reads entry `t mod len` — so a short pattern (e.g. a radar duty
    /// cycle) extends over arbitrarily long runs. Channels not present in
    /// the network are ignored; an empty trace means always idle.
    TraceReplay(Vec<Vec<GlobalChannel>>),
}

impl SpectrumDynamics {
    /// `true` for [`SpectrumDynamics::Static`] (no PU activity ever).
    pub fn is_static(&self) -> bool {
        matches!(self, SpectrumDynamics::Static)
    }

    /// A [`SpectrumDynamics::MarkovOnOff`] with stationary busy fraction
    /// `duty` and mean busy sojourn `mean_busy` slots — the knob the
    /// duty-cycle experiments sweep. `duty = 0` yields a chain that never
    /// leaves idle.
    ///
    /// # Panics
    /// Panics unless `0 <= duty < 1`, `mean_busy >= 1`, and the pair is
    /// expressible by a per-slot chain: a high duty with a short busy
    /// sojourn would demand a mean idle sojourn below one slot
    /// (`p_busy > 1`), which would silently realize a *lower* duty than
    /// requested — the panic says to raise `mean_busy` instead. The
    /// reachable ceiling is `duty <= mean_busy / (mean_busy + 1)`.
    pub fn markov_with_duty(duty: f64, mean_busy: f64) -> SpectrumDynamics {
        assert!((0.0..1.0).contains(&duty), "duty {duty} out of [0, 1)");
        assert!(mean_busy >= 1.0, "mean busy sojourn must be >= 1 slot");
        let p_free = 1.0 / mean_busy;
        // duty = p_busy / (p_busy + p_free) ⇒ p_busy = duty·p_free/(1−duty).
        // A relative epsilon keeps the exact boundary (e.g. duty 0.8 with
        // mean_busy 4 ⇒ p_busy = 1) usable despite float rounding.
        let p_busy = duty * p_free / (1.0 - duty);
        assert!(
            p_busy <= 1.0 + 1e-9,
            "duty {duty} unreachable with mean_busy {mean_busy} (needs p_busy {p_busy:.3} > 1); \
             raise mean_busy to at least {:.1}",
            duty / (1.0 - duty)
        );
        SpectrumDynamics::MarkovOnOff { p_busy: p_busy.min(1.0), p_free }
    }

    /// The long-run busy fraction of a single channel, where the process
    /// defines one: exact for [`SpectrumDynamics::Static`] and
    /// [`SpectrumDynamics::MarkovOnOff`], the mean-sojourn approximation
    /// for [`SpectrumDynamics::PoissonBursts`] (bursts are assumed not to
    /// overlap), `None` for [`SpectrumDynamics::TraceReplay`] (it depends
    /// on which channels the trace names).
    pub fn duty_cycle(&self) -> Option<f64> {
        match *self {
            SpectrumDynamics::Static => Some(0.0),
            SpectrumDynamics::MarkovOnOff { p_busy, p_free } => {
                if p_busy <= 0.0 {
                    Some(0.0)
                } else if p_free <= 0.0 {
                    Some(1.0)
                } else {
                    Some(p_busy / (p_busy + p_free))
                }
            }
            SpectrumDynamics::PoissonBursts { rate, mean_len } => {
                if rate <= 0.0 {
                    return Some(0.0);
                }
                let mean_idle = 1.0 / -(-rate).exp_m1();
                Some(mean_len / (mean_len + mean_idle))
            }
            SpectrumDynamics::TraceReplay(_) => None,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities, a negative/NaN rate, or a mean
    /// burst length below one slot.
    fn validate(&self) {
        match *self {
            SpectrumDynamics::Static | SpectrumDynamics::TraceReplay(_) => {}
            SpectrumDynamics::MarkovOnOff { p_busy, p_free } => {
                assert!((0.0..=1.0).contains(&p_busy), "p_busy {p_busy} out of [0, 1]");
                assert!((0.0..=1.0).contains(&p_free), "p_free {p_free} out of [0, 1]");
            }
            SpectrumDynamics::PoissonBursts { rate, mean_len } => {
                assert!(rate >= 0.0 && rate.is_finite(), "rate {rate} must be finite and >= 0");
                // The upper bound is sample_poisson's domain — enforcing it
                // here fails fast at install time instead of panicking deep
                // inside Engine::step when the first burst starts.
                assert!(
                    (1.0..=700.0).contains(&mean_len),
                    "mean_len {mean_len} out of [1, 700] slots"
                );
            }
        }
    }
}

/// Draws the dwell time for the state just entered (`busy`), from the
/// transitioning channel's per-(slot, channel) stream.
fn draw_sojourn(dynamics: &SpectrumDynamics, busy: bool, rng: &mut SmallRng) -> u64 {
    match *dynamics {
        SpectrumDynamics::MarkovOnOff { p_busy, p_free } => {
            let p = if busy { p_free } else { p_busy };
            if p <= 0.0 {
                FOREVER
            } else {
                rng.sample_geometric(p.min(1.0))
            }
        }
        SpectrumDynamics::PoissonBursts { rate, mean_len } => {
            if busy {
                rng.sample_poisson(mean_len).max(1)
            } else {
                let p_arrival = -(-rate).exp_m1(); // 1 − exp(−rate)
                if p_arrival <= 0.0 {
                    FOREVER
                } else {
                    rng.sample_geometric(p_arrival)
                }
            }
        }
        SpectrumDynamics::Static | SpectrumDynamics::TraceReplay(_) => FOREVER,
    }
}

/// The materialized per-channel availability state an
/// [`Engine`](crate::engine::Engine) owns once dynamics are installed.
///
/// Channels are tracked in the engine's *dense* numbering (ascending raw
/// global-channel order over the channels actually present in the
/// network); every public accessor speaks [`GlobalChannel`].
#[derive(Debug, Clone)]
pub struct SpectrumState {
    dynamics: SpectrumDynamics,
    /// Dense channel → raw global id.
    raw: Vec<u32>,
    /// Raw global id → dense channel (for trace replay and queries).
    raw_to_dense: HashMap<u32, u32>,
    /// Busy mask for the current slot, dense-indexed.
    mask: BitSet,
    /// Per dense channel: current state of the on/off process.
    busy: Vec<bool>,
    /// Per dense channel: slots remaining in the current sojourn
    /// ([`FOREVER`] pins the state).
    left: Vec<u64>,
    /// Per dense channel: `false` until the initial sojourn is drawn.
    started: Vec<bool>,
    /// Per dense channel: total busy slots observed (utilization).
    busy_slots: Vec<u64>,
    /// Slots advanced so far.
    slots: u64,
    /// The absolute slot of the first `advance` call (dynamics installed
    /// mid-run start later than 0); anchors history lookups by slot.
    first_slot: Option<u64>,
    record_history: bool,
    /// Entry `i`: the busy dense channels of slot `first_slot + i` (kept
    /// only while `record_history`, for post-run sensing classification).
    history: Vec<Vec<u32>>,
}

impl SpectrumState {
    /// Builds the state for `dynamics` over the engine's dense channel
    /// universe (`dense_to_raw[d]` = raw global id of dense channel `d`).
    pub(crate) fn new(dynamics: SpectrumDynamics, dense_to_raw: &[u32]) -> SpectrumState {
        dynamics.validate();
        let universe = dense_to_raw.len();
        let raw_to_dense = dense_to_raw.iter().enumerate().map(|(d, &r)| (r, d as u32)).collect();
        SpectrumState {
            dynamics,
            raw: dense_to_raw.to_vec(),
            raw_to_dense,
            mask: BitSet::new(universe),
            busy: vec![false; universe],
            left: vec![0; universe],
            started: vec![false; universe],
            busy_slots: vec![0; universe],
            slots: 0,
            first_slot: None,
            record_history: true,
            history: Vec::new(),
        }
    }

    /// Rewinds to the pre-run state (all channels idle, counters and
    /// history cleared) — called by
    /// [`Engine::reset`](crate::engine::Engine::reset). Because every draw
    /// is keyed by `(master seed, slot, channel)`, a reset state replayed
    /// under the same seed reproduces the original masks bit for bit.
    pub(crate) fn reset(&mut self) {
        self.mask.clear();
        self.busy.fill(false);
        self.left.fill(0);
        self.started.fill(false);
        self.busy_slots.fill(0);
        self.slots = 0;
        self.first_slot = None;
        self.history.clear();
    }

    /// Advances the process into `slot` (called once per slot, in slot
    /// order, before any node acts) and refreshes the busy mask.
    pub(crate) fn advance(&mut self, master: u64, slot: u64) {
        self.first_slot.get_or_insert(slot);
        match &self.dynamics {
            SpectrumDynamics::Static => {}
            SpectrumDynamics::TraceReplay(trace) => {
                self.mask.clear();
                if !trace.is_empty() {
                    let step = &trace[(slot % trace.len() as u64) as usize];
                    for g in step {
                        if let Some(&d) = self.raw_to_dense.get(&g.0) {
                            self.mask.insert(d as usize);
                        }
                    }
                }
            }
            dynamics => {
                for ch in 0..self.raw.len() {
                    if self.left[ch] == 0 {
                        // Transition slot: flip (or take the initial idle
                        // state) and draw the new state's dwell time from
                        // the channel's own (slot, channel) stream.
                        let mut rng = channel_slot_rng(master, slot, self.raw[ch]);
                        if self.started[ch] {
                            self.busy[ch] = !self.busy[ch];
                            if self.busy[ch] {
                                self.mask.insert(ch);
                            } else {
                                self.mask.remove(ch);
                            }
                        } else {
                            self.started[ch] = true;
                        }
                        self.left[ch] = draw_sojourn(dynamics, self.busy[ch], &mut rng);
                    }
                    if self.left[ch] != FOREVER {
                        self.left[ch] -= 1;
                    }
                }
            }
        }
        for ch in self.mask.iter() {
            self.busy_slots[ch] += 1;
        }
        if self.record_history {
            self.history.push(self.mask.iter().map(|c| c as u32).collect());
        }
        self.slots += 1;
    }

    /// The current slot's busy mask over the engine's dense channels.
    pub(crate) fn mask(&self) -> &BitSet {
        &self.mask
    }

    /// The installed dynamics.
    pub fn dynamics(&self) -> &SpectrumDynamics {
        &self.dynamics
    }

    /// `true` if `g` is busy in the most recently advanced slot (`false`
    /// for channels outside the network's universe).
    pub fn is_busy(&self, g: GlobalChannel) -> bool {
        self.raw_to_dense.get(&g.0).is_some_and(|&d| self.mask.contains(d as usize))
    }

    /// Whether `g` was busy in (absolute engine) `slot`, from the recorded
    /// history. `None` if the slot was not simulated under these dynamics
    /// (before a mid-run install, or not yet reached), history recording
    /// is off, or the channel is outside the universe.
    pub fn was_busy(&self, slot: u64, g: GlobalChannel) -> Option<bool> {
        let d = *self.raw_to_dense.get(&g.0)?;
        let idx = usize::try_from(slot.checked_sub(self.first_slot?)?).ok()?;
        self.history.get(idx).map(|step| step.contains(&d))
    }

    /// Slots advanced so far.
    pub fn slots_observed(&self) -> u64 {
        self.slots
    }

    /// Per-channel utilization: `(channel, busy slots)` over every slot
    /// advanced so far, in ascending global-channel order.
    pub fn utilization(&self) -> Vec<(GlobalChannel, u64)> {
        self.raw.iter().zip(&self.busy_slots).map(|(&r, &b)| (GlobalChannel(r), b)).collect()
    }

    /// Mean busy fraction across all channels and slots so far (the
    /// realized spectrum duty cycle).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.slots.saturating_mul(self.raw.len() as u64);
        if total == 0 {
            return 0.0;
        }
        self.busy_slots.iter().sum::<u64>() as f64 / total as f64
    }

    /// Toggles per-slot history recording (on by default; needed by
    /// [`SpectrumState::was_busy`] and post-run sensing classification —
    /// see [`trace::sensing_counts`](crate::trace::sensing_counts)).
    /// Memory is `O(slots × busy channels)`; long unattended runs can turn
    /// it off.
    pub fn set_record_history(&mut self, on: bool) {
        self.record_history = on;
        if !on {
            self.history.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance_n(state: &mut SpectrumState, master: u64, slots: u64) {
        for s in 0..slots {
            state.advance(master, s);
        }
    }

    #[test]
    fn static_dynamics_never_mask() {
        let mut st = SpectrumState::new(SpectrumDynamics::Static, &[0, 1, 2]);
        advance_n(&mut st, 7, 64);
        assert_eq!(st.busy_fraction(), 0.0);
        assert!(!st.is_busy(GlobalChannel(0)));
        assert_eq!(st.was_busy(13, GlobalChannel(1)), Some(false));
    }

    #[test]
    fn markov_duty_cycle_converges_to_stationary() {
        for duty in [0.1f64, 0.3, 0.6] {
            let dyn_ = SpectrumDynamics::markov_with_duty(duty, 4.0);
            assert!((dyn_.duty_cycle().unwrap() - duty).abs() < 1e-9);
            let mut st = SpectrumState::new(dyn_, &(0..16u32).collect::<Vec<_>>());
            st.set_record_history(false);
            advance_n(&mut st, 11, 20_000);
            let realized = st.busy_fraction();
            assert!(
                (realized - duty).abs() < 0.05,
                "duty {duty}: realized busy fraction {realized}"
            );
        }
    }

    #[test]
    fn poisson_bursts_hold_channels_busy() {
        let dyn_ = SpectrumDynamics::PoissonBursts { rate: 0.05, mean_len: 6.0 };
        let expect = dyn_.duty_cycle().unwrap();
        let mut st = SpectrumState::new(dyn_, &(0..16u32).collect::<Vec<_>>());
        st.set_record_history(false);
        advance_n(&mut st, 3, 20_000);
        let realized = st.busy_fraction();
        assert!(realized > 0.05, "bursts must actually occupy channels: {realized}");
        assert!(
            (realized - expect).abs() < 0.08,
            "realized {realized} vs mean-sojourn estimate {expect}"
        );
    }

    #[test]
    fn zero_rate_processes_stay_idle() {
        for dyn_ in [
            SpectrumDynamics::MarkovOnOff { p_busy: 0.0, p_free: 0.5 },
            SpectrumDynamics::PoissonBursts { rate: 0.0, mean_len: 4.0 },
        ] {
            let mut st = SpectrumState::new(dyn_, &[0, 1]);
            advance_n(&mut st, 5, 512);
            assert_eq!(st.busy_fraction(), 0.0);
        }
    }

    #[test]
    fn trace_replay_is_exact_and_periodic() {
        let trace = vec![
            vec![GlobalChannel(0)],
            vec![],
            vec![GlobalChannel(1), GlobalChannel(99)], // 99 not in universe: ignored
        ];
        let mut st = SpectrumState::new(SpectrumDynamics::TraceReplay(trace), &[0, 1, 2]);
        advance_n(&mut st, 0, 7);
        // Pattern of period 3 over 7 slots: slots 0,3,6 busy on ch 0;
        // slots 2,5 busy on ch 1.
        for (slot, g, busy) in [
            (0u64, 0u32, true),
            (1, 0, false),
            (2, 1, true),
            (3, 0, true),
            (5, 1, true),
            (6, 0, true),
            (2, 0, false),
        ] {
            assert_eq!(st.was_busy(slot, GlobalChannel(g)), Some(busy), "slot {slot} channel {g}");
        }
        assert_eq!(
            st.utilization(),
            vec![(GlobalChannel(0), 3), (GlobalChannel(1), 2), (GlobalChannel(2), 0),]
        );
    }

    #[test]
    fn same_seed_same_mask_sequence_and_reset_replays() {
        let dyn_ = SpectrumDynamics::MarkovOnOff { p_busy: 0.2, p_free: 0.3 };
        let universe: Vec<u32> = vec![3, 7, 8, 20];
        let mut a = SpectrumState::new(dyn_.clone(), &universe);
        let mut b = SpectrumState::new(dyn_.clone(), &universe);
        advance_n(&mut a, 42, 256);
        advance_n(&mut b, 42, 256);
        assert_eq!(a.history, b.history);
        assert!(a.busy_fraction() > 0.0, "scenario must exercise busy slots");

        // Reset and replay under the same seed: identical masks (the draws
        // are keyed by (seed, slot, channel), not by process history).
        a.reset();
        assert_eq!(a.busy_fraction(), 0.0);
        advance_n(&mut a, 42, 256);
        assert_eq!(a.history, b.history, "reset must replay bit-identically");

        // A different master seed yields a different sequence.
        let mut c = SpectrumState::new(dyn_, &universe);
        advance_n(&mut c, 43, 256);
        assert_ne!(c.history, b.history);
    }

    #[test]
    fn history_is_anchored_to_the_first_advanced_slot() {
        // Dynamics installed mid-run see their first advance at slot > 0;
        // was_busy must answer by absolute slot, not by call order.
        let trace = vec![vec![GlobalChannel(0)], vec![]];
        let mut st = SpectrumState::new(SpectrumDynamics::TraceReplay(trace), &[0, 1]);
        for slot in 10..16u64 {
            st.advance(0, slot);
        }
        // Period-2 pattern from slot 10: busy at even slots.
        assert_eq!(st.was_busy(10, GlobalChannel(0)), Some(true));
        assert_eq!(st.was_busy(11, GlobalChannel(0)), Some(false));
        assert_eq!(st.was_busy(14, GlobalChannel(0)), Some(true));
        assert_eq!(st.was_busy(3, GlobalChannel(0)), None, "pre-install slots are unknown");
        assert_eq!(st.was_busy(16, GlobalChannel(0)), None, "future slots are unknown");
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn markov_with_duty_rejects_unreachable_duty() {
        // duty 0.9 with mean busy 4 would need p_busy = 2.25: refuse loudly
        // instead of silently realizing duty 0.8.
        let _ = SpectrumDynamics::markov_with_duty(0.9, 4.0);
    }

    #[test]
    #[should_panic(expected = "mean_len")]
    fn poisson_rejects_mean_len_beyond_sampler_domain() {
        // Fail at install time, not mid-run in sample_poisson.
        let _ = SpectrumState::new(
            SpectrumDynamics::PoissonBursts { rate: 0.1, mean_len: 800.0 },
            &[0],
        );
    }

    #[test]
    #[should_panic(expected = "p_busy")]
    fn markov_validates_probabilities() {
        let _ =
            SpectrumState::new(SpectrumDynamics::MarkovOnOff { p_busy: 1.5, p_free: 0.1 }, &[0]);
    }
}
