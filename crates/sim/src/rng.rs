//! Deterministic randomness plumbing.
//!
//! Every run is driven by a single master seed. Each node (and each
//! auxiliary consumer such as topology or channel generators) receives an
//! independent stream derived with SplitMix64, so results are reproducible
//! bit-for-bit across runs and platforms, and adding a consumer does not
//! perturb the streams of existing ones.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One step of the SplitMix64 generator; used as a seed-mixing function.
///
/// # Examples
/// ```
/// use crn_sim::rng::split_mix64;
/// assert_ne!(split_mix64(1), split_mix64(2));
/// assert_eq!(split_mix64(42), split_mix64(42));
/// ```
#[inline]
pub fn split_mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream index.
///
/// Distinct `(master, stream)` pairs give (practically) independent seeds.
#[inline]
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    split_mix64(master ^ split_mix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Builds the RNG for stream `stream` of run `master`.
///
/// # Examples
/// ```
/// use crn_sim::rng::stream_rng;
/// use rand::Rng;
/// let mut a = stream_rng(7, 0);
/// let mut b = stream_rng(7, 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn stream_rng(master: u64, stream: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, stream))
}

/// Domain-separation salt for per-(slot, channel) streams, so they can never
/// collide with the per-node streams derived by [`stream_rng`].
const CHANNEL_STREAM_SALT: u64 = 0xC4A2_77E1_0B5D_93F6;

/// Derives the seed of the RNG stream belonging to `(slot, channel)` of run
/// `master`.
///
/// This is the engine's determinism convention for phase-2 resolution: any
/// randomized per-channel effect (fading, capture, adversarial noise) must
/// draw from the stream keyed by *which slot and channel* is being resolved,
/// never from a shared RNG advanced in resolution order. Keyed this way, the
/// draws are independent of channel visit order — and therefore of how many
/// [`WorkerPool`](crate::pool::WorkerPool) workers the channel-sharded
/// resolver distributes a slot across, and of which worker ends up with
/// which shard. The key is also independent of the *slot epoch*, so an
/// engine reused via [`Engine::reset`](crate::engine::Engine::reset)
/// reproduces a fresh engine's streams exactly.
#[inline]
pub fn channel_slot_seed(master: u64, slot: u64, channel: u32) -> u64 {
    derive_seed(derive_seed(master ^ CHANNEL_STREAM_SALT, slot), channel as u64)
}

/// Builds the RNG for channel `channel` in slot `slot` of run `master`.
/// See [`channel_slot_seed`] for the determinism contract.
pub fn channel_slot_rng(master: u64, slot: u64, channel: u32) -> SmallRng {
    SmallRng::seed_from_u64(channel_slot_seed(master, slot, channel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn stream_rngs_are_reproducible() {
        let mut a = stream_rng(99, 5);
        let mut b = stream_rng(99, 5);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn streams_differ() {
        let mut a = stream_rng(99, 5);
        let mut b = stream_rng(99, 6);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn channel_slot_streams_are_keyed_not_ordered() {
        // Same key, same stream — regardless of any "visit order".
        let mut a = channel_slot_rng(7, 3, 11);
        let mut b = channel_slot_rng(7, 3, 11);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        // Every component of the key separates the stream.
        assert_ne!(channel_slot_seed(7, 3, 11), channel_slot_seed(8, 3, 11));
        assert_ne!(channel_slot_seed(7, 3, 11), channel_slot_seed(7, 4, 11));
        assert_ne!(channel_slot_seed(7, 3, 11), channel_slot_seed(7, 3, 12));
        // And it cannot collide with a node stream of the same run by
        // construction (domain salt); spot-check a window.
        for v in 0..64u64 {
            assert_ne!(channel_slot_seed(7, 3, 11), derive_seed(7, v));
        }
    }

    #[test]
    fn split_mix_diffuses_low_bits() {
        // Consecutive inputs should produce well-spread outputs.
        let a = split_mix64(0);
        let b = split_mix64(1);
        assert!((a ^ b).count_ones() > 10);
    }
}
