//! # crn-sim — a cognitive radio network simulator
//!
//! This crate implements, exactly, the network model of *"Communication
//! Primitives in Cognitive Radio Networks"* (Gilbert, Kuhn, Zheng —
//! PODC 2017, arXiv:1703.06130):
//!
//! * `n` nodes with unique identities, each with a transceiver that can
//!   access `c` channels — but potentially *different* sets of channels per
//!   node, with node-private ("local") channel labels;
//! * two nodes are neighbors when they are in radio range and share at
//!   least one channel; every pair of neighbors shares at least `k` and at
//!   most `kmax` channels;
//! * time is slotted and fully synchronous; per slot a node tunes to one
//!   channel and either broadcasts or listens;
//! * a listener receives a message iff **exactly one** neighbor broadcast on
//!   the listened channel that slot; silence and collision are
//!   indistinguishable (no collision detection);
//! * nodes start simultaneously and have private randomness.
//!
//! The crate provides the [`Network`] model type with generators for
//! topologies ([`topology`]) and channel assignments ([`channels`]), the
//! slot-stepped [`Engine`], the [`Protocol`] trait that per-node algorithms
//! implement, and supporting utilities ([`graph`], [`stats`], [`bitset`],
//! [`rng`]).
//!
//! The algorithms from the paper (COUNT, CSEEK, CKSEEK, CGCAST) live in the
//! companion crate `crn-core`.
//!
//! ## Quick example
//!
//! ```
//! use crn_sim::*;
//! use crn_sim::channels::ChannelModel;
//! use crn_sim::topology::Topology;
//! use crn_sim::rng::stream_rng;
//!
//! // Five nodes on a path; all pairs share a 2-channel core out of c = 4.
//! let mut rng = stream_rng(42, 0);
//! let topo = Topology::Path { n: 5 };
//! let sets = ChannelModel::SharedCore { c: 4, core: 2 }.assign(5, &mut rng);
//! let mut b = Network::builder(5);
//! for (v, set) in sets.into_iter().enumerate() {
//!     b.set_channels(NodeId(v as u32), set);
//! }
//! b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
//! let net = b.build()?;
//! assert_eq!(net.stats().k, 2);
//! assert_eq!(net.stats().diameter, Some(4));
//! # Ok::<(), crn_sim::NetworkError>(())
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the [`pool`] module is the single sanctioned home
// of `unsafe` in this crate (the lifetime/aliasing erasures of a scoped
// worker pool, with the safety argument documented there). Everything else
// stays unsafe-free and the lint makes any new use a hard error.
#![deny(unsafe_code)]

pub mod bitset;
pub mod channels;
pub mod engine;
pub mod geo;
pub mod graph;
pub mod ids;
pub mod metrics;
pub mod network;
pub mod pool;
pub mod protocol;
pub mod rng;
pub mod spectrum;
pub mod stats;
pub mod topology;
pub mod trace;

pub use engine::{Counters, Engine, PhaseTimings, Renumbering, Resolver, RunOutcome};
pub use ids::{Edge, GlobalChannel, LocalChannel, NodeId, Slot};
pub use network::{
    MemoryFootprint, Network, NetworkBuilder, NetworkError, NetworkStats, StatsMode,
};
pub use protocol::{
    act_batch_buffered, feedback_batch_buffered, outcome, Action, BatchCtx, Feedback,
    FeedbackBatch, NodeCtx, Protocol, SlotCtx,
};
pub use spectrum::{SpectrumDynamics, SpectrumState};
