//! The cognitive radio network instance: topology + per-node channel sets.
//!
//! A [`Network`] captures everything the *environment* knows: which nodes
//! are in radio range of each other, which global channels each node can
//! access, and each node's private local labeling of its channels. Protocol
//! code never sees global channels; the engine translates local labels.
//!
//! The paper's structural parameters are computed as ground truth here:
//! every pair of neighbors shares at least `k` and at most `kmax` channels,
//! the maximum degree is `Δ`, and the diameter is `D` (paper §3).

use crate::bitset::BitSet;
use crate::graph::Graph;
use crate::ids::{Edge, GlobalChannel, LocalChannel, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Errors produced while validating a [`NetworkBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The network must contain at least one node.
    NoNodes,
    /// A node was given no channels.
    EmptyChannelSet(NodeId),
    /// All nodes must have the same number of channels `c`.
    UnequalChannelCounts {
        /// Offending node.
        node: NodeId,
        /// Its channel count.
        got: usize,
        /// The channel count of node 0.
        expected: usize,
    },
    /// A node's channel list mentions the same global channel twice.
    DuplicateChannel(NodeId, GlobalChannel),
    /// An edge endpoint does not exist.
    UnknownNode(NodeId),
    /// An edge connects a node to itself.
    SelfLoop(NodeId),
    /// Two neighbors share no channel, violating `k ≥ 1`.
    NoSharedChannel(NodeId, NodeId),
    /// A node was not assigned channels at all.
    MissingChannels(NodeId),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NoNodes => write!(f, "network must contain at least one node"),
            NetworkError::EmptyChannelSet(v) => write!(f, "node {v} has an empty channel set"),
            NetworkError::UnequalChannelCounts { node, got, expected } => {
                write!(f, "node {node} has {got} channels but the network uses c={expected}")
            }
            NetworkError::DuplicateChannel(v, g) => {
                write!(f, "node {v} lists channel {g} more than once")
            }
            NetworkError::UnknownNode(v) => write!(f, "edge endpoint {v} does not exist"),
            NetworkError::SelfLoop(v) => write!(f, "self-loop at {v}"),
            NetworkError::NoSharedChannel(u, v) => {
                write!(f, "neighbors {u} and {v} share no channel (k >= 1 required)")
            }
            NetworkError::MissingChannels(v) => write!(f, "node {v} was never assigned channels"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// How much work [`NetworkBuilder::build`] invests in structural statistics.
///
/// Exact diameter is an all-source BFS — `O(n·m)` — which dwarfs engine time
/// when setting up scenarios with `n ≥ 10⁴`. Large benchmarks opt into
/// [`StatsMode::Approximate`], which replaces it with a double-BFS sweep
/// (`O(n + m)`) whose estimate `est` satisfies `est ≤ D ≤ 2·est` (exact on
/// trees). Everything else (`Δ`, `k`, `kmax`, connectivity, edge counts) is
/// cheap and stays exact in both modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StatsMode {
    /// Exact diameter via all-source BFS. The default.
    #[default]
    Exact,
    /// Double-BFS 2-approximation of the diameter
    /// ([`crate::graph::Graph::diameter_double_sweep`]).
    Approximate,
}

/// Ground-truth structural statistics of a network, matching the paper's
/// parameter names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStats {
    /// Number of nodes `n`.
    pub n: usize,
    /// Channels per node `c`.
    pub c: usize,
    /// Number of distinct global channels in use.
    pub universe: usize,
    /// Number of edges.
    pub edges: usize,
    /// Maximum degree `Δ` (at least 1 by convention so that `lg Δ` schedules
    /// are well defined even on edgeless graphs).
    pub delta: usize,
    /// Minimum pairwise overlap `k` over all edges (`= c` when there are no
    /// edges).
    pub k: usize,
    /// Maximum pairwise overlap `kmax` over all edges (`= 1` when there are
    /// no edges).
    pub kmax: usize,
    /// `true` if the graph is connected.
    pub connected: bool,
    /// Diameter `D` if connected. Under [`StatsMode::Approximate`] this is
    /// the double-sweep estimate (`diameter ≤ D ≤ 2·diameter`).
    pub diameter: Option<u64>,
    /// `true` when `diameter` is the exact value ([`StatsMode::Exact`]).
    pub diameter_is_exact: bool,
}

/// An immutable cognitive radio network instance.
///
/// # Examples
/// ```
/// use crn_sim::{GlobalChannel, Network, NodeId};
/// let mut b = Network::builder(2);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(1)]);
/// b.set_channels(NodeId(1), vec![GlobalChannel(1), GlobalChannel(2)]);
/// b.add_edge(NodeId(0), NodeId(1));
/// let net = b.build()?;
/// assert_eq!(net.stats().k, 1); // the single edge shares exactly {g1}
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    /// `channels[v][l]` = global channel for local label `l` at node `v`.
    channels: Vec<Vec<GlobalChannel>>,
    /// Reverse maps, one per node.
    reverse: Vec<HashMap<GlobalChannel, LocalChannel>>,
    graph: Graph,
    /// Adjacency bitsets for O(1) neighbor tests in the engine hot loop.
    adj_bits: Vec<BitSet>,
    universe: usize,
    stats: NetworkStats,
}

impl Network {
    /// Starts building a network with `n` nodes (identities `0..n`).
    pub fn builder(n: usize) -> NetworkBuilder {
        NetworkBuilder { n, channels: vec![None; n], edges: Vec::new(), stats: StatsMode::Exact }
    }

    /// Assembles a network from a topology and a channel model, deriving the
    /// topology and channel RNG streams from `seed` (streams 1 and 2). The
    /// shared entry point for benches and differential tests that don't
    /// need the full `Scenario` machinery.
    ///
    /// # Errors
    /// Propagates [`NetworkError`] from validation, e.g. when the generated
    /// channel assignment leaves an edge without a shared channel.
    pub fn generate(
        topology: &crate::topology::Topology,
        channels: &crate::channels::ChannelModel,
        seed: u64,
    ) -> Result<Network, NetworkError> {
        Network::generate_with_stats(topology, channels, seed, StatsMode::Exact)
    }

    /// [`Network::generate`] with an explicit [`StatsMode`] — large
    /// benchmarks pass [`StatsMode::Approximate`] so scenario setup stays
    /// `O(n + m)` instead of being dominated by the exact-diameter BFS.
    ///
    /// # Errors
    /// Propagates [`NetworkError`] from validation, as [`Network::generate`].
    pub fn generate_with_stats(
        topology: &crate::topology::Topology,
        channels: &crate::channels::ChannelModel,
        seed: u64,
        stats: StatsMode,
    ) -> Result<Network, NetworkError> {
        let n = topology.num_nodes();
        let sets = channels.assign(n, &mut crate::rng::stream_rng(seed, 2));
        let mut b = Network::builder(n);
        b.stats_mode(stats);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(
            topology
                .edges(&mut crate::rng::stream_rng(seed, 1))
                .into_iter()
                .map(|(a, x)| (NodeId(a), NodeId(x))),
        );
        b.build()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the network has no nodes. (Builders reject this, so this is
    /// always `false` for built networks.)
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Channels per node, the paper's `c`.
    pub fn channels_per_node(&self) -> usize {
        self.channels[0].len()
    }

    /// Number of distinct global channels.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// The underlying connectivity graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Ground-truth statistics (`n`, `c`, `Δ`, `k`, `kmax`, `D`, …).
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Translates node `v`'s local label to the physical channel.
    ///
    /// # Panics
    /// Panics if the label is out of range.
    #[inline]
    pub fn local_to_global(&self, v: NodeId, l: LocalChannel) -> GlobalChannel {
        self.channels[v.index()][l.index()]
    }

    /// Translates a physical channel to node `v`'s local label, if `v` can
    /// access it.
    pub fn global_to_local(&self, v: NodeId, g: GlobalChannel) -> Option<LocalChannel> {
        self.reverse[v.index()].get(&g).copied()
    }

    /// Node `v`'s channel set in local-label order.
    pub fn channel_map(&self, v: NodeId) -> &[GlobalChannel] {
        &self.channels[v.index()]
    }

    /// Sorted neighbor identities of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.neighbors(v.index()).iter().map(|&w| NodeId(w))
    }

    /// Sorted neighbors of `v` as a contiguous slice of raw indices — the
    /// zero-overhead view the engine's broadcaster-centric sweep walks.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        self.graph.neighbors(v.index())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.graph.degree(v.index())
    }

    /// `true` if `u` and `v` are neighbors.
    #[inline]
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        self.adj_bits[u.index()].contains(v.index())
    }

    /// `v`'s adjacency row as a bit set over node indices — the engine's
    /// listener-centric resolver intersects it with the per-channel
    /// broadcaster set word-by-word.
    #[inline]
    pub fn adjacency_bits(&self, v: NodeId) -> &BitSet {
        &self.adj_bits[v.index()]
    }

    /// The global channels shared by `u` and `v`, sorted.
    pub fn shared_channels(&self, u: NodeId, v: NodeId) -> Vec<GlobalChannel> {
        let set: &HashMap<GlobalChannel, LocalChannel> = &self.reverse[v.index()];
        let mut shared: Vec<GlobalChannel> =
            self.channels[u.index()].iter().copied().filter(|g| set.contains_key(g)).collect();
        shared.sort_unstable();
        shared
    }

    /// `|shared_channels(u, v)|`, the paper's `k_{u,v}`.
    pub fn overlap(&self, u: NodeId, v: NodeId) -> usize {
        self.shared_channels(u, v).len()
    }

    /// All edges of the network.
    pub fn edges(&self) -> Vec<Edge> {
        self.graph.edges().into_iter().map(|(a, b)| Edge::new(NodeId(a), NodeId(b))).collect()
    }

    /// Number of `v`'s neighbors that can access global channel `g` — the
    /// paper's `n_ch` ("crowdedness" of a channel from `v`'s perspective).
    pub fn channel_crowd(&self, v: NodeId, g: GlobalChannel) -> usize {
        self.neighbors(v).filter(|&w| self.reverse[w.index()].contains_key(&g)).count()
    }

    /// The number of neighbors of `v` sharing at least `khat` channels with
    /// `v` — used as ground truth for the k̂-neighbor-discovery problem.
    pub fn good_neighbors(&self, v: NodeId, khat: usize) -> Vec<NodeId> {
        self.neighbors(v).filter(|&w| self.overlap(v, w) >= khat).collect()
    }

    /// Maximum over nodes of `good_neighbors(v, khat).len()`, the paper's
    /// `Δ_k̂`.
    pub fn delta_khat(&self, khat: usize) -> usize {
        (0..self.len())
            .map(|v| self.good_neighbors(NodeId(v as u32), khat).len())
            .max()
            .unwrap_or(0)
    }

    /// Renders the network as Graphviz DOT: nodes labeled with their ids,
    /// edges labeled with the shared-channel count. Handy for debugging
    /// generated scenarios (`dot -Tsvg net.dot -o net.svg`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph crn {\n  node [shape=circle];\n");
        for v in 0..self.len() {
            let _ = writeln!(out, "  n{v} [label=\"{v}\"];");
        }
        for e in self.edges() {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}\"];",
                e.lo().0,
                e.hi().0,
                self.overlap(e.lo(), e.hi())
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Builder for [`Network`]. See [`Network::builder`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    n: usize,
    channels: Vec<Option<Vec<GlobalChannel>>>,
    edges: Vec<(NodeId, NodeId)>,
    stats: StatsMode,
}

impl NetworkBuilder {
    /// Chooses how much work [`NetworkBuilder::build`] spends on structural
    /// statistics (default: [`StatsMode::Exact`]).
    pub fn stats_mode(&mut self, mode: StatsMode) -> &mut Self {
        self.stats = mode;
        self
    }

    /// Assigns node `v` its channel set. The order of the vector *is* the
    /// node's local labeling (label `l` ↦ `chs[l]`), so callers can shuffle
    /// it to model arbitrary local labels.
    pub fn set_channels(&mut self, v: NodeId, chs: Vec<GlobalChannel>) -> &mut Self {
        assert!(v.index() < self.n, "node {v} out of range");
        self.channels[v.index()] = Some(chs);
        self
    }

    /// Declares `u` and `v` to be within radio range of each other.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// Validates and freezes the network.
    ///
    /// # Errors
    /// Returns a [`NetworkError`] if any model constraint is violated:
    /// missing/empty/duplicated channel sets, unequal `c` across nodes,
    /// unknown endpoints, self-loops, or an edge whose endpoints share no
    /// channel.
    pub fn build(&self) -> Result<Network, NetworkError> {
        if self.n == 0 {
            return Err(NetworkError::NoNodes);
        }
        let mut channels = Vec::with_capacity(self.n);
        for (i, c) in self.channels.iter().enumerate() {
            match c {
                None => return Err(NetworkError::MissingChannels(NodeId(i as u32))),
                Some(list) if list.is_empty() => {
                    return Err(NetworkError::EmptyChannelSet(NodeId(i as u32)))
                }
                Some(list) => channels.push(list.clone()),
            }
        }
        let c = channels[0].len();
        for (i, list) in channels.iter().enumerate() {
            if list.len() != c {
                return Err(NetworkError::UnequalChannelCounts {
                    node: NodeId(i as u32),
                    got: list.len(),
                    expected: c,
                });
            }
        }
        let mut reverse: Vec<HashMap<GlobalChannel, LocalChannel>> = Vec::with_capacity(self.n);
        for (i, list) in channels.iter().enumerate() {
            let mut map = HashMap::with_capacity(list.len());
            for (l, &g) in list.iter().enumerate() {
                if map.insert(g, LocalChannel(l as u16)).is_some() {
                    return Err(NetworkError::DuplicateChannel(NodeId(i as u32), g));
                }
            }
            reverse.push(map);
        }
        let mut raw_edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            if u.index() >= self.n {
                return Err(NetworkError::UnknownNode(u));
            }
            if v.index() >= self.n {
                return Err(NetworkError::UnknownNode(v));
            }
            if u == v {
                return Err(NetworkError::SelfLoop(u));
            }
            raw_edges.push((u.0, v.0));
        }
        let graph = Graph::from_edges(self.n, &raw_edges);

        // k / kmax ground truth + the k >= 1 model requirement.
        let mut k = c;
        let mut kmax = 1usize.min(c);
        for (a, b) in graph.edges() {
            let u = NodeId(a);
            let v = NodeId(b);
            let shared =
                reverse[v.index()].keys().filter(|g| reverse[u.index()].contains_key(g)).count();
            if shared == 0 {
                return Err(NetworkError::NoSharedChannel(u, v));
            }
            k = k.min(shared);
            kmax = kmax.max(shared);
        }

        let mut adj_bits = Vec::with_capacity(self.n);
        for v in 0..self.n {
            let mut bits = BitSet::new(self.n);
            for &w in graph.neighbors(v) {
                bits.insert(w as usize);
            }
            adj_bits.push(bits);
        }

        let mut universe_set: Vec<u32> =
            channels.iter().flat_map(|list| list.iter().map(|g| g.0)).collect();
        universe_set.sort_unstable();
        universe_set.dedup();

        let diameter = match self.stats {
            StatsMode::Exact => graph.diameter(),
            StatsMode::Approximate => graph.diameter_double_sweep(),
        };
        let stats = NetworkStats {
            n: self.n,
            c,
            universe: universe_set.len(),
            edges: graph.num_edges(),
            delta: graph.max_degree().max(1),
            k,
            kmax,
            connected: graph.is_connected(),
            diameter,
            diameter_is_exact: self.stats == StatsMode::Exact,
        };

        Ok(Network { channels, reverse, graph, adj_bits, universe: universe_set.len(), stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: u32) -> GlobalChannel {
        GlobalChannel(v)
    }

    fn two_node_net() -> Network {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![g(0), g(1), g(2)]);
        b.set_channels(NodeId(1), vec![g(2), g(3), g(1)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.build().expect("valid network")
    }

    #[test]
    fn builds_and_reports_stats() {
        let net = two_node_net();
        let s = net.stats();
        assert_eq!(s.n, 2);
        assert_eq!(s.c, 3);
        assert_eq!(s.edges, 1);
        assert_eq!(s.delta, 1);
        assert_eq!(s.k, 2); // shared = {g1, g2}
        assert_eq!(s.kmax, 2);
        assert!(s.connected);
        assert_eq!(s.diameter, Some(1));
        assert_eq!(s.universe, 4);
    }

    #[test]
    fn approximate_stats_mode_bounds_the_diameter() {
        // A cycle of 9: D = 4, double-sweep estimate must land in [2, 4].
        let n = 9usize;
        let build = |mode: StatsMode| {
            let mut b = Network::builder(n);
            b.stats_mode(mode);
            for v in 0..n {
                b.set_channels(NodeId(v as u32), vec![g(0)]);
            }
            for v in 0..n {
                b.add_edge(NodeId(v as u32), NodeId(((v + 1) % n) as u32));
            }
            b.build().unwrap()
        };
        let exact = build(StatsMode::Exact).stats();
        let approx = build(StatsMode::Approximate).stats();
        assert!(exact.diameter_is_exact);
        assert!(!approx.diameter_is_exact);
        let d = exact.diameter.unwrap();
        let est = approx.diameter.unwrap();
        assert!(est <= d && d <= 2 * est, "estimate {est} vs exact {d}");
        // Everything except the diameter is identical across modes.
        assert_eq!(
            NetworkStats { diameter: None, diameter_is_exact: true, ..approx },
            NetworkStats { diameter: None, diameter_is_exact: true, ..exact }
        );
    }

    #[test]
    fn generate_with_stats_is_the_same_network() {
        use crate::channels::ChannelModel;
        use crate::topology::Topology;
        let t = Topology::RandomGeometric { n: 30, radius: 0.4 };
        let m = ChannelModel::SharedCore { c: 3, core: 2 };
        let exact = Network::generate(&t, &m, 5).unwrap();
        let approx = Network::generate_with_stats(&t, &m, 5, StatsMode::Approximate).unwrap();
        assert_eq!(exact.edges(), approx.edges(), "same seed, same topology");
        for v in 0..30u32 {
            assert_eq!(exact.channel_map(NodeId(v)), approx.channel_map(NodeId(v)));
        }
        if let (Some(d), Some(est)) = (exact.stats().diameter, approx.stats().diameter) {
            assert!(est <= d && d <= 2 * est);
        }
    }

    #[test]
    fn local_global_round_trip() {
        let net = two_node_net();
        // Node 1's labels are in the order given: l0->g2, l1->g3, l2->g1.
        assert_eq!(net.local_to_global(NodeId(1), LocalChannel(0)), g(2));
        assert_eq!(net.global_to_local(NodeId(1), g(3)), Some(LocalChannel(1)));
        assert_eq!(net.global_to_local(NodeId(1), g(0)), None);
        for l in 0..net.channels_per_node() {
            let l = LocalChannel(l as u16);
            let gg = net.local_to_global(NodeId(0), l);
            assert_eq!(net.global_to_local(NodeId(0), gg), Some(l));
        }
    }

    #[test]
    fn shared_channels_and_overlap() {
        let net = two_node_net();
        assert_eq!(net.shared_channels(NodeId(0), NodeId(1)), vec![g(1), g(2)]);
        assert_eq!(net.overlap(NodeId(0), NodeId(1)), 2);
        assert!(net.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!net.are_neighbors(NodeId(0), NodeId(0)));
    }

    #[test]
    fn rejects_edge_without_shared_channel() {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![g(0)]);
        b.set_channels(NodeId(1), vec![g(1)]);
        b.add_edge(NodeId(0), NodeId(1));
        assert_eq!(b.build().unwrap_err(), NetworkError::NoSharedChannel(NodeId(0), NodeId(1)));
    }

    #[test]
    fn rejects_unequal_channel_counts() {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![g(0), g(1)]);
        b.set_channels(NodeId(1), vec![g(0)]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetworkError::UnequalChannelCounts { .. }));
    }

    #[test]
    fn rejects_duplicate_channels() {
        let mut b = Network::builder(1);
        b.set_channels(NodeId(0), vec![g(0), g(0)]);
        assert_eq!(b.build().unwrap_err(), NetworkError::DuplicateChannel(NodeId(0), g(0)));
    }

    #[test]
    fn rejects_missing_channels_and_self_loops() {
        let b = Network::builder(1);
        assert_eq!(b.build().unwrap_err(), NetworkError::MissingChannels(NodeId(0)));

        let mut b = Network::builder(1);
        b.set_channels(NodeId(0), vec![g(0)]);
        b.add_edge(NodeId(0), NodeId(0));
        assert_eq!(b.build().unwrap_err(), NetworkError::SelfLoop(NodeId(0)));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = Network::builder(1);
        b.set_channels(NodeId(0), vec![g(0)]);
        b.add_edge(NodeId(0), NodeId(5));
        assert_eq!(b.build().unwrap_err(), NetworkError::UnknownNode(NodeId(5)));
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(Network::builder(0).build().unwrap_err(), NetworkError::NoNodes);
    }

    #[test]
    fn channel_crowd_counts_neighbors_with_access() {
        // Star: center 0 with 3 leaves; g0 shared by all, g9x private.
        let mut b = Network::builder(4);
        b.set_channels(NodeId(0), vec![g(0), g(1)]);
        b.set_channels(NodeId(1), vec![g(0), g(90)]);
        b.set_channels(NodeId(2), vec![g(0), g(91)]);
        b.set_channels(NodeId(3), vec![g(0), g(1)]);
        b.add_edges([(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2)), (NodeId(0), NodeId(3))]);
        let net = b.build().unwrap();
        assert_eq!(net.channel_crowd(NodeId(0), g(0)), 3);
        assert_eq!(net.channel_crowd(NodeId(0), g(1)), 1);
        assert_eq!(net.good_neighbors(NodeId(0), 2), vec![NodeId(3)]);
        assert_eq!(net.delta_khat(2), 1);
        assert_eq!(net.delta_khat(1), 3);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let net = two_node_net();
        let dot = net.to_dot();
        assert!(dot.starts_with("graph crn {"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("label=\"2\""), "edge labeled with overlap: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = NetworkError::NoSharedChannel(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("share no channel"));
    }
}
