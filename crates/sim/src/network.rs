//! The cognitive radio network instance: topology + per-node channel sets.
//!
//! A [`Network`] captures everything the *environment* knows: which nodes
//! are in radio range of each other, which global channels each node can
//! access, and each node's private local labeling of its channels. Protocol
//! code never sees global channels; the engine translates local labels.
//!
//! The paper's structural parameters are computed as ground truth here:
//! every pair of neighbors shares at least `k` and at most `kmax` channels,
//! the maximum degree is `Δ`, and the diameter is `D` (paper §3).

use crate::bitset::BitSet;
use crate::graph::Graph;
use crate::ids::{Edge, GlobalChannel, LocalChannel, NodeId};
use std::fmt;

/// Errors produced while validating a [`NetworkBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The network must contain at least one node.
    NoNodes,
    /// A node was given no channels.
    EmptyChannelSet(NodeId),
    /// All nodes must have the same number of channels `c`.
    UnequalChannelCounts {
        /// Offending node.
        node: NodeId,
        /// Its channel count.
        got: usize,
        /// The channel count of node 0.
        expected: usize,
    },
    /// A node's channel list mentions the same global channel twice.
    DuplicateChannel(NodeId, GlobalChannel),
    /// An edge endpoint does not exist.
    UnknownNode(NodeId),
    /// An edge connects a node to itself.
    SelfLoop(NodeId),
    /// Two neighbors share no channel, violating `k ≥ 1`.
    NoSharedChannel(NodeId, NodeId),
    /// A node was not assigned channels at all.
    MissingChannels(NodeId),
    /// More nodes than [`NodeId`]'s `u32` payload can index.
    TooManyNodes(usize),
    /// More channels per node than [`LocalChannel`]'s `u16` payload can
    /// index.
    TooManyChannels(usize),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NoNodes => write!(f, "network must contain at least one node"),
            NetworkError::EmptyChannelSet(v) => write!(f, "node {v} has an empty channel set"),
            NetworkError::UnequalChannelCounts { node, got, expected } => {
                write!(f, "node {node} has {got} channels but the network uses c={expected}")
            }
            NetworkError::DuplicateChannel(v, g) => {
                write!(f, "node {v} lists channel {g} more than once")
            }
            NetworkError::UnknownNode(v) => write!(f, "edge endpoint {v} does not exist"),
            NetworkError::SelfLoop(v) => write!(f, "self-loop at {v}"),
            NetworkError::NoSharedChannel(u, v) => {
                write!(f, "neighbors {u} and {v} share no channel (k >= 1 required)")
            }
            NetworkError::MissingChannels(v) => write!(f, "node {v} was never assigned channels"),
            NetworkError::TooManyNodes(n) => {
                write!(f, "{n} nodes overflow the u32 node-id space")
            }
            NetworkError::TooManyChannels(c) => {
                write!(f, "{c} channels per node overflow the u16 local-label space")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// How much work [`NetworkBuilder::build`] invests in structural statistics.
///
/// Exact diameter is an all-source BFS — `O(n·m)` — which dwarfs engine time
/// when setting up scenarios with `n ≥ 10⁴`. Large benchmarks opt into
/// [`StatsMode::Approximate`], which replaces it with a double-BFS sweep
/// (`O(n + m)`) whose estimate `est` satisfies `est ≤ D ≤ 2·est` (exact on
/// trees). Everything else (`Δ`, `k`, `kmax`, connectivity, edge counts) is
/// cheap and stays exact in both modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StatsMode {
    /// Exact diameter via all-source BFS. The default.
    #[default]
    Exact,
    /// Double-BFS 2-approximation of the diameter
    /// ([`crate::graph::Graph::diameter_double_sweep`]).
    Approximate,
}

/// Ground-truth structural statistics of a network, matching the paper's
/// parameter names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkStats {
    /// Number of nodes `n`.
    pub n: usize,
    /// Channels per node `c`.
    pub c: usize,
    /// Number of distinct global channels in use.
    pub universe: usize,
    /// Number of edges.
    pub edges: usize,
    /// Maximum degree `Δ` (at least 1 by convention so that `lg Δ` schedules
    /// are well defined even on edgeless graphs).
    pub delta: usize,
    /// Minimum pairwise overlap `k` over all edges (`= c` when there are no
    /// edges).
    pub k: usize,
    /// Maximum pairwise overlap `kmax` over all edges (`= 1` when there are
    /// no edges).
    pub kmax: usize,
    /// `true` if the graph is connected.
    pub connected: bool,
    /// Diameter `D` if connected. Under [`StatsMode::Approximate`] this is
    /// the double-sweep estimate (`diameter ≤ D ≤ 2·diameter`).
    pub diameter: Option<u64>,
    /// `true` when `diameter` is the exact value ([`StatsMode::Exact`]).
    pub diameter_is_exact: bool,
}

/// An immutable cognitive radio network instance.
///
/// # Examples
/// ```
/// use crn_sim::{GlobalChannel, Network, NodeId};
/// let mut b = Network::builder(2);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(1)]);
/// b.set_channels(NodeId(1), vec![GlobalChannel(1), GlobalChannel(2)]);
/// b.add_edge(NodeId(0), NodeId(1));
/// let net = b.build()?;
/// assert_eq!(net.stats().k, 1); // the single edge shares exactly {g1}
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    /// Channels per node, the paper's `c`.
    c: usize,
    /// `channels[v*c + l]` = global channel for local label `l` at node `v`
    /// (flat, stride `c`).
    channels: Vec<GlobalChannel>,
    /// Per-node reverse map, flat with stride `c`: `rev_global[v*c..][..c]`
    /// holds node `v`'s globals sorted ascending and `rev_local` the matching
    /// local labels, so global→local is a binary search instead of a
    /// per-node `HashMap`.
    rev_global: Vec<u32>,
    rev_local: Vec<u16>,
    graph: Graph,
    /// Degree-thresholded adjacency rows for the engine hot loop; see
    /// [`AdjIndex`].
    adj: AdjIndex,
    universe: usize,
    stats: NetworkStats,
}

/// Sentinel in [`AdjIndex::row_of`] for nodes without a dense row.
const NO_ROW: u32 = u32::MAX;

/// Dense adjacency rows for high-degree nodes only.
///
/// The old representation kept a `BitSet` row for *every* node — `O(n²)`
/// bits, ~125 GB at `n = 10⁶`. But the engine only profits from a dense row
/// when a node's degree exceeds the row's word count anyway (the
/// listener-centric resolver's `d > words` dispatch), so rows are built only
/// for nodes with `degree ≥ max(64, n/64)`. At most `2m / (n/64)` such nodes
/// exist, bounding total row memory by `16m` bytes — `O(n + m)` overall.
/// Low-degree pairs fall back to a binary search of the shorter CSR slice.
#[derive(Debug, Clone)]
struct AdjIndex {
    /// Minimum degree for a dense row.
    threshold: usize,
    /// `row_of[v]` = index into `rows`, or [`NO_ROW`].
    row_of: Vec<u32>,
    rows: Vec<BitSet>,
}

impl AdjIndex {
    fn build(graph: &Graph) -> AdjIndex {
        let n = graph.len();
        let threshold = (n / 64).max(64);
        let mut row_of = vec![NO_ROW; n];
        let mut rows = Vec::new();
        for (v, row) in row_of.iter_mut().enumerate() {
            if graph.degree(v) >= threshold {
                let mut bits = BitSet::new(n);
                for &w in graph.neighbors(v) {
                    bits.insert(w as usize);
                }
                *row = u32::try_from(rows.len()).expect("row count fits u32");
                rows.push(bits);
            }
        }
        AdjIndex { threshold, row_of, rows }
    }

    #[inline]
    fn row(&self, v: usize) -> Option<&BitSet> {
        match self.row_of[v] {
            NO_ROW => None,
            r => Some(&self.rows[r as usize]),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.row_of.capacity() * std::mem::size_of::<u32>()
            + self.rows.iter().map(|b| b.words().len() * 8).sum::<usize>()
    }
}

/// Where the bytes of a built [`Network`] go — the proof obligation for the
/// million-node path is that this stays `O(n + m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// CSR offsets + targets.
    pub graph_bytes: usize,
    /// Flat channel table plus the sorted reverse maps.
    pub channel_bytes: usize,
    /// Degree-thresholded dense adjacency rows (plus the row index).
    pub adjacency_bytes: usize,
    /// Number of nodes that earned a dense adjacency row.
    pub adjacency_rows: usize,
}

impl MemoryFootprint {
    /// Sum over all components.
    pub fn total_bytes(&self) -> usize {
        self.graph_bytes + self.channel_bytes + self.adjacency_bytes
    }
}

impl fmt::Display for MemoryFootprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mib = |b: usize| b as f64 / (1024.0 * 1024.0);
        write!(
            f,
            "graph {:.1} MiB + channels {:.1} MiB + adj {:.1} MiB ({} rows) = {:.1} MiB",
            mib(self.graph_bytes),
            mib(self.channel_bytes),
            mib(self.adjacency_bytes),
            self.adjacency_rows,
            mib(self.total_bytes()),
        )
    }
}

/// Number of common elements of two sorted, duplicate-free slices.
fn sorted_intersection_count(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut out) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out
}

impl Network {
    /// Starts building a network with `n` nodes (identities `0..n`).
    pub fn builder(n: usize) -> NetworkBuilder {
        NetworkBuilder { n, channels: vec![None; n], edges: Vec::new(), stats: StatsMode::Exact }
    }

    /// Assembles a network from a topology and a channel model, deriving the
    /// topology and channel RNG streams from `seed` (streams 1 and 2). The
    /// shared entry point for benches and differential tests that don't
    /// need the full `Scenario` machinery.
    ///
    /// # Errors
    /// Propagates [`NetworkError`] from validation, e.g. when the generated
    /// channel assignment leaves an edge without a shared channel.
    pub fn generate(
        topology: &crate::topology::Topology,
        channels: &crate::channels::ChannelModel,
        seed: u64,
    ) -> Result<Network, NetworkError> {
        Network::generate_with_stats(topology, channels, seed, StatsMode::Exact)
    }

    /// [`Network::generate`] with an explicit [`StatsMode`] — large
    /// benchmarks pass [`StatsMode::Approximate`] so scenario setup stays
    /// `O(n + m)` instead of being dominated by the exact-diameter BFS.
    ///
    /// # Errors
    /// Propagates [`NetworkError`] from validation, as [`Network::generate`].
    pub fn generate_with_stats(
        topology: &crate::topology::Topology,
        channels: &crate::channels::ChannelModel,
        seed: u64,
        stats: StatsMode,
    ) -> Result<Network, NetworkError> {
        let n = topology.num_nodes();
        let sets = channels.assign(n, &mut crate::rng::stream_rng(seed, 2));
        let mut b = Network::builder(n);
        b.stats_mode(stats);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(
            topology
                .edges(&mut crate::rng::stream_rng(seed, 1))
                .into_iter()
                .map(|(a, x)| (NodeId(a), NodeId(x))),
        );
        b.build()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// `true` if the network has no nodes. (Builders reject this, so this is
    /// always `false` for built networks.)
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Channels per node, the paper's `c`.
    pub fn channels_per_node(&self) -> usize {
        self.c
    }

    /// Node `v`'s reverse-map slice of sorted global channel ids.
    #[inline]
    fn rev_globals(&self, v: usize) -> &[u32] {
        &self.rev_global[v * self.c..(v + 1) * self.c]
    }

    /// Number of distinct global channels.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// The underlying connectivity graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Ground-truth statistics (`n`, `c`, `Δ`, `k`, `kmax`, `D`, …).
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Translates node `v`'s local label to the physical channel.
    ///
    /// # Panics
    /// Panics if the label is out of range.
    #[inline]
    pub fn local_to_global(&self, v: NodeId, l: LocalChannel) -> GlobalChannel {
        self.channel_map(v)[l.index()]
    }

    /// Translates a physical channel to node `v`'s local label, if `v` can
    /// access it.
    pub fn global_to_local(&self, v: NodeId, g: GlobalChannel) -> Option<LocalChannel> {
        let s = v.index() * self.c;
        let slice = &self.rev_global[s..s + self.c];
        slice.binary_search(&g.0).ok().map(|i| LocalChannel(self.rev_local[s + i]))
    }

    /// Node `v`'s channel set in local-label order.
    pub fn channel_map(&self, v: NodeId) -> &[GlobalChannel] {
        &self.channels[v.index() * self.c..(v.index() + 1) * self.c]
    }

    /// Sorted neighbor identities of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.neighbors(v.index()).iter().map(|&w| NodeId(w))
    }

    /// Sorted neighbors of `v` as a contiguous slice of raw indices — the
    /// zero-overhead view the engine's broadcaster-centric sweep walks.
    #[inline]
    pub fn neighbor_slice(&self, v: NodeId) -> &[u32] {
        self.graph.neighbors(v.index())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.graph.degree(v.index())
    }

    /// `true` if `u` and `v` are neighbors.
    ///
    /// High-degree endpoints answer from their dense adjacency row; pairs of
    /// low-degree nodes binary-search the shorter CSR slice.
    #[inline]
    pub fn are_neighbors(&self, u: NodeId, v: NodeId) -> bool {
        let (ui, vi) = (u.index(), v.index());
        if let Some(row) = self.adj.row(ui) {
            return row.contains(vi);
        }
        if let Some(row) = self.adj.row(vi) {
            return row.contains(ui);
        }
        let (a, b) =
            if self.graph.degree(ui) <= self.graph.degree(vi) { (ui, vi) } else { (vi, ui) };
        self.graph.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// `v`'s adjacency row as a bit set over node indices, if `v`'s degree
    /// crossed the dense-row threshold — the engine's listener-centric
    /// resolver intersects it with the per-channel broadcaster set
    /// word-by-word, and falls back to a CSR walk for low-degree nodes.
    #[inline]
    pub fn adjacency_row(&self, v: NodeId) -> Option<&BitSet> {
        self.adj.row(v.index())
    }

    /// Degree at or above which a node keeps a dense adjacency row.
    pub fn adjacency_row_threshold(&self) -> usize {
        self.adj.threshold
    }

    /// Heap bytes held by the network's index structures, itemized. The
    /// million-node acceptance gate asserts this stays `O(n + m)`.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        MemoryFootprint {
            graph_bytes: self.graph.memory_bytes(),
            channel_bytes: self.channels.capacity() * std::mem::size_of::<GlobalChannel>()
                + self.rev_global.capacity() * std::mem::size_of::<u32>()
                + self.rev_local.capacity() * std::mem::size_of::<u16>(),
            adjacency_bytes: self.adj.memory_bytes(),
            adjacency_rows: self.adj.rows.len(),
        }
    }

    /// The global channels shared by `u` and `v`, sorted.
    pub fn shared_channels(&self, u: NodeId, v: NodeId) -> Vec<GlobalChannel> {
        let a = self.rev_globals(u.index());
        let b = self.rev_globals(v.index());
        let mut shared = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared.push(GlobalChannel(a[i]));
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// `|shared_channels(u, v)|`, the paper's `k_{u,v}`.
    pub fn overlap(&self, u: NodeId, v: NodeId) -> usize {
        sorted_intersection_count(self.rev_globals(u.index()), self.rev_globals(v.index()))
    }

    /// All edges of the network.
    pub fn edges(&self) -> Vec<Edge> {
        self.graph.edges().into_iter().map(|(a, b)| Edge::new(NodeId(a), NodeId(b))).collect()
    }

    /// Number of `v`'s neighbors that can access global channel `g` — the
    /// paper's `n_ch` ("crowdedness" of a channel from `v`'s perspective).
    pub fn channel_crowd(&self, v: NodeId, g: GlobalChannel) -> usize {
        self.neighbors(v).filter(|&w| self.global_to_local(w, g).is_some()).count()
    }

    /// The number of neighbors of `v` sharing at least `khat` channels with
    /// `v` — used as ground truth for the k̂-neighbor-discovery problem.
    pub fn good_neighbors(&self, v: NodeId, khat: usize) -> Vec<NodeId> {
        self.neighbors(v).filter(|&w| self.overlap(v, w) >= khat).collect()
    }

    /// Maximum over nodes of `good_neighbors(v, khat).len()`, the paper's
    /// `Δ_k̂`.
    pub fn delta_khat(&self, khat: usize) -> usize {
        (0..self.len())
            .map(|v| self.good_neighbors(NodeId(v as u32), khat).len())
            .max()
            .unwrap_or(0)
    }

    /// Renders the network as Graphviz DOT: nodes labeled with their ids,
    /// edges labeled with the shared-channel count. Handy for debugging
    /// generated scenarios (`dot -Tsvg net.dot -o net.svg`).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph crn {\n  node [shape=circle];\n");
        for v in 0..self.len() {
            let _ = writeln!(out, "  n{v} [label=\"{v}\"];");
        }
        for e in self.edges() {
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}\"];",
                e.lo().0,
                e.hi().0,
                self.overlap(e.lo(), e.hi())
            );
        }
        out.push_str("}\n");
        out
    }
}

/// Builder for [`Network`]. See [`Network::builder`].
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    n: usize,
    channels: Vec<Option<Vec<GlobalChannel>>>,
    edges: Vec<(NodeId, NodeId)>,
    stats: StatsMode,
}

impl NetworkBuilder {
    /// Chooses how much work [`NetworkBuilder::build`] spends on structural
    /// statistics (default: [`StatsMode::Exact`]).
    pub fn stats_mode(&mut self, mode: StatsMode) -> &mut Self {
        self.stats = mode;
        self
    }

    /// Assigns node `v` its channel set. The order of the vector *is* the
    /// node's local labeling (label `l` ↦ `chs[l]`), so callers can shuffle
    /// it to model arbitrary local labels.
    pub fn set_channels(&mut self, v: NodeId, chs: Vec<GlobalChannel>) -> &mut Self {
        assert!(v.index() < self.n, "node {v} out of range");
        self.channels[v.index()] = Some(chs);
        self
    }

    /// Declares `u` and `v` to be within radio range of each other.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds many edges at once.
    pub fn add_edges(&mut self, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> &mut Self {
        self.edges.extend(edges);
        self
    }

    /// Validates and freezes the network.
    ///
    /// # Errors
    /// Returns a [`NetworkError`] if any model constraint is violated:
    /// missing/empty/duplicated channel sets, unequal `c` across nodes,
    /// unknown endpoints, self-loops, or an edge whose endpoints share no
    /// channel.
    pub fn build(&self) -> Result<Network, NetworkError> {
        if self.n == 0 {
            return Err(NetworkError::NoNodes);
        }
        if self.n > u32::MAX as usize {
            return Err(NetworkError::TooManyNodes(self.n));
        }
        for (i, c) in self.channels.iter().enumerate() {
            match c {
                None => return Err(NetworkError::MissingChannels(NodeId(i as u32))),
                Some(list) if list.is_empty() => {
                    return Err(NetworkError::EmptyChannelSet(NodeId(i as u32)))
                }
                Some(_) => {}
            }
        }
        let c = self.channels[0].as_ref().expect("checked above").len();
        if c > u16::MAX as usize {
            return Err(NetworkError::TooManyChannels(c));
        }
        for (i, list) in
            self.channels.iter().map(|l| l.as_ref().expect("checked above")).enumerate()
        {
            if list.len() != c {
                return Err(NetworkError::UnequalChannelCounts {
                    node: NodeId(i as u32),
                    got: list.len(),
                    expected: c,
                });
            }
        }
        // Flatten the channel table and build the sorted reverse maps —
        // per-node (global, local) pairs sorted by global, so global→local
        // lookups binary-search a stride-`c` slice instead of hashing.
        let mut channels = Vec::with_capacity(self.n * c);
        let mut rev_global = Vec::with_capacity(self.n * c);
        let mut rev_local = Vec::with_capacity(self.n * c);
        let mut perm: Vec<(u32, u16)> = Vec::with_capacity(c);
        for (i, list) in
            self.channels.iter().map(|l| l.as_ref().expect("checked above")).enumerate()
        {
            channels.extend(list.iter().copied());
            perm.clear();
            perm.extend(list.iter().enumerate().map(|(l, g)| (g.0, l as u16)));
            perm.sort_unstable();
            if let Some(w) = perm.windows(2).find(|w| w[0].0 == w[1].0) {
                return Err(NetworkError::DuplicateChannel(
                    NodeId(i as u32),
                    GlobalChannel(w[0].0),
                ));
            }
            rev_global.extend(perm.iter().map(|p| p.0));
            rev_local.extend(perm.iter().map(|p| p.1));
        }
        let mut raw_edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            if u.index() >= self.n {
                return Err(NetworkError::UnknownNode(u));
            }
            if v.index() >= self.n {
                return Err(NetworkError::UnknownNode(v));
            }
            if u == v {
                return Err(NetworkError::SelfLoop(u));
            }
            raw_edges.push((u.0, v.0));
        }
        let graph = Graph::from_edges(self.n, &raw_edges);

        // k / kmax ground truth + the k >= 1 model requirement, via a merge
        // of the two endpoints' sorted reverse slices per edge.
        let rev_of = |v: usize| &rev_global[v * c..(v + 1) * c];
        let mut k = c;
        let mut kmax = 1usize.min(c);
        for (a, b) in graph.edges() {
            let shared = sorted_intersection_count(rev_of(a as usize), rev_of(b as usize));
            if shared == 0 {
                return Err(NetworkError::NoSharedChannel(NodeId(a), NodeId(b)));
            }
            k = k.min(shared);
            kmax = kmax.max(shared);
        }

        let adj = AdjIndex::build(&graph);

        let mut universe_set: Vec<u32> = rev_global.clone();
        universe_set.sort_unstable();
        universe_set.dedup();

        let diameter = match self.stats {
            StatsMode::Exact => graph.diameter(),
            StatsMode::Approximate => graph.diameter_double_sweep(),
        };
        let stats = NetworkStats {
            n: self.n,
            c,
            universe: universe_set.len(),
            edges: graph.num_edges(),
            delta: graph.max_degree().max(1),
            k,
            kmax,
            connected: graph.is_connected(),
            diameter,
            diameter_is_exact: self.stats == StatsMode::Exact,
        };

        Ok(Network {
            c,
            channels,
            rev_global,
            rev_local,
            graph,
            adj,
            universe: universe_set.len(),
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: u32) -> GlobalChannel {
        GlobalChannel(v)
    }

    fn two_node_net() -> Network {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![g(0), g(1), g(2)]);
        b.set_channels(NodeId(1), vec![g(2), g(3), g(1)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.build().expect("valid network")
    }

    #[test]
    fn builds_and_reports_stats() {
        let net = two_node_net();
        let s = net.stats();
        assert_eq!(s.n, 2);
        assert_eq!(s.c, 3);
        assert_eq!(s.edges, 1);
        assert_eq!(s.delta, 1);
        assert_eq!(s.k, 2); // shared = {g1, g2}
        assert_eq!(s.kmax, 2);
        assert!(s.connected);
        assert_eq!(s.diameter, Some(1));
        assert_eq!(s.universe, 4);
    }

    #[test]
    fn approximate_stats_mode_bounds_the_diameter() {
        // A cycle of 9: D = 4, double-sweep estimate must land in [2, 4].
        let n = 9usize;
        let build = |mode: StatsMode| {
            let mut b = Network::builder(n);
            b.stats_mode(mode);
            for v in 0..n {
                b.set_channels(NodeId(v as u32), vec![g(0)]);
            }
            for v in 0..n {
                b.add_edge(NodeId(v as u32), NodeId(((v + 1) % n) as u32));
            }
            b.build().unwrap()
        };
        let exact = build(StatsMode::Exact).stats();
        let approx = build(StatsMode::Approximate).stats();
        assert!(exact.diameter_is_exact);
        assert!(!approx.diameter_is_exact);
        let d = exact.diameter.unwrap();
        let est = approx.diameter.unwrap();
        assert!(est <= d && d <= 2 * est, "estimate {est} vs exact {d}");
        // Everything except the diameter is identical across modes.
        assert_eq!(
            NetworkStats { diameter: None, diameter_is_exact: true, ..approx },
            NetworkStats { diameter: None, diameter_is_exact: true, ..exact }
        );
    }

    #[test]
    fn generate_with_stats_is_the_same_network() {
        use crate::channels::ChannelModel;
        use crate::topology::Topology;
        let t = Topology::RandomGeometric { n: 30, radius: 0.4 };
        let m = ChannelModel::SharedCore { c: 3, core: 2 };
        let exact = Network::generate(&t, &m, 5).unwrap();
        let approx = Network::generate_with_stats(&t, &m, 5, StatsMode::Approximate).unwrap();
        assert_eq!(exact.edges(), approx.edges(), "same seed, same topology");
        for v in 0..30u32 {
            assert_eq!(exact.channel_map(NodeId(v)), approx.channel_map(NodeId(v)));
        }
        if let (Some(d), Some(est)) = (exact.stats().diameter, approx.stats().diameter) {
            assert!(est <= d && d <= 2 * est);
        }
    }

    #[test]
    fn local_global_round_trip() {
        let net = two_node_net();
        // Node 1's labels are in the order given: l0->g2, l1->g3, l2->g1.
        assert_eq!(net.local_to_global(NodeId(1), LocalChannel(0)), g(2));
        assert_eq!(net.global_to_local(NodeId(1), g(3)), Some(LocalChannel(1)));
        assert_eq!(net.global_to_local(NodeId(1), g(0)), None);
        for l in 0..net.channels_per_node() {
            let l = LocalChannel(l as u16);
            let gg = net.local_to_global(NodeId(0), l);
            assert_eq!(net.global_to_local(NodeId(0), gg), Some(l));
        }
    }

    #[test]
    fn shared_channels_and_overlap() {
        let net = two_node_net();
        assert_eq!(net.shared_channels(NodeId(0), NodeId(1)), vec![g(1), g(2)]);
        assert_eq!(net.overlap(NodeId(0), NodeId(1)), 2);
        assert!(net.are_neighbors(NodeId(0), NodeId(1)));
        assert!(!net.are_neighbors(NodeId(0), NodeId(0)));
    }

    #[test]
    fn rejects_edge_without_shared_channel() {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![g(0)]);
        b.set_channels(NodeId(1), vec![g(1)]);
        b.add_edge(NodeId(0), NodeId(1));
        assert_eq!(b.build().unwrap_err(), NetworkError::NoSharedChannel(NodeId(0), NodeId(1)));
    }

    #[test]
    fn rejects_unequal_channel_counts() {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![g(0), g(1)]);
        b.set_channels(NodeId(1), vec![g(0)]);
        let err = b.build().unwrap_err();
        assert!(matches!(err, NetworkError::UnequalChannelCounts { .. }));
    }

    #[test]
    fn rejects_duplicate_channels() {
        let mut b = Network::builder(1);
        b.set_channels(NodeId(0), vec![g(0), g(0)]);
        assert_eq!(b.build().unwrap_err(), NetworkError::DuplicateChannel(NodeId(0), g(0)));
    }

    #[test]
    fn rejects_missing_channels_and_self_loops() {
        let b = Network::builder(1);
        assert_eq!(b.build().unwrap_err(), NetworkError::MissingChannels(NodeId(0)));

        let mut b = Network::builder(1);
        b.set_channels(NodeId(0), vec![g(0)]);
        b.add_edge(NodeId(0), NodeId(0));
        assert_eq!(b.build().unwrap_err(), NetworkError::SelfLoop(NodeId(0)));
    }

    #[test]
    fn rejects_unknown_endpoint() {
        let mut b = Network::builder(1);
        b.set_channels(NodeId(0), vec![g(0)]);
        b.add_edge(NodeId(0), NodeId(5));
        assert_eq!(b.build().unwrap_err(), NetworkError::UnknownNode(NodeId(5)));
    }

    #[test]
    fn rejects_empty_network() {
        assert_eq!(Network::builder(0).build().unwrap_err(), NetworkError::NoNodes);
    }

    #[test]
    fn channel_crowd_counts_neighbors_with_access() {
        // Star: center 0 with 3 leaves; g0 shared by all, g9x private.
        let mut b = Network::builder(4);
        b.set_channels(NodeId(0), vec![g(0), g(1)]);
        b.set_channels(NodeId(1), vec![g(0), g(90)]);
        b.set_channels(NodeId(2), vec![g(0), g(91)]);
        b.set_channels(NodeId(3), vec![g(0), g(1)]);
        b.add_edges([(NodeId(0), NodeId(1)), (NodeId(0), NodeId(2)), (NodeId(0), NodeId(3))]);
        let net = b.build().unwrap();
        assert_eq!(net.channel_crowd(NodeId(0), g(0)), 3);
        assert_eq!(net.channel_crowd(NodeId(0), g(1)), 1);
        assert_eq!(net.good_neighbors(NodeId(0), 2), vec![NodeId(3)]);
        assert_eq!(net.delta_khat(2), 1);
        assert_eq!(net.delta_khat(1), 3);
    }

    #[test]
    fn dot_export_contains_nodes_and_edges() {
        let net = two_node_net();
        let dot = net.to_dot();
        assert!(dot.starts_with("graph crn {"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("label=\"2\""), "edge labeled with overlap: {dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = NetworkError::NoSharedChannel(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("share no channel"));
    }

    #[test]
    fn dense_rows_only_for_hubs_and_neighbor_tests_agree() {
        // Star with 200 leaves: only the center crosses the max(64, n/64)
        // threshold, and every pairwise answer matches the edge list.
        let n = 201usize;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(NodeId(v as u32), vec![g(0)]);
        }
        for leaf in 1..n {
            b.add_edge(NodeId(0), NodeId(leaf as u32));
        }
        let net = b.build().unwrap();
        assert!(net.adjacency_row(NodeId(0)).is_some(), "hub should get a dense row");
        assert!(net.adjacency_row(NodeId(1)).is_none(), "leaf should not");
        assert_eq!(net.memory_footprint().adjacency_rows, 1);
        for v in 1..n as u32 {
            assert!(net.are_neighbors(NodeId(0), NodeId(v)));
            assert!(net.are_neighbors(NodeId(v), NodeId(0)), "probe via hub row symmetric");
            assert!(!net.are_neighbors(NodeId(1), NodeId(v)) || v == 1);
            assert!(!net.are_neighbors(NodeId(v), NodeId(v)), "self-non-adjacency");
        }
    }

    #[test]
    fn memory_footprint_is_linear_not_quadratic() {
        // A 4096-node cycle: the old dense representation held n² bits
        // (2 MiB of rows); the thresholded index keeps no rows at all.
        let n = 4096usize;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(NodeId(v as u32), vec![g(0)]);
        }
        for v in 0..n {
            b.add_edge(NodeId(v as u32), NodeId(((v + 1) % n) as u32));
        }
        b.stats_mode(StatsMode::Approximate);
        let net = b.build().unwrap();
        let fp = net.memory_footprint();
        assert_eq!(fp.adjacency_rows, 0, "degree-2 nodes earn no dense rows");
        assert!(fp.total_bytes() < 512 * 1024, "O(n + m) footprint expected, got {fp}");
        assert!(net.are_neighbors(NodeId(0), NodeId(1)));
        assert!(net.are_neighbors(NodeId(0), NodeId((n - 1) as u32)));
        assert!(!net.are_neighbors(NodeId(0), NodeId(2)));
    }
}
