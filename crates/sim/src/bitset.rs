//! A compact fixed-capacity bit set, used for O(1) adjacency queries in the
//! engine's collision-resolution inner loop.

/// Fixed-capacity bit set over indices `0..len`.
///
/// # Examples
/// ```
/// use crn_sim::bitset::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(99);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.count_ones(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

/// Outcome of [`BitSet::intersect_unique`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intersection {
    /// The sets share no index.
    Empty,
    /// The sets share exactly this index.
    Unique(usize),
    /// The sets share two or more indices.
    Many,
}

impl BitSet {
    /// Creates an empty set with capacity for indices `0..len`.
    pub fn new(len: usize) -> BitSet {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// The capacity (one past the largest storable index).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sets bit `i`. Returns `true` if the bit was newly set.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Clears bit `i`. Returns `true` if the bit was previously set.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range 0..{}", self.len);
        let (w, b) = (i / 64, i % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Tests bit `i`. Out-of-range indices are reported as unset.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Read access to the backing words (64 indices per word, little-endian
    /// bit order). Exposed for word-level set algebra in hot loops.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Classifies the intersection of two sets as empty, a single index, or
    /// two-or-more — without materializing it. One pass over the words with
    /// early exit at the second hit; this is the engine's listener-side
    /// collision test (`0`, exactly `1`, or `≥ 2` broadcasting neighbors).
    pub fn intersect_unique(&self, other: &BitSet) -> Intersection {
        debug_assert_eq!(
            self.words.len(),
            other.words.len(),
            "intersect_unique requires equal-capacity sets"
        );
        let mut found: Option<usize> = None;
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let and = a & b;
            if and == 0 {
                continue;
            }
            if found.is_some() || and.count_ones() > 1 {
                return Intersection::Many;
            }
            found = Some(w * 64 + and.trailing_zeros() as usize);
        }
        match found {
            Some(i) => Intersection::Unique(i),
            None => Intersection::Empty,
        }
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "second insert reports already present");
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(4096), "out of range reads as unset");
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.count_ones(), 2);
    }

    #[test]
    fn iteration_in_order() {
        let mut s = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 199, 0] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn clear_resets() {
        let mut s = BitSet::new(70);
        s.insert(69);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn intersect_unique_classifies() {
        let mut a = BitSet::new(300);
        let mut b = BitSet::new(300);
        for i in [3usize, 70, 140, 299] {
            a.insert(i);
        }
        assert_eq!(a.intersect_unique(&b), Intersection::Empty);
        b.insert(140);
        assert_eq!(a.intersect_unique(&b), Intersection::Unique(140));
        b.insert(299);
        assert_eq!(a.intersect_unique(&b), Intersection::Many);
        // Two hits inside the same word are also Many.
        let mut c = BitSet::new(300);
        c.insert(3);
        c.insert(5);
        let mut d = BitSet::new(300);
        d.insert(3);
        d.insert(5);
        assert_eq!(c.intersect_unique(&d), Intersection::Many);
    }

    #[test]
    fn words_expose_backing_storage() {
        let mut s = BitSet::new(70);
        s.insert(0);
        s.insert(65);
        assert_eq!(s.words().len(), 2);
        assert_eq!(s.words()[0], 1);
        assert_eq!(s.words()[1], 2);
    }
}
