//! Strongly-typed identifiers used throughout the simulator.
//!
//! The model of Gilbert–Kuhn–Zheng (PODC'17) distinguishes *global* channels
//! (the physical frequency bands, known only to the simulator) from *local*
//! channel labels (what a node calls its own channels: the paper assumes no
//! global channel labels exist). Mixing the two up is the classic bug in CRN
//! simulations, so we make them distinct types.

use std::fmt;

/// Identity of a node in the network.
///
/// Node identities are unique and comparable; several of the paper's
/// protocols (e.g. the line-graph simulation in CGCAST §5.2) rely on
/// comparing identities, so `NodeId` is `Ord`.
///
/// # Examples
/// ```
/// use crn_sim::NodeId;
/// let a = NodeId(3);
/// let b = NodeId(7);
/// assert!(a < b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A *global* (physical) channel. Only the simulator sees these; protocol
/// code must never observe a `GlobalChannel` (the model assumes no global
/// channel labels, paper §3).
///
/// # Examples
/// ```
/// use crn_sim::GlobalChannel;
/// let g = GlobalChannel(12);
/// assert_eq!(g.index(), 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalChannel(pub u32);

impl GlobalChannel {
    /// Returns the channel as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GlobalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// A node-local channel label in `0..c`. Each node has its own arbitrary
/// mapping from local labels to global channels; protocols address channels
/// exclusively through local labels.
///
/// # Examples
/// ```
/// use crn_sim::LocalChannel;
/// let l = LocalChannel(2);
/// assert_eq!(l.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalChannel(pub u16);

impl LocalChannel {
    /// Returns the label as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LocalChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A discrete time slot. Slots start at 0 and all nodes share the same slot
/// clock (the model is fully synchronous and execution starts simultaneously,
/// paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Slot(pub u64);

impl Slot {
    /// The first slot of an execution.
    pub const ZERO: Slot = Slot(0);

    /// Returns the next slot.
    #[inline]
    pub fn next(self) -> Slot {
        Slot(self.0 + 1)
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An undirected edge between two nodes, stored in canonical order
/// (`lo < hi`). Used by the edge-coloring machinery of CGCAST.
///
/// # Examples
/// ```
/// use crn_sim::{Edge, NodeId};
/// let e = Edge::new(NodeId(9), NodeId(2));
/// assert_eq!(e.lo(), NodeId(2));
/// assert_eq!(e.hi(), NodeId(9));
/// assert!(e.touches(NodeId(9)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    lo: NodeId,
    hi: NodeId,
}

impl Edge {
    /// Creates an edge between `a` and `b`, normalizing the endpoint order.
    ///
    /// # Panics
    /// Panics if `a == b` (the network graph is simple, paper §3).
    pub fn new(a: NodeId, b: NodeId) -> Edge {
        assert!(a != b, "self-loop edge {a}-{b} is not allowed in a simple graph");
        if a < b {
            Edge { lo: a, hi: b }
        } else {
            Edge { lo: b, hi: a }
        }
    }

    /// The smaller endpoint. In CGCAST this is the node that simulates the
    /// edge's virtual node in the line graph (paper §5.2).
    #[inline]
    pub fn lo(self) -> NodeId {
        self.lo
    }

    /// The larger endpoint.
    #[inline]
    pub fn hi(self) -> NodeId {
        self.hi
    }

    /// Returns `true` if `v` is one of the endpoints.
    #[inline]
    pub fn touches(self, v: NodeId) -> bool {
        self.lo == v || self.hi == v
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of this edge.
    #[inline]
    pub fn other(self, v: NodeId) -> NodeId {
        if v == self.lo {
            self.hi
        } else if v == self.hi {
            self.lo
        } else {
            panic!("{v} is not an endpoint of edge {self}")
        }
    }

    /// Returns `true` if the two edges share an endpoint (i.e. they are
    /// adjacent vertices in the line graph).
    #[inline]
    pub fn shares_endpoint(self, other: Edge) -> bool {
        self.touches(other.lo) || self.touches(other.hi)
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}-{})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_and_display() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).to_string(), "n5");
        assert_eq!(NodeId::from(9u32), NodeId(9));
        assert_eq!(NodeId(4).index(), 4);
    }

    #[test]
    fn slot_progression() {
        assert_eq!(Slot::ZERO.next(), Slot(1));
        assert_eq!(Slot(41).next(), Slot(42));
        assert_eq!(Slot(7).to_string(), "t7");
    }

    #[test]
    fn edge_canonicalizes_order() {
        let e = Edge::new(NodeId(9), NodeId(2));
        assert_eq!(e.lo(), NodeId(2));
        assert_eq!(e.hi(), NodeId(9));
        assert_eq!(e, Edge::new(NodeId(2), NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(NodeId(3), NodeId(3));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(NodeId(1), NodeId(4));
        assert_eq!(e.other(NodeId(1)), NodeId(4));
        assert_eq!(e.other(NodeId(4)), NodeId(1));
        assert!(e.touches(NodeId(1)));
        assert!(!e.touches(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let _ = Edge::new(NodeId(1), NodeId(4)).other(NodeId(2));
    }

    #[test]
    fn edge_adjacency_in_line_graph() {
        let a = Edge::new(NodeId(0), NodeId(1));
        let b = Edge::new(NodeId(1), NodeId(2));
        let c = Edge::new(NodeId(2), NodeId(3));
        assert!(a.shares_endpoint(b));
        assert!(!a.shares_endpoint(c));
        assert!(b.shares_endpoint(c));
    }

    #[test]
    fn channel_display() {
        assert_eq!(GlobalChannel(3).to_string(), "g3");
        assert_eq!(LocalChannel(3).to_string(), "l3");
    }
}
