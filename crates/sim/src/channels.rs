//! Channel-assignment models: the heterogeneity substrate.
//!
//! Cognitive radio networks get their difficulty from *which* channels each
//! node can access. These models construct per-node channel sets with
//! controlled overlap structure:
//!
//! * [`ChannelModel::Identical`] — every node sees the same `c` channels
//!   (`k = kmax = c`): maximum contention, zero search difficulty.
//! * [`ChannelModel::SharedCore`] — `core` channels common to everyone, the
//!   rest private (`k = kmax = core`): clean `c²/k` search behaviour.
//! * [`ChannelModel::GroupOverlay`] — a global core of `k` channels plus
//!   per-group extras so that intra-group edges overlap on `kmax > k`
//!   channels: exercises the `kmax/k` asymmetry in CSEEK's bound.
//! * [`ChannelModel::CrowdedSplit`] — a star-oriented adversarial mix of
//!   "hot" channels shared by many leaves (crowded, ≥ 8c neighbors) and
//!   "cold" channels shared by few: exactly the dichotomy CSEEK's two-part
//!   design targets (paper Lemmas 2 and 3).
//! * [`ChannelModel::RandomPool`] — every node draws `c` channels uniformly
//!   from a pool: emergent overlap, used with
//!   [`prune_edges_by_overlap`] for realistic scenarios.

use crate::ids::GlobalChannel;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A rule for assigning channel sets to `n` nodes. See the module docs for
/// the intent of each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelModel {
    /// All nodes share the identical set `{0, …, c−1}`.
    Identical {
        /// Channels per node.
        c: usize,
    },
    /// `core` globally-shared channels; each node fills up to `c` with
    /// channels private to it. Every edge overlaps on exactly the core.
    SharedCore {
        /// Channels per node.
        c: usize,
        /// Size of the shared core (the resulting `k = kmax`).
        core: usize,
    },
    /// Global core of `k` channels; nodes are split into `groups` contiguous
    /// blocks, each block sharing `kmax − k` extra channels; the rest are
    /// private. Edges inside a block overlap on `kmax` channels, edges
    /// across blocks on `k`.
    GroupOverlay {
        /// Channels per node.
        c: usize,
        /// Cross-group overlap (the global minimum).
        k: usize,
        /// Intra-group overlap.
        kmax: usize,
        /// Number of node groups.
        groups: usize,
    },
    /// Star-oriented adversarial assignment (hub = node 0). Every leaf
    /// shares exactly `k` channels with the hub: `k_hot` of them drawn from
    /// a small pool of `hot` hub channels (these become crowded) and
    /// `k − k_hot` from the remaining hub channels with balanced reuse
    /// (these stay uncrowded).
    CrowdedSplit {
        /// Channels per node.
        c: usize,
        /// Hub–leaf overlap (`k = kmax = k` on a star).
        k: usize,
        /// Number of hub channels designated "hot".
        hot: usize,
        /// How many of each leaf's shared channels are hot.
        k_hot: usize,
    },
    /// Every node independently draws a uniform `c`-subset of
    /// `{0, …, universe−1}`.
    RandomPool {
        /// Channels per node.
        c: usize,
        /// Pool size (must be ≥ c).
        universe: usize,
    },
}

impl ChannelModel {
    /// Channels per node `c` for this model.
    pub fn c(&self) -> usize {
        match *self {
            ChannelModel::Identical { c }
            | ChannelModel::SharedCore { c, .. }
            | ChannelModel::GroupOverlay { c, .. }
            | ChannelModel::CrowdedSplit { c, .. }
            | ChannelModel::RandomPool { c, .. } => c,
        }
    }

    /// Produces the channel set of every node, in *sorted global order*
    /// (callers should apply [`shuffle_local_labels`] afterwards to model
    /// arbitrary local labels).
    ///
    /// # Panics
    /// Panics on inconsistent parameters (e.g. `core > c`, `kmax > c`,
    /// `universe < c`).
    pub fn assign(&self, n: usize, rng: &mut SmallRng) -> Vec<Vec<GlobalChannel>> {
        match *self {
            ChannelModel::Identical { c } => {
                assert!(c >= 1, "c must be positive");
                let set: Vec<GlobalChannel> = (0..c as u32).map(GlobalChannel).collect();
                vec![set; n]
            }
            ChannelModel::SharedCore { c, core } => {
                assert!(core >= 1 && core <= c, "need 1 <= core <= c");
                let mut next_private = core as u32;
                (0..n)
                    .map(|_| {
                        let mut set: Vec<GlobalChannel> =
                            (0..core as u32).map(GlobalChannel).collect();
                        for _ in core..c {
                            set.push(GlobalChannel(next_private));
                            next_private += 1;
                        }
                        set
                    })
                    .collect()
            }
            ChannelModel::GroupOverlay { c, k, kmax, groups } => {
                assert!(k >= 1 && k <= kmax && kmax <= c, "need 1 <= k <= kmax <= c");
                assert!(groups >= 1, "need at least one group");
                let extra = kmax - k;
                let group_base = k as u32;
                let private_base = group_base + (groups * extra) as u32;
                let mut next_private = private_base;
                let block = n.div_ceil(groups);
                (0..n)
                    .map(|v| {
                        let gid = (v / block.max(1)).min(groups - 1) as u32;
                        let mut set: Vec<GlobalChannel> =
                            (0..k as u32).map(GlobalChannel).collect();
                        for e in 0..extra as u32 {
                            set.push(GlobalChannel(group_base + gid * extra as u32 + e));
                        }
                        for _ in kmax..c {
                            set.push(GlobalChannel(next_private));
                            next_private += 1;
                        }
                        set
                    })
                    .collect()
            }
            ChannelModel::CrowdedSplit { c, k, hot, k_hot } => {
                assert!(k >= 1 && k <= c, "need 1 <= k <= c");
                assert!(k_hot <= k, "k_hot cannot exceed k");
                assert!(hot >= k_hot, "hot pool must cover k_hot");
                assert!(hot + (k - k_hot) <= c, "hub must have enough cold channels");
                assert!(n >= 1, "need at least the hub");
                // Hub (node 0) owns channels 0..c: 0..hot are hot, hot..c cold.
                let hub: Vec<GlobalChannel> = (0..c as u32).map(GlobalChannel).collect();
                let cold_pool: Vec<u32> = (hot as u32..c as u32).collect();
                let mut next_private = c as u32;
                let mut cold_cursor = 0usize;
                let mut sets = Vec::with_capacity(n);
                sets.push(hub);
                for leaf in 1..n {
                    let mut set = Vec::with_capacity(c);
                    // Hot shares: consecutive slice (mod hot) so every hot
                    // channel is reused by ~(n-1)·k_hot/hot leaves.
                    for j in 0..k_hot {
                        set.push(GlobalChannel((((leaf - 1) * k_hot + j) % hot) as u32));
                    }
                    // Cold shares: balanced round-robin over the cold pool.
                    for _ in 0..(k - k_hot) {
                        set.push(GlobalChannel(cold_pool[cold_cursor % cold_pool.len()]));
                        cold_cursor += 1;
                    }
                    set.sort_unstable();
                    set.dedup();
                    while set.len() < c {
                        set.push(GlobalChannel(next_private));
                        next_private += 1;
                    }
                    sets.push(set);
                }
                sets
            }
            ChannelModel::RandomPool { c, universe } => {
                assert!(universe >= c, "pool must be at least c");
                let pool: Vec<u32> = (0..universe as u32).collect();
                (0..n)
                    .map(|_| {
                        let mut chosen: Vec<u32> = pool.choose_multiple(rng, c).copied().collect();
                        chosen.sort_unstable();
                        chosen.into_iter().map(GlobalChannel).collect()
                    })
                    .collect()
            }
        }
    }
}

/// Randomly permutes each node's channel vector in place, modelling the
/// paper's assumption that nodes label channels arbitrarily (no global
/// labels). Protocol behaviour must be invariant under this shuffle.
pub fn shuffle_local_labels(sets: &mut [Vec<GlobalChannel>], rng: &mut SmallRng) {
    for set in sets {
        set.shuffle(rng);
    }
}

/// Keeps only the edges whose endpoints share at least `min_overlap`
/// channels. Used with emergent models ([`ChannelModel::RandomPool`]) where
/// radio range and channel overlap jointly define the neighbor relation.
pub fn prune_edges_by_overlap(
    edges: &[(u32, u32)],
    sets: &[Vec<GlobalChannel>],
    min_overlap: usize,
) -> Vec<(u32, u32)> {
    edges
        .iter()
        .copied()
        .filter(|&(a, b)| overlap_size(&sets[a as usize], &sets[b as usize]) >= min_overlap)
        .collect()
}

/// Number of common channels between two channel sets (any order).
pub fn overlap_size(a: &[GlobalChannel], b: &[GlobalChannel]) -> usize {
    if a.len() > b.len() {
        return overlap_size(b, a);
    }
    let bset: std::collections::HashSet<GlobalChannel> = b.iter().copied().collect();
    a.iter().filter(|g| bset.contains(g)).count()
}

/// Convenience: draw a uniformly random integer in `0..bound` (used by
/// several protocols; kept here so the dependency is on one RNG idiom).
#[inline]
pub fn uniform_index(rng: &mut SmallRng, bound: usize) -> usize {
    debug_assert!(bound > 0);
    rng.gen_range(0..bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream_rng;

    #[test]
    fn identical_model() {
        let mut rng = stream_rng(1, 0);
        let sets = ChannelModel::Identical { c: 4 }.assign(3, &mut rng);
        assert_eq!(sets.len(), 3);
        assert!(sets.iter().all(|s| s.len() == 4));
        assert_eq!(sets[0], sets[1]);
        assert_eq!(overlap_size(&sets[0], &sets[2]), 4);
    }

    #[test]
    fn shared_core_overlap_is_exactly_core() {
        let mut rng = stream_rng(1, 0);
        let sets = ChannelModel::SharedCore { c: 6, core: 2 }.assign(5, &mut rng);
        for a in 0..5 {
            for b in (a + 1)..5 {
                assert_eq!(overlap_size(&sets[a], &sets[b]), 2, "pair {a},{b}");
            }
        }
        // Private channels are globally unique.
        let mut privates: Vec<u32> =
            sets.iter().flat_map(|s| s.iter().map(|g| g.0).filter(|&g| g >= 2)).collect();
        let before = privates.len();
        privates.sort_unstable();
        privates.dedup();
        assert_eq!(privates.len(), before);
    }

    #[test]
    fn group_overlay_intra_vs_cross() {
        let mut rng = stream_rng(1, 0);
        let m = ChannelModel::GroupOverlay { c: 8, k: 2, kmax: 5, groups: 2 };
        let sets = m.assign(6, &mut rng);
        // Blocks: {0,1,2} and {3,4,5}.
        assert_eq!(overlap_size(&sets[0], &sets[1]), 5, "intra-group overlap = kmax");
        assert_eq!(overlap_size(&sets[0], &sets[4]), 2, "cross-group overlap = k");
        assert!(sets.iter().all(|s| s.len() == 8));
    }

    #[test]
    fn crowded_split_hub_leaf_overlap_is_k() {
        let mut rng = stream_rng(1, 0);
        let m = ChannelModel::CrowdedSplit { c: 6, k: 2, hot: 1, k_hot: 1 };
        let n = 20;
        let sets = m.assign(n, &mut rng);
        for leaf in 1..n {
            assert_eq!(overlap_size(&sets[0], &sets[leaf]), 2, "leaf {leaf}");
        }
        // Hot channel 0 is shared by all leaves: crowded.
        let hot_crowd = (1..n).filter(|&l| sets[l].contains(&GlobalChannel(0))).count();
        assert_eq!(hot_crowd, n - 1);
        // Cold channels are spread: each reused by at most ceil((n-1)/(c-hot)).
        for cold in 1u32..6 {
            let crowd = (1..n).filter(|&l| sets[l].contains(&GlobalChannel(cold))).count();
            assert!(crowd <= (n - 1).div_ceil(5), "cold channel {cold} crowd {crowd}");
        }
    }

    #[test]
    fn random_pool_respects_c_and_universe() {
        let mut rng = stream_rng(1, 0);
        let sets = ChannelModel::RandomPool { c: 5, universe: 12 }.assign(40, &mut rng);
        for s in &sets {
            assert_eq!(s.len(), 5);
            let mut d = s.clone();
            d.dedup();
            assert_eq!(d.len(), 5, "no duplicates");
            assert!(s.iter().all(|g| g.0 < 12));
        }
    }

    #[test]
    fn prune_edges_filters_low_overlap() {
        let sets = vec![
            vec![GlobalChannel(0), GlobalChannel(1)],
            vec![GlobalChannel(1), GlobalChannel(2)],
            vec![GlobalChannel(3), GlobalChannel(4)],
        ];
        let edges = vec![(0u32, 1u32), (0, 2), (1, 2)];
        assert_eq!(prune_edges_by_overlap(&edges, &sets, 1), vec![(0, 1)]);
        assert!(prune_edges_by_overlap(&edges, &sets, 3).is_empty());
    }

    #[test]
    fn shuffle_preserves_set_membership() {
        let mut rng = stream_rng(3, 0);
        let mut sets = ChannelModel::SharedCore { c: 8, core: 3 }.assign(4, &mut rng);
        let before: Vec<std::collections::BTreeSet<u32>> =
            sets.iter().map(|s| s.iter().map(|g| g.0).collect()).collect();
        shuffle_local_labels(&mut sets, &mut rng);
        let after: Vec<std::collections::BTreeSet<u32>> =
            sets.iter().map(|s| s.iter().map(|g| g.0).collect()).collect();
        assert_eq!(before, after);
    }

    #[test]
    #[should_panic(expected = "pool must be at least c")]
    fn random_pool_rejects_small_universe() {
        let mut rng = stream_rng(1, 0);
        let _ = ChannelModel::RandomPool { c: 5, universe: 4 }.assign(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "k_hot cannot exceed k")]
    fn crowded_split_validates() {
        let mut rng = stream_rng(1, 0);
        let _ = ChannelModel::CrowdedSplit { c: 6, k: 2, hot: 3, k_hot: 3 }.assign(2, &mut rng);
    }
}
