//! Undirected graph utilities: BFS, connectivity, diameter, degrees.
//!
//! The graph is stored in CSR form (contiguous neighbor slices), used both
//! by the network builder (to compute ground-truth statistics such as `D`
//! and `Δ`), by the pure coloring algorithms in `crn-core`, and by the
//! engine's broadcaster-centric slot resolver, which walks raw CSR slices
//! in its hot loop.

use std::collections::VecDeque;

/// An immutable undirected graph in CSR (compressed sparse row) form:
/// one contiguous `targets` array plus per-vertex offsets. Neighbor lists
/// are sorted, deduplicated slices — the engine's broadcaster-centric sweep
/// walks them with no pointer chasing and perfect locality.
///
/// # Examples
/// ```
/// use crn_sim::graph::Graph;
/// // A path 0-1-2-3.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.max_degree(), 2);
/// assert!(g.is_connected());
/// assert_eq!(g.diameter(), Some(3));
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// `targets[offsets[v] .. offsets[v + 1]]` = sorted neighbors of `v`.
    offsets: Vec<u32>,
    targets: Vec<u32>,
    num_edges: usize,
}

impl Graph {
    /// Builds a graph on `n` vertices from an edge list. Duplicate edges are
    /// collapsed.
    ///
    /// Construction is a counting-sort CSR build — O(n + m) allocations and
    /// passes plus a per-vertex neighbor sort — so million-node sparse
    /// graphs build without the per-vertex `Vec` churn of the naive
    /// adjacency-list intermediate.
    ///
    /// # Panics
    /// Panics on self-loops, endpoints `>= n`, `n > u32::MAX`, or a total
    /// directed-target count that does not fit the `u32` CSR offsets
    /// (`2m > u32::MAX`) — sizes are rejected loudly instead of silently
    /// truncating the index arithmetic.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Graph {
        assert!(n <= u32::MAX as usize, "graph of {n} vertices overflows u32 vertex ids");
        assert!(
            edges.len() <= (u32::MAX / 2) as usize,
            "edge list of {} entries overflows u32 CSR offsets",
            edges.len()
        );
        // Pass 1: degree counts (both directions of every undirected edge).
        let mut offsets = vec![0u32; n + 1];
        for &(a, b) in edges {
            assert!(a != b, "self-loop {a}-{b}");
            assert!((a as usize) < n && (b as usize) < n, "edge {a}-{b} out of range for n={n}");
            offsets[a as usize + 1] += 1;
            offsets[b as usize + 1] += 1;
        }
        // Prefix sums turn counts into slice starts.
        for v in 1..=n {
            offsets[v] += offsets[v - 1];
        }
        // Pass 2: scatter targets using a moving write cursor per vertex.
        let total = offsets[n] as usize;
        let mut targets = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(a, b) in edges {
            targets[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Sort each slice, then compact away duplicate edges in place.
        let mut write = 0usize;
        let mut new_offsets = vec![0u32; n + 1];
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[start..end].sort_unstable();
            let mut prev: Option<u32> = None;
            for i in start..end {
                let w = targets[i];
                if prev != Some(w) {
                    targets[write] = w;
                    write += 1;
                    prev = Some(w);
                }
            }
            new_offsets[v + 1] = write as u32;
        }
        targets.truncate(write);
        let num_edges = write / 2;
        Graph { offsets: new_offsets, targets, num_edges }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of (undirected) edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbor list of vertex `v`, as a contiguous CSR slice.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Maximum degree `Δ` (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.len()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// `true` if `a` and `b` are adjacent.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Heap bytes held by the CSR arrays. The network's memory-footprint
    /// report sums this with the channel tables to prove O(n + m) setup.
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.capacity() + self.targets.capacity()) * std::mem::size_of::<u32>()
    }

    /// All edges in canonical `(lo, hi)` order, sorted.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for v in 0..self.len() {
            let list = self.neighbors(v);
            for &w in list {
                if (v as u32) < w {
                    out.push((v as u32, w));
                }
            }
        }
        out
    }

    /// BFS distances from `src`; unreachable vertices get `u32::MAX`.
    pub fn bfs_distances(&self, src: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut q = VecDeque::new();
        dist[src] = 0;
        q.push_back(src as u32);
        while let Some(v) = q.pop_front() {
            let dv = dist[v as usize];
            for &w in self.neighbors(v as usize) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// `true` if the graph is connected (the empty graph counts as
    /// connected; a single vertex does too).
    pub fn is_connected(&self) -> bool {
        if self.len() <= 1 {
            return true;
        }
        self.bfs_distances(0).iter().all(|&d| d != u32::MAX)
    }

    /// Exact diameter via all-source BFS, or `None` if the graph is
    /// disconnected or empty. O(n·m); fine for the simulation sizes used
    /// here (n ≤ a few thousand).
    pub fn diameter(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let mut diam = 0u64;
        for v in 0..self.len() {
            let dist = self.bfs_distances(v);
            for &d in &dist {
                if d == u32::MAX {
                    return None;
                }
                diam = diam.max(d as u64);
            }
        }
        Some(diam)
    }

    /// Approximate diameter via a double BFS sweep, or `None` if the graph
    /// is disconnected or empty. Returns the eccentricity of a vertex that
    /// is farthest from vertex 0 — a lower bound `est` with the guarantee
    /// `est ≤ D ≤ 2·est` (any eccentricity 2-approximates the diameter by
    /// the triangle inequality), and exact on trees. `O(n + m)` against the
    /// exact all-source computation's `O(n·m)`.
    pub fn diameter_double_sweep(&self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let first = self.bfs_distances(0);
        let mut far = 0usize;
        let mut far_d = 0u32;
        for (v, &d) in first.iter().enumerate() {
            if d == u32::MAX {
                return None;
            }
            if d > far_d {
                far_d = d;
                far = v;
            }
        }
        self.eccentricity(far)
    }

    /// Eccentricity of `src` (max BFS distance), or `None` if some vertex is
    /// unreachable.
    pub fn eccentricity(&self, src: usize) -> Option<u64> {
        let dist = self.bfs_distances(src);
        let mut ecc = 0u64;
        for &d in &dist {
            if d == u32::MAX {
                return None;
            }
            ecc = ecc.max(d as u64);
        }
        Some(ecc)
    }

    /// Number of connected components.
    pub fn num_components(&self) -> usize {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut comps = 0;
        let mut q = VecDeque::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            comps += 1;
            seen[s] = true;
            q.push_back(s as u32);
            while let Some(v) = q.pop_front() {
                for &w in self.neighbors(v as usize) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        q.push_back(w);
                    }
                }
            }
        }
        comps
    }

    /// Vertex indices of the largest connected component, sorted.
    pub fn largest_component(&self) -> Vec<u32> {
        let n = self.len();
        let mut comp = vec![usize::MAX; n];
        let mut sizes = Vec::new();
        let mut q = VecDeque::new();
        for s in 0..n {
            if comp[s] != usize::MAX {
                continue;
            }
            let id = sizes.len();
            comp[s] = id;
            let mut size = 1usize;
            q.push_back(s as u32);
            while let Some(v) = q.pop_front() {
                for &w in self.neighbors(v as usize) {
                    if comp[w as usize] == usize::MAX {
                        comp[w as usize] = id;
                        size += 1;
                        q.push_back(w);
                    }
                }
            }
            sizes.push(size);
        }
        let best = sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i).unwrap_or(0);
        (0..n as u32).filter(|&v| comp[v as usize] == best).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_metrics() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(4));
        assert_eq!(g.eccentricity(2), Some(2));
        assert_eq!(g.num_components(), 1);
    }

    #[test]
    fn star_graph_metrics() {
        let edges: Vec<(u32, u32)> = (1..=6).map(|i| (0, i)).collect();
        let g = Graph::from_edges(7, &edges);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(g.degree(0), 6);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn disconnected_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert_eq!(g.num_components(), 2);
        assert_eq!(g.eccentricity(0), None);
        let lc = g.largest_component();
        assert_eq!(lc.len(), 2);
    }

    #[test]
    fn double_sweep_is_exact_on_trees_and_bounded_everywhere() {
        // Trees: the double sweep finds a true diameter endpoint.
        let path = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(path.diameter_double_sweep(), Some(5));
        let star: Vec<(u32, u32)> = (1..=6).map(|i| (0, i)).collect();
        let star = Graph::from_edges(7, &star);
        assert_eq!(star.diameter_double_sweep(), Some(2));
        // Caterpillar-ish tree rooted asymmetrically.
        let tree = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (1, 4), (4, 5), (0, 6)]);
        assert_eq!(tree.diameter_double_sweep(), tree.diameter());

        // Non-trees: est ≤ D ≤ 2·est on known topologies.
        let cases = [
            // Cycle C8: D = 4.
            Graph::from_edges(8, &(0..8).map(|i| (i, (i + 1) % 8)).collect::<Vec<_>>()),
            // 3×4 grid: D = 5.
            Graph::from_edges(
                12,
                &[
                    (0, 1),
                    (1, 2),
                    (2, 3),
                    (4, 5),
                    (5, 6),
                    (6, 7),
                    (8, 9),
                    (9, 10),
                    (10, 11),
                    (0, 4),
                    (4, 8),
                    (1, 5),
                    (5, 9),
                    (2, 6),
                    (6, 10),
                    (3, 7),
                    (7, 11),
                ],
            ),
            // K5: D = 1.
            Graph::from_edges(
                5,
                &(0..5).flat_map(|a| (a + 1..5).map(move |b| (a, b))).collect::<Vec<_>>(),
            ),
        ];
        for g in &cases {
            let exact = g.diameter().expect("connected");
            let est = g.diameter_double_sweep().expect("connected");
            assert!(est <= exact, "estimate {est} exceeds exact {exact}");
            assert!(exact <= 2 * est, "exact {exact} breaks the 2-approx bound of {est}");
        }
    }

    #[test]
    fn double_sweep_matches_exact_on_degenerate_graphs() {
        assert_eq!(Graph::from_edges(1, &[]).diameter_double_sweep(), Some(0));
        assert_eq!(Graph::from_edges(4, &[(0, 1), (2, 3)]).diameter_double_sweep(), None);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn edges_round_trip() {
        let input = vec![(0u32, 1u32), (1, 2), (0, 2), (2, 3)];
        let g = Graph::from_edges(4, &input);
        let mut got = g.edges();
        got.sort_unstable();
        let mut want = input.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn single_vertex_is_connected() {
        let g = Graph::from_edges(1, &[]);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = Graph::from_edges(2, &[(0, 2)]);
    }
}
