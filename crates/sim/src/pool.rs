//! A persistent fork-join worker pool for per-slot parallel work.
//!
//! [`Resolver::ParallelSharded`](crate::engine::Resolver::ParallelSharded)
//! originally spawned scoped threads *every slot*. That is correct and
//! borrow-friendly, but a spawn/join round-trip costs tens of microseconds —
//! more than the entire resolution work of a small slot — and the paper's
//! primitives run for Ω(polylog n) slots, so per-slot fixed costs are
//! exactly what dominates wall-clock at scale. [`WorkerPool`] replaces the
//! per-slot spawn with threads that live as long as the pool (in practice:
//! as long as the owning [`Engine`](crate::engine::Engine)) and spend their
//! idle time parked in the OS. The same pool serves both of the engine's
//! parallel phases: chunked phase-1 action collection (for large `n`) and
//! channel-sharded phase-2 resolution — one generation wake per dispatch.
//!
//! # Wake protocol
//!
//! The pool deliberately has **no channels, locks, or queues on the hot
//! path** — one atomic generation counter drives everything:
//!
//! 1. The caller writes the job (a type-erased closure pointer plus its own
//!    [`Thread`] handle) into a shared cell, then publishes it by bumping
//!    the generation counter with `Release` ordering and unparking every
//!    worker.
//! 2. Each worker loops: `park()` until the `Acquire`-loaded generation
//!    differs from the last one it served, run the job closure with its
//!    worker index, store the generation into its own padded `done` slot
//!    (`Release`), and unpark the caller.
//! 3. The caller meanwhile runs its own share of the work, then waits until
//!    every `done` slot (`Acquire`) has caught up to the published
//!    generation. Only then does [`WorkerPool::run_with`] return — which is
//!    what makes the lifetime-erasure below sound.
//!
//! `park`/`unpark` is the right primitive here: an `unpark` before the
//! `park` is not lost (it banks a token), so the protocol has no lost-wakeup
//! window, and both sides re-check their condition in a loop, so spurious
//! wakeups are harmless.
//!
//! # Safety argument
//!
//! This module is the only place in `crn-sim` allowed to use `unsafe` (the
//! crate is `deny(unsafe_code)` elsewhere). The two erasures it performs are
//! the same ones `std::thread::scope` performs internally:
//!
//! * **Lifetime erasure of the job closure.** `run_with` transmutes
//!   `&dyn Fn(usize)` to `'static` to store it in the shared cell. Workers
//!   only dereference it between the generation bump and their `done`
//!   store, and `run_with` does not return (even on panic — the wait lives
//!   in a drop guard) until every worker has stored `done`. The borrow
//!   therefore strictly outlives every use.
//! * **Disjoint `&mut` hand-out.** Each worker index is served by exactly
//!   one thread per generation, and worker `w` receives `&mut state[w]`
//!   only — distinct indices, distinct elements, no aliasing.
//!
//! A worker panic is caught (`catch_unwind`), the payload parked in a
//! `Mutex`, the `done` slot still stored — the caller always gets to finish
//! its wait — and the panic is resumed on the calling thread afterwards,
//! matching scoped-thread semantics.
//!
//! # Determinism
//!
//! The pool schedules *which thread* runs a shard, never *what the shard
//! computes*: the engine's shard partition and per-channel resolution are
//! deterministic functions of the slot's actions, so results are
//! bit-identical at any worker count (enforced by the differential suite in
//! `tests/tests/engine_equiv.rs`).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};

/// A job published to the workers: the erased closure plus the caller to
/// wake when a worker finishes.
#[derive(Clone)]
struct Job {
    /// Type- and lifetime-erased `&(dyn Fn(usize) + Sync)` — valid only
    /// while the generation that published it is being served.
    f: *const (dyn Fn(usize) + Sync),
    /// The thread blocked in [`WorkerPool::run_with`], to unpark after a
    /// worker stores its `done` stamp.
    caller: Thread,
}

/// One worker's completion stamp, padded to a cache line so eight workers
/// acknowledging a generation don't false-share one line.
#[repr(align(64))]
struct DoneSlot {
    generation: AtomicU64,
}

/// State shared between the caller and all workers.
struct Shared {
    /// The generation counter. Bumped (with the job already written) to
    /// publish work; also bumped with `shutdown` set to retire the pool.
    generation: AtomicU64,
    /// Set (before the final generation bump) to tell workers to exit.
    shutdown: AtomicBool,
    /// The current job — deliberately **not** behind a lock: the caller
    /// writes it strictly before the `Release` generation bump, workers
    /// read it strictly after `Acquire`-observing that bump and strictly
    /// before their `done` acknowledgment, and the caller does not write
    /// again (or return) until every acknowledgment is in. Single writer,
    /// readers confined to a window the writer is blocked through.
    job: UnsafeCell<Option<Job>>,
    /// Per-worker completion stamps.
    done: Vec<DoneSlot>,
    /// First worker panic of the current generation, rethrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: the only non-`Sync` field is the `UnsafeCell<Option<Job>>`
// (raw closure pointer + `Thread` handle); access to it follows the
// generation protocol described on the field and in the module docs, and
// the pointee closure is required to be `Sync`.
unsafe impl Sync for Shared {}
// SAFETY: as above — the raw pointer inside `Job` is only ever a borrow of
// a `Sync` closure kept alive by the blocked caller.
unsafe impl Send for Shared {}

/// A persistent pool of parked worker threads driven by a generation
/// counter. See the module docs for the protocol and safety argument.
///
/// The pool is a *fork-join* primitive, not a task queue: [`run_with`]
/// publishes one closure, every worker runs it once with its own index and
/// its own `&mut` state slot, and the call returns when all are done.
///
/// [`run_with`]: WorkerPool::run_with
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.handles.len()).finish()
    }
}

/// `Send`-asserting wrapper for the base pointer of the per-worker state
/// slice handed to `run_with`.
struct StatePtr<S>(*mut S);
// SAFETY: the wrapped pointer targets a `&mut [S]` with `S: Send` (bound on
// `run_with`), and each worker dereferences a distinct element.
unsafe impl<S> Send for StatePtr<S> {}
unsafe impl<S> Sync for StatePtr<S> {}

impl<S> StatePtr<S> {
    /// Accessor (rather than a public field) so closures capture the
    /// `Sync` wrapper itself — edition-2021 disjoint capture would
    /// otherwise capture the bare `*mut S` field and lose the wrapper's
    /// thread-safety assertion.
    fn get(&self) -> *mut S {
        self.0
    }
}

impl WorkerPool {
    /// Spawns a pool of `workers` parked threads. `workers` may be 0 (a
    /// pool that runs everything on the caller).
    pub fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(Shared {
            generation: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            job: UnsafeCell::new(None),
            done: (0..workers).map(|_| DoneSlot { generation: AtomicU64::new(0) }).collect(),
            panic: Mutex::new(None),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("crn-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawning a pool worker thread")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads (the caller is not counted).
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `worker(w, &mut state[w])` on worker thread `w` for every
    /// element of `state`, concurrently with `main_task()` on the calling
    /// thread, and returns when **all** of them have finished.
    ///
    /// Workers beyond `state.len()` wake, see nothing addressed to them,
    /// acknowledge the generation, and park again. A panic in any closure
    /// is re-raised on the calling thread after every worker has finished
    /// (first payload wins).
    ///
    /// # Panics
    /// Panics if `state.len() > self.workers()`.
    pub fn run_with<S, F, G>(&mut self, state: &mut [S], worker: F, main_task: G)
    where
        S: Send,
        F: Fn(usize, &mut S) + Sync,
        G: FnOnce(),
    {
        assert!(
            state.len() <= self.workers(),
            "run_with over {} state slots on a {}-worker pool",
            state.len(),
            self.workers()
        );
        if self.handles.is_empty() {
            // Degenerate pool: nothing to fork, nothing to join.
            debug_assert!(state.is_empty());
            main_task();
            return;
        }
        let active = state.len();
        let base = StatePtr(state.as_mut_ptr());
        let call = move |w: usize| {
            if w < active {
                // SAFETY: worker index `w` is served by exactly one thread
                // per generation and indices are distinct, so this `&mut`
                // aliases nothing; `w < active = state.len()` bounds it.
                let slot = unsafe { &mut *base.get().add(w) };
                worker(w, slot);
            }
        };
        let erased: &(dyn Fn(usize) + Sync) = &call;
        // SAFETY: the pointer is only dereferenced by workers between the
        // generation bump below and their `done` acknowledgment, and the
        // `WaitGuard` keeps this frame alive until every acknowledgment is
        // in — even if `main_task` panics.
        let f: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(erased) };

        // Publish the job, then the generation (Release), then wake.
        // SAFETY: every worker has acknowledged the previous generation (or
        // never saw one), so none is inside the read window; `&mut self`
        // excludes a concurrent publisher.
        unsafe {
            *self.shared.job.get() = Some(Job { f, caller: thread::current() });
        }
        let generation = self.shared.generation.load(Ordering::Relaxed) + 1;
        self.shared.generation.store(generation, Ordering::Release);
        for handle in &self.handles {
            handle.thread().unpark();
        }

        // From here on we MUST wait for every worker before unwinding: the
        // guard runs the wait even if `main_task` panics.
        struct WaitGuard<'p> {
            pool: &'p WorkerPool,
            generation: u64,
        }
        impl Drop for WaitGuard<'_> {
            fn drop(&mut self) {
                for slot in &self.pool.shared.done {
                    while slot.generation.load(Ordering::Acquire) < self.generation {
                        thread::park();
                    }
                }
                // SAFETY: every worker has acknowledged `generation`, so no
                // reader remains in the window; clearing drops the dangling
                // closure pointer before this stack frame goes away.
                unsafe {
                    *self.pool.shared.job.get() = None;
                }
            }
        }
        let guard = WaitGuard { pool: self, generation };
        let main_result = catch_unwind(AssertUnwindSafe(main_task));
        // Join the workers (the guard's drop is the wait), then take any
        // worker panic out *before* unwinding — resuming with the lock's
        // guard still live (an `if let` over the lock) would poison the
        // mutex and wedge every later `run_with`.
        drop(guard);
        let worker_panic = self.shared.panic.lock().expect("pool panic lock").take();
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
        if let Err(payload) = main_result {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    /// Graceful teardown: ask every worker to exit, wake them, and join.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.generation.fetch_add(1, Ordering::Release);
        for handle in &self.handles {
            handle.thread().unpark();
        }
        for handle in self.handles.drain(..) {
            // A worker that panicked has already parked its payload for the
            // caller; there is nothing useful to do with the join error.
            let _ = handle.join();
        }
    }
}

/// The worker side of the protocol described in the module docs.
fn worker_loop(shared: &Shared, w: usize) {
    let mut served = 0u64;
    loop {
        let mut generation = shared.generation.load(Ordering::Acquire);
        while generation == served {
            thread::park();
            generation = shared.generation.load(Ordering::Acquire);
        }
        served = generation;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the generation bump was `Release`-published after the job
        // was written, and the caller is blocked until this worker's `done`
        // store below — the cell is stable for the whole read window.
        let (f, caller) = unsafe {
            let job = (*shared.job.get()).as_ref().expect("generation published without a job");
            (job.f, job.caller.clone())
        };
        // SAFETY: the caller keeps the closure alive until this worker's
        // `done` store below (see module docs).
        let result = catch_unwind(AssertUnwindSafe(|| (unsafe { &*f })(w)));
        if let Err(payload) = result {
            let mut slot = shared.panic.lock().expect("pool panic lock");
            slot.get_or_insert(payload);
        }
        shared.done[w].generation.store(generation, Ordering::Release);
        caller.unpark();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_worker_with_its_own_state() {
        let mut pool = WorkerPool::new(4);
        let mut state = vec![0u64; 4];
        pool.run_with(&mut state, |w, s| *s = (w as u64 + 1) * 10, || {});
        assert_eq!(state, vec![10, 20, 30, 40]);
    }

    #[test]
    fn main_task_runs_concurrently_and_fewer_slots_than_workers_is_fine() {
        let mut pool = WorkerPool::new(3);
        let mut state = vec![0u64; 2];
        let mut main_ran = false;
        pool.run_with(&mut state, |w, s| *s = w as u64 + 1, || main_ran = true);
        assert!(main_ran);
        assert_eq!(state, vec![1, 2]);
    }

    #[test]
    fn reuses_workers_across_many_generations() {
        let mut pool = WorkerPool::new(2);
        let counter = AtomicUsize::new(0);
        for round in 0..100 {
            let mut state = vec![0usize; 2];
            pool.run_with(
                &mut state,
                |w, s| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    *s = round + w;
                },
                || {},
            );
            assert_eq!(state, vec![round, round + 1]);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn zero_worker_pool_runs_main_only() {
        let mut pool = WorkerPool::new(0);
        let mut state: Vec<u8> = Vec::new();
        let mut main_ran = false;
        pool.run_with(&mut state, |_, _| unreachable!(), || main_ran = true);
        assert!(main_ran);
    }

    #[test]
    fn worker_panic_propagates_to_the_caller() {
        let mut pool = WorkerPool::new(2);
        let mut state = vec![0u8; 2];
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_with(
                &mut state,
                |w, _| {
                    if w == 1 {
                        panic!("worker boom");
                    }
                },
                || {},
            );
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must still be usable afterwards (workers acked before
        // the panic was rethrown).
        pool.run_with(&mut state, |w, s| *s = w as u8, || {});
        assert_eq!(state, vec![0, 1]);
    }

    #[test]
    fn drop_joins_all_workers() {
        // Teardown must not hang or leak: create and drop many pools.
        for _ in 0..16 {
            let mut pool = WorkerPool::new(3);
            let mut state = vec![0u8; 3];
            pool.run_with(&mut state, |_, s| *s += 1, || {});
            drop(pool);
        }
    }
}
