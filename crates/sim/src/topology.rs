//! Topology generators.
//!
//! Each generator produces the *radio-range* graph: which pairs of nodes are
//! close enough to communicate if they also share a channel. The paper's
//! experiments need stars (Ω(Δ) lower bound, crowded-channel scenarios),
//! paths/trees (diameter-dependent broadcast), complete d-ary trees (the
//! Ω(D·min{c,Δ}) broadcast lower bound of Theorem 14), and random graphs
//! (realistic multi-hop scenarios).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// A topology description. Call [`Topology::edges`] to materialize it.
#[derive(Debug, Clone, PartialEq)]
pub enum Topology {
    /// A star: node 0 is the hub, nodes `1..=leaves` are leaves.
    Star {
        /// Number of leaves (so `n = leaves + 1`).
        leaves: usize,
    },
    /// A path `0 - 1 - … - (n-1)`. Diameter `n − 1`.
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// A cycle over `n ≥ 3` nodes. Diameter `⌊n/2⌋`.
    Cycle {
        /// Number of nodes.
        n: usize,
    },
    /// A `rows × cols` grid with 4-neighborhoods.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// The complete graph on `n` nodes.
    Complete {
        /// Number of nodes.
        n: usize,
    },
    /// A complete `arity`-ary tree of the given `depth` (depth 0 = only the
    /// root). Node 0 is the root; children are laid out level by level.
    CompleteTree {
        /// Children per internal node (≥ 1).
        arity: usize,
        /// Tree depth (number of edge-levels).
        depth: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    ErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Erdős–Rényi `G(n, p)` sampled by geometric skips: the generator
    /// draws one random number per *edge* (plus one per gap), not one per
    /// pair, so a million-node sparse graph materializes in O(n + m) time.
    /// Same distribution as [`Topology::ErdosRenyi`], but a different RNG
    /// stream for the same seed — use this variant for huge sparse
    /// networks, the quadratic one where byte-exact legacy streams matter.
    SparseErdosRenyi {
        /// Number of nodes.
        n: usize,
        /// Edge probability.
        p: f64,
    },
    /// Random geometric graph: `n` points uniform in the unit square,
    /// connected when within Euclidean distance `radius`.
    RandomGeometric {
        /// Number of nodes.
        n: usize,
        /// Connection radius.
        radius: f64,
    },
    /// "Caterpillar" of `spine` hub nodes in a path, each with `legs`
    /// leaves: combines large diameter with large degree, the worst case for
    /// CGCAST's `D·Δ` dissemination term.
    Caterpillar {
        /// Length of the spine path.
        spine: usize,
        /// Leaves per spine node.
        legs: usize,
    },
    /// Dumbbell: two stars whose hubs (nodes 0 and 1) are joined by a
    /// bridge edge. The bridge connects two degree-`legs + 1` nodes and is
    /// the only route between the halves — the worst case for uncoordinated
    /// (random-meeting) dissemination.
    Dumbbell {
        /// Leaves per hub.
        legs: usize,
    },
}

impl Topology {
    /// Number of nodes this topology will create.
    pub fn num_nodes(&self) -> usize {
        match *self {
            Topology::Star { leaves } => leaves + 1,
            Topology::Path { n } | Topology::Cycle { n } => n,
            Topology::Grid { rows, cols } => rows * cols,
            Topology::Complete { n } => n,
            Topology::CompleteTree { arity, depth } => {
                if arity == 1 {
                    depth + 1
                } else {
                    // (arity^(depth+1) - 1) / (arity - 1)
                    let mut total = 0usize;
                    let mut level = 1usize;
                    for _ in 0..=depth {
                        total += level;
                        level *= arity;
                    }
                    total
                }
            }
            Topology::ErdosRenyi { n, .. } => n,
            Topology::SparseErdosRenyi { n, .. } => n,
            Topology::RandomGeometric { n, .. } => n,
            Topology::Caterpillar { spine, legs } => spine * (legs + 1),
            Topology::Dumbbell { legs } => 2 * (legs + 1),
        }
    }

    /// Materializes the edge list. Randomized topologies consume `rng`;
    /// deterministic ones ignore it.
    ///
    /// # Panics
    /// Panics on degenerate parameters (e.g. a cycle on fewer than 3 nodes).
    pub fn edges(&self, rng: &mut SmallRng) -> Vec<(u32, u32)> {
        match *self {
            Topology::Star { leaves } => (1..=leaves as u32).map(|l| (0, l)).collect(),
            Topology::Path { n } => {
                assert!(n >= 1, "path needs at least one node");
                (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)).collect()
            }
            Topology::Cycle { n } => {
                assert!(n >= 3, "cycle needs at least three nodes");
                let mut e: Vec<(u32, u32)> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
                e.push((n as u32 - 1, 0));
                e
            }
            Topology::Grid { rows, cols } => {
                assert!(rows >= 1 && cols >= 1, "grid needs positive dimensions");
                let mut e = Vec::new();
                let idx = |r: usize, c: usize| (r * cols + c) as u32;
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            e.push((idx(r, c), idx(r, c + 1)));
                        }
                        if r + 1 < rows {
                            e.push((idx(r, c), idx(r + 1, c)));
                        }
                    }
                }
                e
            }
            Topology::Complete { n } => {
                let mut e = Vec::with_capacity(n * (n - 1) / 2);
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        e.push((a, b));
                    }
                }
                e
            }
            Topology::CompleteTree { arity, depth: _ } => {
                assert!(arity >= 1, "tree arity must be at least 1");
                let n = self.num_nodes();
                let mut e = Vec::with_capacity(n.saturating_sub(1));
                // Children of node v are arity*v + 1 ..= arity*v + arity
                // (standard heap layout), valid because levels are complete.
                for v in 0..n {
                    for ch in 1..=arity {
                        let child = arity * v + ch;
                        if child < n {
                            e.push((v as u32, child as u32));
                        }
                    }
                }
                e
            }
            Topology::ErdosRenyi { n, p } => {
                assert!((0.0..=1.0).contains(&p), "probability out of range");
                let mut e = Vec::new();
                // Bulk-draw the per-pair coin words with `fill_u64s`, sizing
                // each refill to the pairs still remaining so exactly one
                // word is consumed per pair — the same stream, decisions,
                // and final RNG state as per-pair `gen_bool` calls, minus
                // n²/2 individual RNG round trips.
                let mut remaining = n * n.saturating_sub(1) / 2;
                let mut buf = [0u64; 512];
                let mut next = buf.len();
                let mut have = buf.len();
                for a in 0..n as u32 {
                    for b in (a + 1)..n as u32 {
                        if next == have {
                            have = buf.len().min(remaining);
                            rng.fill_u64s(&mut buf[..have]);
                            remaining -= have;
                            next = 0;
                        }
                        let word = buf[next];
                        next += 1;
                        if rand::unit_f64(word) < p {
                            e.push((a, b));
                        }
                    }
                }
                e
            }
            Topology::SparseErdosRenyi { n, p } => {
                assert!((0.0..=1.0).contains(&p), "probability out of range");
                if n < 2 || p <= 0.0 {
                    return Vec::new();
                }
                if p >= 1.0 {
                    return Topology::Complete { n }.edges(rng);
                }
                // Geometric skip sampling over the lexicographic pair
                // sequence (0,1), (0,2), …, (n-2, n-1): each draw yields the
                // gap to the next present edge, so the loop runs O(m) times.
                let pairs: u64 = (n as u64) * (n as u64 - 1) / 2;
                let log1p = (1.0 - p).ln();
                let mut e = Vec::new();
                // Cursor over the pair sequence; (a, b) tracks the pair at
                // linear index `i` so advancing is amortized O(1) per edge.
                let mut i: u64 = 0;
                let (mut a, mut b) = (0u64, 1u64);
                let advance = |a: &mut u64, b: &mut u64, mut k: u64| {
                    // Move the (a, b) cursor k positions forward.
                    loop {
                        let row_left = (n as u64) - 1 - *b;
                        if k <= row_left {
                            *b += k;
                            return;
                        }
                        k -= row_left + 1;
                        *a += 1;
                        *b = *a + 1;
                    }
                };
                loop {
                    let u = rand::unit_f64(rng.next_u64());
                    // Gap ~ Geometric(p): number of absent pairs before the
                    // next edge. (1-u) > 0 because u ∈ [0, 1).
                    let gap = ((1.0 - u).ln() / log1p).floor();
                    let gap = if gap >= pairs as f64 { pairs } else { gap as u64 };
                    i = match i.checked_add(gap) {
                        Some(v) => v,
                        None => break,
                    };
                    if i >= pairs {
                        break;
                    }
                    advance(&mut a, &mut b, gap);
                    e.push((a as u32, b as u32));
                    i += 1;
                    if i >= pairs {
                        break;
                    }
                    advance(&mut a, &mut b, 1);
                }
                e
            }
            Topology::RandomGeometric { n, radius } => {
                assert!(radius > 0.0, "radius must be positive");
                if n == 0 {
                    return Vec::new();
                }
                let pts: Vec<(f64, f64)> =
                    (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
                // Bucket the unit square into a grid of side ≥ radius, so
                // every in-range pair sits in adjacent cells and each node
                // only inspects its 3×3 neighborhood — O(n + m) expected
                // instead of the all-pairs O(n²) scan. The output order
                // (per-`a` ascending `b`) is identical to the scan's.
                let cells = {
                    let by_r = if radius >= 1.0 { 1 } else { (1.0 / radius) as usize };
                    let by_n = ((n as f64).sqrt().ceil() as usize).max(1);
                    by_r.clamp(1, by_n)
                };
                let cell_xy = |x: f64, y: f64| {
                    let cx = ((x * cells as f64) as usize).min(cells - 1);
                    let cy = ((y * cells as f64) as usize).min(cells - 1);
                    (cx, cy)
                };
                let nc = cells * cells;
                let mut off = vec![0u32; nc + 1];
                for &(x, y) in &pts {
                    let (cx, cy) = cell_xy(x, y);
                    off[cy * cells + cx + 1] += 1;
                }
                for c in 1..=nc {
                    off[c] += off[c - 1];
                }
                let mut bucket = vec![0u32; n];
                let mut cur = off[..nc].to_vec();
                for (v, &(x, y)) in pts.iter().enumerate() {
                    let (cx, cy) = cell_xy(x, y);
                    let c = cy * cells + cx;
                    bucket[cur[c] as usize] = v as u32;
                    cur[c] += 1;
                }
                let r2 = radius * radius;
                let mut e = Vec::new();
                let mut cand: Vec<u32> = Vec::new();
                for a in 0..n {
                    let (ax, ay) = pts[a];
                    let (cx, cy) = cell_xy(ax, ay);
                    cand.clear();
                    for gy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
                        for gx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                            let c = gy * cells + gx;
                            for &b in &bucket[off[c] as usize..off[c + 1] as usize] {
                                if (b as usize) > a {
                                    let dx = ax - pts[b as usize].0;
                                    let dy = ay - pts[b as usize].1;
                                    if dx * dx + dy * dy <= r2 {
                                        cand.push(b);
                                    }
                                }
                            }
                        }
                    }
                    cand.sort_unstable();
                    e.extend(cand.iter().map(|&b| (a as u32, b)));
                }
                e
            }
            Topology::Dumbbell { legs } => {
                let mut e = vec![(0u32, 1u32)];
                for l in 0..legs as u32 {
                    e.push((0, 2 + l));
                    e.push((1, 2 + legs as u32 + l));
                }
                e
            }
            Topology::Caterpillar { spine, legs } => {
                assert!(spine >= 1, "caterpillar needs a spine");
                let mut e = Vec::new();
                // Spine nodes are 0..spine; leaves follow.
                for s in 0..spine.saturating_sub(1) as u32 {
                    e.push((s, s + 1));
                }
                let mut next = spine as u32;
                for s in 0..spine as u32 {
                    for _ in 0..legs {
                        e.push((s, next));
                        next += 1;
                    }
                }
                e
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::rng::stream_rng;

    fn build(t: &Topology, seed: u64) -> Graph {
        let mut rng = stream_rng(seed, 0);
        Graph::from_edges(t.num_nodes(), &t.edges(&mut rng))
    }

    #[test]
    fn star_shape() {
        let g = build(&Topology::Star { leaves: 5 }, 0);
        assert_eq!(g.len(), 6);
        assert_eq!(g.degree(0), 5);
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.diameter(), Some(2));
    }

    #[test]
    fn path_and_cycle() {
        let p = build(&Topology::Path { n: 6 }, 0);
        assert_eq!(p.diameter(), Some(5));
        assert_eq!(p.num_edges(), 5);
        let c = build(&Topology::Cycle { n: 6 }, 0);
        assert_eq!(c.diameter(), Some(3));
        assert_eq!(c.num_edges(), 6);
        assert_eq!(c.max_degree(), 2);
    }

    #[test]
    fn grid_shape() {
        let g = build(&Topology::Grid { rows: 3, cols: 4 }, 0);
        assert_eq!(g.len(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.diameter(), Some(5));
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn complete_graph() {
        let g = build(&Topology::Complete { n: 5 }, 0);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn complete_tree_counts() {
        let t = Topology::CompleteTree { arity: 3, depth: 2 };
        assert_eq!(t.num_nodes(), 1 + 3 + 9);
        let g = build(&t, 0);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.diameter(), Some(4));
        // Unary tree degenerates to a path.
        let t1 = Topology::CompleteTree { arity: 1, depth: 4 };
        assert_eq!(t1.num_nodes(), 5);
        assert_eq!(build(&t1, 0).diameter(), Some(4));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let g0 = build(&Topology::ErdosRenyi { n: 10, p: 0.0 }, 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = build(&Topology::ErdosRenyi { n: 10, p: 1.0 }, 1);
        assert_eq!(g1.num_edges(), 45);
    }

    #[test]
    fn erdos_renyi_is_seed_deterministic() {
        let t = Topology::ErdosRenyi { n: 20, p: 0.3 };
        let mut r1 = stream_rng(5, 0);
        let mut r2 = stream_rng(5, 0);
        assert_eq!(t.edges(&mut r1), t.edges(&mut r2));
    }

    #[test]
    fn erdos_renyi_bulk_draws_match_per_pair_gen_bool() {
        // The bulk fill must reproduce the per-pair `gen_bool` decisions
        // *and* leave the RNG in the same state (no over-draw) — including
        // when the pair count is not a multiple of the refill buffer.
        for (n, p) in [(20usize, 0.3f64), (40, 0.05), (33, 0.9), (2, 0.5)] {
            let t = Topology::ErdosRenyi { n, p };
            let mut bulk_rng = stream_rng(11, 0);
            let edges = t.edges(&mut bulk_rng);
            let mut ref_rng = stream_rng(11, 0);
            let mut reference = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if ref_rng.gen_bool(p) {
                        reference.push((a, b));
                    }
                }
            }
            assert_eq!(edges, reference, "n={n} p={p}");
            use rand::RngCore;
            assert_eq!(
                bulk_rng.next_u64(),
                ref_rng.next_u64(),
                "n={n} p={p}: RNG states diverge after edge sampling"
            );
        }
    }

    #[test]
    fn sparse_erdos_renyi_extremes_and_determinism() {
        let g0 = build(&Topology::SparseErdosRenyi { n: 10, p: 0.0 }, 1);
        assert_eq!(g0.num_edges(), 0);
        let g1 = build(&Topology::SparseErdosRenyi { n: 10, p: 1.0 }, 1);
        assert_eq!(g1.num_edges(), 45);
        let t = Topology::SparseErdosRenyi { n: 50, p: 0.1 };
        let mut r1 = stream_rng(5, 0);
        let mut r2 = stream_rng(5, 0);
        assert_eq!(t.edges(&mut r1), t.edges(&mut r2));
    }

    #[test]
    fn sparse_erdos_renyi_emits_canonical_valid_pairs() {
        let n = 200usize;
        let t = Topology::SparseErdosRenyi { n, p: 0.05 };
        let mut rng = stream_rng(13, 0);
        let edges = t.edges(&mut rng);
        assert!(!edges.is_empty());
        for win in edges.windows(2) {
            assert!(win[0] < win[1], "lexicographic order, no duplicates");
        }
        for &(a, b) in &edges {
            assert!(a < b && (b as usize) < n, "pair ({a},{b}) out of range");
        }
    }

    #[test]
    fn sparse_erdos_renyi_edge_count_tracks_expectation() {
        // E[m] = p·n(n−1)/2; with p = 8/(n−1) that is 4n. The skip sampler
        // must land in a generous CLT window around it.
        let n = 4000usize;
        let p = 8.0 / (n as f64 - 1.0);
        let mut total = 0usize;
        for s in 0..5u64 {
            let mut rng = stream_rng(100 + s, 0);
            total += Topology::SparseErdosRenyi { n, p }.edges(&mut rng).len();
        }
        let mean = total as f64 / 5.0;
        let expect = 4.0 * n as f64;
        assert!(
            (mean - expect).abs() < 0.1 * expect,
            "mean edge count {mean} too far from expectation {expect}"
        );
    }

    #[test]
    fn random_geometric_grid_matches_all_pairs_scan() {
        // The bucketed generator must produce exactly what the quadratic
        // scan over the same points would: same pairs, same order.
        for (n, radius, seed) in [(60usize, 0.18f64, 3u64), (200, 0.07, 4), (40, 1.5, 5)] {
            let t = Topology::RandomGeometric { n, radius };
            let mut rng = stream_rng(seed, 0);
            let got = t.edges(&mut rng);
            // Re-draw the identical point set and brute-force the edges.
            let mut ref_rng = stream_rng(seed, 0);
            let pts: Vec<(f64, f64)> =
                (0..n).map(|_| (ref_rng.gen::<f64>(), ref_rng.gen::<f64>())).collect();
            let r2 = radius * radius;
            let mut want = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    let dx = pts[a].0 - pts[b].0;
                    let dy = pts[a].1 - pts[b].1;
                    if dx * dx + dy * dy <= r2 {
                        want.push((a as u32, b as u32));
                    }
                }
            }
            assert_eq!(got, want, "n={n} radius={radius} seed={seed}");
        }
    }

    #[test]
    fn random_geometric_radius_monotone() {
        let t_small = Topology::RandomGeometric { n: 30, radius: 0.1 };
        let t_big = Topology::RandomGeometric { n: 30, radius: 0.9 };
        let mut r1 = stream_rng(9, 0);
        let mut r2 = stream_rng(9, 0);
        // Same seed => same points, so edge sets are nested.
        let small = t_small.edges(&mut r1);
        let big = t_big.edges(&mut r2);
        assert!(small.len() <= big.len());
        let bigset: std::collections::HashSet<_> = big.into_iter().collect();
        assert!(small.iter().all(|e| bigset.contains(e)));
    }

    #[test]
    fn caterpillar_shape() {
        let t = Topology::Caterpillar { spine: 4, legs: 3 };
        assert_eq!(t.num_nodes(), 16);
        let g = build(&t, 0);
        // Spine interior nodes: 2 spine neighbors + 3 legs.
        assert_eq!(g.max_degree(), 5);
        assert_eq!(g.num_edges(), 3 + 12);
        // Leaf at one end to leaf at other end: 1 + 3 + 1 hops.
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn dumbbell_shape() {
        let t = Topology::Dumbbell { legs: 4 };
        assert_eq!(t.num_nodes(), 10);
        let g = build(&t, 0);
        assert_eq!(g.degree(0), 5, "hub: bridge + 4 leaves");
        assert_eq!(g.degree(1), 5);
        assert_eq!(g.degree(7), 1, "leaves have degree 1");
        assert_eq!(g.diameter(), Some(3), "leaf-hub-hub-leaf");
        assert_eq!(g.num_edges(), 9);
    }

    #[test]
    fn all_topologies_connected_with_sane_params() {
        let mut rng = stream_rng(77, 0);
        let cases = vec![
            Topology::Star { leaves: 4 },
            Topology::Path { n: 7 },
            Topology::Cycle { n: 7 },
            Topology::Grid { rows: 3, cols: 3 },
            Topology::Complete { n: 6 },
            Topology::CompleteTree { arity: 2, depth: 3 },
            Topology::Caterpillar { spine: 3, legs: 2 },
            Topology::Dumbbell { legs: 3 },
        ];
        for t in cases {
            let g = Graph::from_edges(t.num_nodes(), &t.edges(&mut rng));
            assert!(g.is_connected(), "{t:?} should be connected");
        }
    }
}
