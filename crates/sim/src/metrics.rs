//! Hand-rolled process metrics: counters, gauges, and log-scale
//! histograms behind a cheap registry.
//!
//! The build environment is offline, so there is no `prometheus` or
//! `tracing` crate to lean on — this module owns the three instrument
//! shapes the workspace needs, the same way `crn-server` owns its own
//! HTTP parser and JSON codec. Design constraints, in order:
//!
//! * **Recording must be cheap enough for hot paths.** Every instrument
//!   is a handful of `AtomicU64`s updated with `Ordering::Relaxed` — a
//!   recording site is one `fetch_add`, no locks, no allocation. The
//!   registry's mutex is touched only at registration and scrape time,
//!   never on the recording path.
//! * **Recording must be observationally invisible.** Instruments carry
//!   no interior references into simulation state and expose nothing the
//!   simulation reads back; nothing in this module can influence engine
//!   results. (The engine-level guarantee — phase timers on vs off are
//!   bit-identical — is enforced by `tests/tests/metrics_equiv.rs`.)
//! * **Scrapes are canonical.** [`Registry::snapshot`] returns families
//!   sorted by name, so an exposition renderer (the `/metrics` endpoint
//!   in `crn-server`) emits one deterministic byte sequence per state.
//!
//! Histograms use **fixed log₂-scale buckets**: bucket `i` holds samples
//! with value ≤ 2^i (the last bucket is unbounded). Fixed bounds keep
//! `observe` allocation-free and make bucket counts from different
//! processes mergeable by addition; log scale covers nanosecond timers
//! and minute-long jobs with the same 40 buckets. The invariant "bucket
//! counts sum to the sample count" is property-tested in
//! `tests/tests/metrics_equiv.rs` across arbitrary insert sequences.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, in-flight work).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`, saturating at zero (a decrement racing a `set(0)`
    /// must not wrap to 2^64).
    pub fn sub(&self, n: u64) {
        let mut cur = self.value.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.value.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of bounded histogram buckets. Bucket `i` has upper bound `2^i`,
/// so the bounded range ends at `2^39` (≈ 9.1 minutes in nanoseconds);
/// anything larger lands in the unbounded overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A histogram over `u64` samples with fixed log₂-scale buckets (see the
/// module docs for the bucket layout rationale).
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts; index [`HISTOGRAM_BUCKETS`] is
    /// the unbounded overflow bucket.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS + 1],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index for `v`: the first bucket whose upper bound
    /// (`2^i`) is ≥ `v`, or the overflow bucket.
    fn index(v: u64) -> usize {
        if v <= 1 {
            return 0;
        }
        // ceil(log2(v)) for v ≥ 2; (v - 1) has at least one set bit here.
        (u64::BITS - (v - 1).leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn observe(&self, v: u64) {
        let idx = Histogram::index(v).min(HISTOGRAM_BUCKETS);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded sample values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The upper bound of bucket `i`, or `None` for the overflow bucket.
    pub fn upper_bound(i: usize) -> Option<u64> {
        (i < HISTOGRAM_BUCKETS).then(|| 1u64 << i)
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    ///
    /// Each bucket is loaded independently, so a snapshot taken while
    /// another thread observes may be mid-update; within one thread (or
    /// any quiesced scrape) the counts sum to [`Histogram::count`].
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// A point-in-time copy of one instrument's value, as captured by
/// [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state: per-bucket counts (overflow last), total count,
    /// and sample sum.
    Histogram {
        /// Non-cumulative per-bucket counts, indexed like
        /// [`Histogram::upper_bound`].
        buckets: Vec<u64>,
        /// Total samples.
        count: u64,
        /// Sum of sample values.
        sum: u64,
    },
}

/// One registered instrument in a [`Registry::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricFamily {
    /// Registered metric name (stable, `snake_case`).
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// The instrument's value at snapshot time.
    pub value: MetricValue,
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named set of instruments. Registration is get-or-create (two sites
/// registering the same name share one instrument); recording through the
/// returned [`Arc`] handles never touches the registry again.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        help: &str,
        as_kind: impl Fn(&Instrument) -> Option<&Arc<T>>,
        make: impl FnOnce() -> (Arc<T>, Instrument),
    ) -> Arc<T> {
        debug_assert!(
            !name.is_empty()
                && name.bytes().all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
            "metric names are snake_case: {name:?}"
        );
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return as_kind(&entry.instrument)
                .unwrap_or_else(|| panic!("metric {name:?} re-registered as a different kind"))
                .clone();
        }
        let (handle, instrument) = make();
        entries.push(Entry { name: name.to_string(), help: help.to_string(), instrument });
        handle
    }

    /// The counter named `name`, registering it with `help` on first use.
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.get_or_insert(
            name,
            help,
            |i| match i {
                Instrument::Counter(c) => Some(c),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (c.clone(), Instrument::Counter(c))
            },
        )
    }

    /// The gauge named `name`, registering it with `help` on first use.
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            help,
            |i| match i {
                Instrument::Gauge(g) => Some(g),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (g.clone(), Instrument::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, registering it with `help` on first
    /// use. Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            help,
            |i| match i {
                Instrument::Histogram(h) => Some(h),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (h.clone(), Instrument::Histogram(h))
            },
        )
    }

    /// A point-in-time copy of every registered instrument, sorted by
    /// name — the canonical scrape order exposition renderers rely on.
    pub fn snapshot(&self) -> Vec<MetricFamily> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<MetricFamily> = entries
            .iter()
            .map(|e| MetricFamily {
                name: e.name.clone(),
                help: e.help.clone(),
                value: match &e.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                },
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(7);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 5);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates");
    }

    #[test]
    fn histogram_bucket_bounds_are_log2_and_inclusive() {
        // Boundary samples land in the bucket whose bound equals them.
        for (v, want) in [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1 << 20, 20)] {
            assert_eq!(Histogram::index(v), want, "index({v})");
        }
        let h = Histogram::new();
        h.observe(1);
        h.observe(2);
        h.observe(u64::MAX); // overflow bucket
        assert_eq!(h.count(), 3);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[HISTOGRAM_BUCKETS], 1);
        assert_eq!(counts.iter().sum::<u64>(), h.count());
    }

    #[test]
    fn registry_is_get_or_create_and_snapshot_is_sorted() {
        let r = Registry::new();
        let a = r.counter("zz_last", "last");
        let b = r.counter("zz_last", "last");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same name shares one instrument");
        r.gauge("aa_first", "first").set(9);
        r.histogram("mm_mid", "mid").observe(3);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["aa_first", "mm_mid", "zz_last"]);
        assert_eq!(snap[0].value, MetricValue::Gauge(9));
        assert_eq!(snap[2].value, MetricValue::Counter(2));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("dual", "as counter");
        r.gauge("dual", "as gauge");
    }
}
