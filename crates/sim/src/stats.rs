//! Small statistics toolkit for experiment aggregation: summary statistics
//! and least-squares fits (including log–log slope estimation, which is how
//! the experiment harness checks asymptotic *shape* against the paper's
//! bounds).

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n ≤ 1).
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// 90th percentile (linear interpolation).
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "cannot summarize an empty sample");
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            max: sorted[count - 1],
        }
    }

    /// Convenience constructor from integer samples.
    pub fn of_u64(samples: &[u64]) -> Summary {
        let f: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&f)
    }
}

/// Linearly-interpolated percentile of an already-sorted sample.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} outside [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Result of an ordinary least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R².
    pub r2: f64,
}

/// Ordinary least-squares fit of `ys` against `xs`.
///
/// # Panics
/// Panics if the slices differ in length or have fewer than two points.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - (slope * x + intercept)).powi(2)).sum();
    let r2 = if ss_tot == 0.0 { 1.0 } else { 1.0 - ss_res / ss_tot };
    LinearFit { slope, intercept, r2 }
}

/// Fits `log2(y) ≈ slope·log2(x) + b`, i.e. estimates the polynomial degree
/// relating `y` to `x`. This is the main tool for validating claims like
/// "CSEEK scales as c²" (expected slope ≈ 2).
///
/// # Panics
/// Panics if any sample is non-positive, if the slices differ in length, or
/// if fewer than two points are supplied.
pub fn fit_loglog(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "log-log fit requires strictly positive samples"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.log2()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.log2()).collect();
    fit_linear(&lx, &ly)
}

/// Approximate 95% confidence half-width of the sample mean (normal
/// approximation, `1.96·s/√n`; returns 0 for n ≤ 1). Good enough for the
/// trial counts used here; quoted alongside means in experiment tables.
pub fn mean_ci95(samples: &[f64]) -> f64 {
    if samples.len() <= 1 {
        return 0.0;
    }
    let s = Summary::of(samples);
    1.96 * s.std_dev / (samples.len() as f64).sqrt()
}

/// Fraction of samples for which `pred` holds. Convenient for "X% of trials
/// within [m, 4m]"-style checks.
pub fn fraction_where<T>(samples: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| pred(s)).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p90, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert!((percentile_sorted(&sorted, 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 90.0) - 9.0).abs() < 1e-12);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let fit = fit_linear(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loglog_recovers_quadratic_degree() {
        let xs: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x * x).collect();
        let fit = fit_loglog(&xs, &ys);
        assert!((fit.slope - 2.0).abs() < 1e-9, "slope {}", fit.slope);
    }

    #[test]
    fn loglog_recovers_inverse_degree() {
        let xs: Vec<f64> = (1..=6).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 100.0 / x).collect();
        let fit = fit_loglog(&xs, &ys);
        assert!((fit.slope + 1.0).abs() < 1e-9, "slope {}", fit.slope);
    }

    #[test]
    fn ci_is_zero_for_singletons_and_positive_otherwise() {
        assert_eq!(mean_ci95(&[1.0]), 0.0);
        assert_eq!(mean_ci95(&[]), 0.0);
        let ci = mean_ci95(&[1.0, 2.0, 3.0, 4.0]);
        assert!(ci > 0.0);
        // Hand-check: std = 1.29, n = 4 -> 1.96*1.29/2 = 1.27.
        assert!((ci - 1.2657).abs() < 1e-3, "{ci}");
    }

    #[test]
    fn fraction_where_counts() {
        let v = [1, 2, 3, 4, 5];
        assert!((fraction_where(&v, |&x| x > 2) - 0.6).abs() < 1e-12);
        assert_eq!(fraction_where::<u32>(&[], |_| true), 0.0);
    }

    #[test]
    fn constant_ys_have_r2_one() {
        let fit = fit_linear(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(fit.slope, 0.0);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }
}
