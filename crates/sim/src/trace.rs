//! Execution tracing: wrap any protocol in a [`Recorded`] shim to capture
//! its per-slot behaviour (action kind, channel, outcome) for debugging,
//! visualization and spectrum-utilization analysis.
//!
//! With primary-user spectrum dynamics installed
//! ([`Engine::set_spectrum`](crate::engine::Engine::set_spectrum)), a
//! recorded trace can additionally be classified against the PU busy
//! history: [`sensing_counts`] splits a node's listening and broadcasting
//! slots into PU-blocked and PU-free ones — the per-node sensing view the
//! spectrum-utilization experiments aggregate.

use crate::ids::{GlobalChannel, LocalChannel};
use crate::protocol::{Action, Feedback, Protocol, SlotCtx};

/// What a node did in one slot (channel-level view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotEvent {
    /// Broadcast on the channel.
    Broadcast(LocalChannel),
    /// Listened and heard a message.
    Received(LocalChannel),
    /// Listened and heard silence (no or colliding transmitters).
    Silent(LocalChannel),
    /// Radio off.
    Idle,
}

impl SlotEvent {
    /// The channel touched this slot, if any.
    pub fn channel(&self) -> Option<LocalChannel> {
        match *self {
            SlotEvent::Broadcast(c) | SlotEvent::Received(c) | SlotEvent::Silent(c) => Some(c),
            SlotEvent::Idle => None,
        }
    }
}

/// A protocol wrapper that records one [`SlotEvent`] per slot.
///
/// # Examples
/// ```
/// use crn_sim::trace::Recorded;
/// use crn_sim::*;
///
/// struct Beacon;
/// impl Protocol for Beacon {
///     type Message = u8;
///     type Output = ();
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
///         Action::Broadcast { channel: LocalChannel(0), message: 1 }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u8>) {}
///     fn is_complete(&self) -> bool { false }
///     fn into_output(self) {}
/// }
///
/// let mut b = Network::builder(1);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
/// let net = b.build()?;
/// let mut eng = Engine::new(&net, 0, |_| Recorded::new(Beacon));
/// eng.run_to_completion(3);
/// let (_, trace) = eng.into_outputs().remove(0);
/// assert_eq!(trace.len(), 3);
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Recorded<P: Protocol> {
    inner: P,
    log: Vec<SlotEvent>,
    pending_channel: Option<LocalChannel>,
    pending_bcast: bool,
}

impl<P: Protocol> Recorded<P> {
    /// Wraps `inner`, recording its behaviour.
    pub fn new(inner: P) -> Recorded<P> {
        Recorded { inner, log: Vec::new(), pending_channel: None, pending_bcast: false }
    }

    /// The trace so far.
    pub fn log(&self) -> &[SlotEvent] {
        &self.log
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> Protocol for Recorded<P> {
    type Message = P::Message;
    type Output = (P::Output, Vec<SlotEvent>);

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<P::Message> {
        let action = self.inner.act(ctx);
        self.pending_channel = action.channel();
        self.pending_bcast = action.is_broadcast();
        action
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, P::Message>) {
        let event = match (self.pending_channel, self.pending_bcast, &fb) {
            (Some(ch), true, _) => SlotEvent::Broadcast(ch),
            (Some(ch), false, Feedback::Heard(_)) => SlotEvent::Received(ch),
            (Some(ch), false, _) => SlotEvent::Silent(ch),
            (None, _, _) => SlotEvent::Idle,
        };
        self.log.push(event);
        self.inner.feedback(ctx, fb);
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn into_output(self) -> (P::Output, Vec<SlotEvent>) {
        (self.inner.into_output(), self.log)
    }
}

/// Per-channel utilization summary computed from a set of traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelUsage {
    /// `broadcasts[l]` = broadcast slots observed on local channel `l`.
    pub broadcasts: Vec<u64>,
    /// `receptions[l]` = successful receive slots on local channel `l`.
    pub receptions: Vec<u64>,
    /// `silent[l]` = listening slots that heard nothing on channel `l`.
    pub silent: Vec<u64>,
    /// Total idle slots across all traces.
    pub idle: u64,
}

impl ChannelUsage {
    /// Aggregates traces (local labels are per-node, so this is meaningful
    /// per node, or across nodes when labels are known to align).
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a [SlotEvent]>, c: usize) -> Self {
        let mut usage = ChannelUsage {
            broadcasts: vec![0; c],
            receptions: vec![0; c],
            silent: vec![0; c],
            idle: 0,
        };
        for trace in traces {
            for ev in trace {
                match *ev {
                    SlotEvent::Broadcast(l) => usage.broadcasts[l.index()] += 1,
                    SlotEvent::Received(l) => usage.receptions[l.index()] += 1,
                    SlotEvent::Silent(l) => usage.silent[l.index()] += 1,
                    SlotEvent::Idle => usage.idle += 1,
                }
            }
        }
        usage
    }

    /// Fraction of listening slots that resulted in a reception, per
    /// channel (NaN-free: channels never listened on report 0).
    pub fn goodput(&self) -> Vec<f64> {
        self.receptions
            .iter()
            .zip(&self.silent)
            .map(|(&r, &s)| {
                let total = r + s;
                if total == 0 {
                    0.0
                } else {
                    r as f64 / total as f64
                }
            })
            .collect()
    }
}

/// A node's sensing summary: its recorded slots classified against the
/// primary-user busy history. Produced by [`sensing_counts`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SensingCounts {
    /// Broadcast slots on a PU-free channel (the transmission was live).
    pub broadcasts: u64,
    /// Broadcast slots into a PU-busy channel (lost; the node cannot tell).
    pub blocked_broadcasts: u64,
    /// Listening slots that delivered a message (always PU-free).
    pub receptions: u64,
    /// Silent listening slots on a PU-**busy** channel: the node sensed
    /// primary-user occupancy (as noise).
    pub busy_listens: u64,
    /// Silent listening slots on a PU-free channel: genuine idle spectrum
    /// or a secondary-user collision.
    pub idle_listens: u64,
    /// Slots with the radio off.
    pub off: u64,
}

impl SensingCounts {
    /// Fraction of listening slots spent on PU-occupied spectrum — the
    /// node's observed spectrum pressure.
    pub fn busy_fraction(&self) -> f64 {
        let listens = self.receptions + self.busy_listens + self.idle_listens;
        if listens == 0 {
            0.0
        } else {
            self.busy_listens as f64 / listens as f64
        }
    }
}

/// Classifies one node's [`Recorded`] trace against the PU busy history:
/// `channel_map` is the node's local-label → global-channel map (i.e.
/// [`Network::channel_map`](crate::network::Network::channel_map)), and
/// `was_busy(slot, channel)` answers whether the channel was PU-busy in
/// the slot — typically
/// [`SpectrumState::was_busy`](crate::spectrum::SpectrumState::was_busy)
/// with history recording on. The trace is assumed to start at slot 0
/// (which is how the engine drives `Recorded`: one event per slot from the
/// first).
pub fn sensing_counts(
    trace: &[SlotEvent],
    channel_map: &[GlobalChannel],
    mut was_busy: impl FnMut(u64, GlobalChannel) -> bool,
) -> SensingCounts {
    let mut counts = SensingCounts::default();
    for (slot, ev) in trace.iter().enumerate() {
        let busy = ev.channel().is_some_and(|l| was_busy(slot as u64, channel_map[l.index()]));
        match (*ev, busy) {
            (SlotEvent::Broadcast(_), false) => counts.broadcasts += 1,
            (SlotEvent::Broadcast(_), true) => counts.blocked_broadcasts += 1,
            (SlotEvent::Received(_), _) => counts.receptions += 1,
            (SlotEvent::Silent(_), true) => counts.busy_listens += 1,
            (SlotEvent::Silent(_), false) => counts.idle_listens += 1,
            (SlotEvent::Idle, _) => counts.off += 1,
        }
    }
    counts
}

/// Renders a compact ASCII timeline of a trace (one char per slot:
/// `B` broadcast, `R` received, `.` silent listen, space idle), chunked
/// into lines of `width`.
pub fn render_timeline(trace: &[SlotEvent], width: usize) -> String {
    let mut out = String::new();
    for chunk in trace.chunks(width.max(1)) {
        for ev in chunk {
            out.push(match ev {
                SlotEvent::Broadcast(_) => 'B',
                SlotEvent::Received(_) => 'R',
                SlotEvent::Silent(_) => '.',
                SlotEvent::Idle => ' ',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalChannel, NodeId};
    use crate::network::Network;
    use crate::Engine;

    struct PingPong {
        tx: bool,
        slots: u64,
        t: u64,
    }

    impl Protocol for PingPong {
        type Message = u8;
        type Output = u64;
        fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
            let ch = LocalChannel(0);
            if self.tx {
                Action::Broadcast { channel: ch, message: 1 }
            } else if self.t.is_multiple_of(2) {
                Action::Listen { channel: ch }
            } else {
                Action::Sleep
            }
        }
        fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u8>) {
            self.t += 1;
        }
        fn is_complete(&self) -> bool {
            self.t >= self.slots
        }
        fn into_output(self) -> u64 {
            self.t
        }
    }

    fn pair() -> Network {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.build().unwrap()
    }

    #[test]
    fn records_one_event_per_slot() {
        let net = pair();
        let mut eng = Engine::new(&net, 0, |ctx| {
            Recorded::new(PingPong { tx: ctx.id == NodeId(0), slots: 6, t: 0 })
        });
        eng.run_to_completion(6);
        let outs = eng.into_outputs();
        let (_, tx_trace) = &outs[0];
        let (_, rx_trace) = &outs[1];
        assert_eq!(tx_trace.len(), 6);
        assert!(tx_trace.iter().all(|e| matches!(e, SlotEvent::Broadcast(_))));
        // The listener alternates listen/idle; listens all receive.
        assert_eq!(rx_trace.len(), 6);
        assert_eq!(rx_trace.iter().filter(|e| matches!(e, SlotEvent::Received(_))).count(), 3);
        assert_eq!(rx_trace.iter().filter(|e| matches!(e, SlotEvent::Idle)).count(), 3);
    }

    #[test]
    fn usage_aggregation_and_goodput() {
        let trace = vec![
            SlotEvent::Broadcast(LocalChannel(0)),
            SlotEvent::Received(LocalChannel(1)),
            SlotEvent::Silent(LocalChannel(1)),
            SlotEvent::Idle,
        ];
        let usage = ChannelUsage::from_traces([trace.as_slice()], 2);
        assert_eq!(usage.broadcasts, vec![1, 0]);
        assert_eq!(usage.receptions, vec![0, 1]);
        assert_eq!(usage.silent, vec![0, 1]);
        assert_eq!(usage.idle, 1);
        let gp = usage.goodput();
        assert_eq!(gp[0], 0.0);
        assert!((gp[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sensing_counts_classify_against_pu_history() {
        use crate::spectrum::SpectrumDynamics;

        // Node 0 broadcasts every slot, node 1 listens every slot, on the
        // one shared channel; the PU occupies it every third slot
        // (periodic trace of period 3). 9 slots → busy in slots 0, 3, 6.
        let net = pair();
        struct Always {
            tx: bool,
        }
        impl Protocol for Always {
            type Message = u8;
            type Output = ();
            fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
                if self.tx {
                    Action::Broadcast { channel: LocalChannel(0), message: 1 }
                } else {
                    Action::Listen { channel: LocalChannel(0) }
                }
            }
            fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u8>) {}
            fn is_complete(&self) -> bool {
                false
            }
            fn into_output(self) {}
        }
        let mut eng = Engine::new(&net, 4, |ctx| Recorded::new(Always { tx: ctx.id == NodeId(0) }));
        eng.set_spectrum(SpectrumDynamics::TraceReplay(vec![
            vec![GlobalChannel(0)],
            vec![],
            vec![],
        ]));
        eng.run_to_completion(9);
        let sp = eng.spectrum().expect("dynamics installed").clone();
        let outs = eng.into_outputs();

        let map = net.channel_map(NodeId(0)).to_vec();
        let busy = |slot: u64, g: GlobalChannel| sp.was_busy(slot, g).unwrap_or(false);
        let tx = sensing_counts(&outs[0].1, &map, busy);
        assert_eq!(tx.broadcasts, 6);
        assert_eq!(tx.blocked_broadcasts, 3);
        let rx = sensing_counts(&outs[1].1, &map, busy);
        assert_eq!(rx.receptions, 6, "PU-free slots deliver");
        assert_eq!(rx.busy_listens, 3, "PU-busy slots sensed as noise");
        assert_eq!(rx.idle_listens, 0);
        assert!((rx.busy_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn timeline_rendering() {
        let trace = vec![
            SlotEvent::Broadcast(LocalChannel(0)),
            SlotEvent::Received(LocalChannel(0)),
            SlotEvent::Silent(LocalChannel(0)),
            SlotEvent::Idle,
        ];
        let s = render_timeline(&trace, 2);
        assert_eq!(s, "BR\n. \n");
    }
}
