//! Execution tracing: wrap any protocol in a [`Recorded`] shim to capture
//! its per-slot behaviour (action kind, channel, outcome) for debugging,
//! visualization and spectrum-utilization analysis.

use crate::ids::LocalChannel;
use crate::protocol::{Action, Feedback, Protocol, SlotCtx};

/// What a node did in one slot (channel-level view).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotEvent {
    /// Broadcast on the channel.
    Broadcast(LocalChannel),
    /// Listened and heard a message.
    Received(LocalChannel),
    /// Listened and heard silence (no or colliding transmitters).
    Silent(LocalChannel),
    /// Radio off.
    Idle,
}

impl SlotEvent {
    /// The channel touched this slot, if any.
    pub fn channel(&self) -> Option<LocalChannel> {
        match *self {
            SlotEvent::Broadcast(c) | SlotEvent::Received(c) | SlotEvent::Silent(c) => Some(c),
            SlotEvent::Idle => None,
        }
    }
}

/// A protocol wrapper that records one [`SlotEvent`] per slot.
///
/// # Examples
/// ```
/// use crn_sim::trace::Recorded;
/// use crn_sim::*;
///
/// struct Beacon;
/// impl Protocol for Beacon {
///     type Message = u8;
///     type Output = ();
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
///         Action::Broadcast { channel: LocalChannel(0), message: 1 }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u8>) {}
///     fn is_complete(&self) -> bool { false }
///     fn into_output(self) {}
/// }
///
/// let mut b = Network::builder(1);
/// b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
/// let net = b.build()?;
/// let mut eng = Engine::new(&net, 0, |_| Recorded::new(Beacon));
/// eng.run_to_completion(3);
/// let (_, trace) = eng.into_outputs().remove(0);
/// assert_eq!(trace.len(), 3);
/// # Ok::<(), crn_sim::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Recorded<P: Protocol> {
    inner: P,
    log: Vec<SlotEvent>,
    pending_channel: Option<LocalChannel>,
    pending_bcast: bool,
}

impl<P: Protocol> Recorded<P> {
    /// Wraps `inner`, recording its behaviour.
    pub fn new(inner: P) -> Recorded<P> {
        Recorded { inner, log: Vec::new(), pending_channel: None, pending_bcast: false }
    }

    /// The trace so far.
    pub fn log(&self) -> &[SlotEvent] {
        &self.log
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Protocol> Protocol for Recorded<P> {
    type Message = P::Message;
    type Output = (P::Output, Vec<SlotEvent>);

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<P::Message> {
        let action = self.inner.act(ctx);
        self.pending_channel = action.channel();
        self.pending_bcast = action.is_broadcast();
        action
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, P::Message>) {
        let event = match (self.pending_channel, self.pending_bcast, &fb) {
            (Some(ch), true, _) => SlotEvent::Broadcast(ch),
            (Some(ch), false, Feedback::Heard(_)) => SlotEvent::Received(ch),
            (Some(ch), false, _) => SlotEvent::Silent(ch),
            (None, _, _) => SlotEvent::Idle,
        };
        self.log.push(event);
        self.inner.feedback(ctx, fb);
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn into_output(self) -> (P::Output, Vec<SlotEvent>) {
        (self.inner.into_output(), self.log)
    }
}

/// Per-channel utilization summary computed from a set of traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelUsage {
    /// `broadcasts[l]` = broadcast slots observed on local channel `l`.
    pub broadcasts: Vec<u64>,
    /// `receptions[l]` = successful receive slots on local channel `l`.
    pub receptions: Vec<u64>,
    /// `silent[l]` = listening slots that heard nothing on channel `l`.
    pub silent: Vec<u64>,
    /// Total idle slots across all traces.
    pub idle: u64,
}

impl ChannelUsage {
    /// Aggregates traces (local labels are per-node, so this is meaningful
    /// per node, or across nodes when labels are known to align).
    pub fn from_traces<'a>(traces: impl IntoIterator<Item = &'a [SlotEvent]>, c: usize) -> Self {
        let mut usage = ChannelUsage {
            broadcasts: vec![0; c],
            receptions: vec![0; c],
            silent: vec![0; c],
            idle: 0,
        };
        for trace in traces {
            for ev in trace {
                match *ev {
                    SlotEvent::Broadcast(l) => usage.broadcasts[l.index()] += 1,
                    SlotEvent::Received(l) => usage.receptions[l.index()] += 1,
                    SlotEvent::Silent(l) => usage.silent[l.index()] += 1,
                    SlotEvent::Idle => usage.idle += 1,
                }
            }
        }
        usage
    }

    /// Fraction of listening slots that resulted in a reception, per
    /// channel (NaN-free: channels never listened on report 0).
    pub fn goodput(&self) -> Vec<f64> {
        self.receptions
            .iter()
            .zip(&self.silent)
            .map(|(&r, &s)| {
                let total = r + s;
                if total == 0 {
                    0.0
                } else {
                    r as f64 / total as f64
                }
            })
            .collect()
    }
}

/// Renders a compact ASCII timeline of a trace (one char per slot:
/// `B` broadcast, `R` received, `.` silent listen, space idle), chunked
/// into lines of `width`.
pub fn render_timeline(trace: &[SlotEvent], width: usize) -> String {
    let mut out = String::new();
    for chunk in trace.chunks(width.max(1)) {
        for ev in chunk {
            out.push(match ev {
                SlotEvent::Broadcast(_) => 'B',
                SlotEvent::Received(_) => 'R',
                SlotEvent::Silent(_) => '.',
                SlotEvent::Idle => ' ',
            });
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{GlobalChannel, NodeId};
    use crate::network::Network;
    use crate::Engine;

    struct PingPong {
        tx: bool,
        slots: u64,
        t: u64,
    }

    impl Protocol for PingPong {
        type Message = u8;
        type Output = u64;
        fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u8> {
            let ch = LocalChannel(0);
            if self.tx {
                Action::Broadcast { channel: ch, message: 1 }
            } else if self.t.is_multiple_of(2) {
                Action::Listen { channel: ch }
            } else {
                Action::Sleep
            }
        }
        fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u8>) {
            self.t += 1;
        }
        fn is_complete(&self) -> bool {
            self.t >= self.slots
        }
        fn into_output(self) -> u64 {
            self.t
        }
    }

    fn pair() -> Network {
        let mut b = Network::builder(2);
        b.set_channels(NodeId(0), vec![GlobalChannel(0)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.build().unwrap()
    }

    #[test]
    fn records_one_event_per_slot() {
        let net = pair();
        let mut eng = Engine::new(&net, 0, |ctx| {
            Recorded::new(PingPong { tx: ctx.id == NodeId(0), slots: 6, t: 0 })
        });
        eng.run_to_completion(6);
        let outs = eng.into_outputs();
        let (_, tx_trace) = &outs[0];
        let (_, rx_trace) = &outs[1];
        assert_eq!(tx_trace.len(), 6);
        assert!(tx_trace.iter().all(|e| matches!(e, SlotEvent::Broadcast(_))));
        // The listener alternates listen/idle; listens all receive.
        assert_eq!(rx_trace.len(), 6);
        assert_eq!(rx_trace.iter().filter(|e| matches!(e, SlotEvent::Received(_))).count(), 3);
        assert_eq!(rx_trace.iter().filter(|e| matches!(e, SlotEvent::Idle)).count(), 3);
    }

    #[test]
    fn usage_aggregation_and_goodput() {
        let trace = vec![
            SlotEvent::Broadcast(LocalChannel(0)),
            SlotEvent::Received(LocalChannel(1)),
            SlotEvent::Silent(LocalChannel(1)),
            SlotEvent::Idle,
        ];
        let usage = ChannelUsage::from_traces([trace.as_slice()], 2);
        assert_eq!(usage.broadcasts, vec![1, 0]);
        assert_eq!(usage.receptions, vec![0, 1]);
        assert_eq!(usage.silent, vec![0, 1]);
        assert_eq!(usage.idle, 1);
        let gp = usage.goodput();
        assert_eq!(gp[0], 0.0);
        assert!((gp[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn timeline_rendering() {
        let trace = vec![
            SlotEvent::Broadcast(LocalChannel(0)),
            SlotEvent::Received(LocalChannel(0)),
            SlotEvent::Silent(LocalChannel(0)),
            SlotEvent::Idle,
        ];
        let s = render_timeline(&trace, 2);
        assert_eq!(s, "BR\n. \n");
    }
}
