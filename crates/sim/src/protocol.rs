//! The protocol interface: how per-node algorithms plug into the engine.
//!
//! A [`Protocol`] is the state machine one node runs. In every slot the
//! engine asks each node for an [`Action`] (broadcast on a local channel,
//! listen on a local channel, or sleep), resolves collisions globally, and
//! then hands each node a [`Feedback`] describing what that node observed.
//!
//! The model (paper §3) is faithfully encoded in the feedback rules:
//!
//! * a broadcaster only learns that it sent (it "receives" only its own
//!   message in that slot);
//! * a listener hears a message iff **exactly one** of its *neighbors*
//!   broadcast on the same (global) channel in that slot;
//! * zero broadcasters and ≥ 2 broadcasters are indistinguishable: both are
//!   [`Feedback::Silence`] (no collision detection).
//!
//! For schedule-driven protocols the engine also offers a *batched* act
//! path: [`Protocol::act_batch`] receives a contiguous slice of protocol
//! instances plus a [`BatchCtx`] holding their private RNG streams, and the
//! default implementation simply delegates to scalar [`Protocol::act`] per
//! node — so every implementation keeps working, and the ones that opt in
//! can amortize RNG state traffic through pre-filled word buffers
//! ([`BatchCtx::buffered`], backed by the stream-identical
//! [`rand::RngCore::fill_u64s`]). Whatever the path, the per-node draw
//! sequence must be identical: the engine's differential tests compare the
//! batched and scalar paths bit for bit.

use crate::ids::{LocalChannel, NodeId, Slot};
use rand::rngs::SmallRng;
use rand::{BufferedRng, RngCore};

/// Packed per-node slot outcomes, as produced by the engine's resolution
/// phase and consumed by feedback delivery ([`FeedbackBatch`]).
///
/// One `u32` per node per slot. Values below [`outcome::MIN_SENTINEL`] are
/// the *external id* of the unique neighbor whose broadcast the node
/// received (an index into the slot's action buffer); the topmost values
/// are sentinels for the non-delivery outcomes. The packing keeps the
/// per-node state at 4 bytes so the resolution sweep and the delivery
/// sweep both run over one dense `u32` array.
pub mod outcome {
    /// The node broadcast this slot.
    pub const SENT: u32 = u32::MAX;
    /// The node slept this slot.
    pub const SLEPT: u32 = u32::MAX - 1;
    /// The node listened and no neighbor broadcast on its channel.
    pub const IDLE: u32 = u32::MAX - 2;
    /// The node listened and ≥ 2 neighbors broadcast on its channel.
    pub const COLLISION: u32 = u32::MAX - 3;
    /// The node listened on a channel occupied by primary-user traffic.
    pub const PU_BUSY: u32 = u32::MAX - 4;
    /// Smallest sentinel value: every outcome `< MIN_SENTINEL` is a
    /// broadcaster id, i.e. an actual delivery.
    pub const MIN_SENTINEL: u32 = PU_BUSY;
}

/// What a node decides to do in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Tune to local channel `channel` and transmit `message`.
    Broadcast {
        /// The node-local channel label to transmit on.
        channel: LocalChannel,
        /// The message payload.
        message: M,
    },
    /// Tune to local channel `channel` and listen.
    Listen {
        /// The node-local channel label to listen on.
        channel: LocalChannel,
    },
    /// Stay idle this slot (radio off).
    Sleep,
}

impl<M> Action<M> {
    /// The channel this action tunes to, if any.
    pub fn channel(&self) -> Option<LocalChannel> {
        match self {
            Action::Broadcast { channel, .. } | Action::Listen { channel } => Some(*channel),
            Action::Sleep => None,
        }
    }

    /// `true` if this action transmits.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Action::Broadcast { .. })
    }
}

/// What a node observed at the end of one slot.
///
/// A received message is handed out *by reference* into the broadcaster's
/// still-live action buffer: the engine never clones payloads. A protocol
/// that wants to keep a message beyond the `feedback` call clones it there —
/// a single clone per actual delivery, paid only by the consumer that needs
/// ownership (many don't: they extract a `Copy` field and drop the rest).
#[derive(Debug, PartialEq, Eq)]
pub enum Feedback<'a, M> {
    /// The node broadcast; it learns nothing else this slot.
    Sent,
    /// The node listened and exactly one neighbor broadcast on its channel.
    Heard(&'a M),
    /// The node listened and heard nothing — either no neighbor broadcast on
    /// the channel or at least two did (collision). The two cases are
    /// indistinguishable in this model.
    Silence,
    /// The node slept.
    Slept,
}

// Manual impls: `Feedback` is always `Copy` (it carries at most a shared
// reference), with no `M: Clone`/`M: Copy` bound as a derive would add.
impl<M> Clone for Feedback<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Feedback<'_, M> {}

impl<'a, M> Feedback<'a, M> {
    /// Returns the received message, if any.
    pub fn heard(self) -> Option<&'a M> {
        match self {
            Feedback::Heard(m) => Some(m),
            _ => None,
        }
    }
}

/// Per-slot context handed to protocols, carrying the global slot clock and
/// the node's private randomness stream.
///
/// The slot index is global knowledge (the model is synchronous with
/// simultaneous start), and each node can "independently generate random
/// bits" (paper §3) — hence one independent RNG per node.
///
/// Generic over the random source so a protocol's slot-planning code can be
/// written once and driven either by the node's raw [`SmallRng`] (the
/// scalar [`Protocol::act`] path — the default type parameter keeps that
/// signature unchanged) or by a [`BufferedRng`] façade over it (the batched
/// [`Protocol::act_batch`] path). Both produce the identical draw stream.
pub struct SlotCtx<'a, R: RngCore = SmallRng> {
    /// The current slot (identical at all nodes).
    pub slot: Slot,
    /// The node's private random stream for this execution.
    pub rng: &'a mut R,
}

/// Batch context for [`Protocol::act_batch`]: the slot clock plus the
/// private RNG streams of every node in the batch (index-aligned with the
/// protocol slice).
///
/// Constructed by the engine, which hands each phase-1 chunk — the whole
/// node range on the sequential path, a contiguous sub-range per worker on
/// the pooled path — its own `BatchCtx`.
pub struct BatchCtx<'a> {
    slot: Slot,
    rngs: &'a mut [SmallRng],
}

impl<'a> BatchCtx<'a> {
    /// Builds a batch context over `rngs` (one stream per node in the
    /// batch, in batch order).
    pub fn new(slot: Slot, rngs: &'a mut [SmallRng]) -> BatchCtx<'a> {
        BatchCtx { slot, rngs }
    }

    /// The current slot (identical at all nodes).
    pub fn slot(&self) -> Slot {
        self.slot
    }

    /// Number of nodes in the batch.
    pub fn len(&self) -> usize {
        self.rngs.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rngs.is_empty()
    }

    /// The raw RNG stream of node `i` of the batch.
    pub fn rng(&mut self, i: usize) -> &mut SmallRng {
        &mut self.rngs[i]
    }

    /// A scalar [`SlotCtx`] for node `i` — the escape hatch the default
    /// [`Protocol::act_batch`] uses to delegate to [`Protocol::act`].
    pub fn slot_ctx(&mut self, i: usize) -> SlotCtx<'_> {
        SlotCtx { slot: self.slot, rng: &mut self.rngs[i] }
    }

    /// A buffered view of node `i`'s stream with `reserve` words pre-drawn
    /// in one bulk [`rand::RngCore::fill_u64s`] call (capped at the
    /// façade's inline capacity). `reserve` must be a *lower bound* on the
    /// words the caller will actually draw (draws past the prefill fall
    /// through to the raw stream); the resulting draw sequence is
    /// bit-identical to using [`BatchCtx::rng`] directly.
    pub fn buffered(&mut self, i: usize, reserve: usize) -> BufferedRng<'_, SmallRng> {
        BufferedRng::with_reserve(&mut self.rngs[i], reserve)
    }
}

/// The slot's resolved outcomes for a contiguous batch of nodes, handed to
/// [`Protocol::feedback_batch`] — the delivery-side mirror of [`BatchCtx`].
///
/// Wraps the engine's packed `u32` [`outcome`] array (index-aligned with
/// the protocol batch) and the *full* slot action buffer, so a delivery
/// outcome decodes to [`Feedback::Heard`] borrowing the broadcaster's
/// message in place — zero clones, same as the scalar path. The outcome
/// slice covers only this batch's node range; broadcaster ids inside it
/// index the whole action buffer, which is why the two slices have
/// different extents.
pub struct FeedbackBatch<'a, M> {
    outcomes: &'a [u32],
    actions: &'a [Action<M>],
}

impl<'a, M> FeedbackBatch<'a, M> {
    /// Builds a feedback batch over this batch's `outcomes` range and the
    /// slot's full `actions` buffer.
    pub fn new(outcomes: &'a [u32], actions: &'a [Action<M>]) -> FeedbackBatch<'a, M> {
        FeedbackBatch { outcomes, actions }
    }

    /// Number of nodes in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// The raw packed outcome of node `i` of the batch (see [`outcome`]).
    pub fn outcome(&self, i: usize) -> u32 {
        self.outcomes[i]
    }

    /// The batch's raw packed outcome range, for implementations that want
    /// to sweep it directly (e.g. to count deliveries before dispatching).
    pub fn outcomes(&self) -> &'a [u32] {
        self.outcomes
    }

    /// The slot's full action buffer (broadcaster ids in
    /// [`FeedbackBatch::outcomes`] index into it).
    pub fn actions(&self) -> &'a [Action<M>] {
        self.actions
    }

    /// Decodes node `i`'s outcome into the [`Feedback`] the scalar path
    /// would deliver. The borrow lives as long as the action buffer, not
    /// the accessor call.
    pub fn feedback(&self, i: usize) -> Feedback<'a, M> {
        match self.outcomes[i] {
            outcome::SENT => Feedback::Sent,
            outcome::SLEPT => Feedback::Slept,
            outcome::IDLE | outcome::COLLISION | outcome::PU_BUSY => Feedback::Silence,
            b => match &self.actions[b as usize] {
                Action::Broadcast { message, .. } => Feedback::Heard(message),
                _ => unreachable!("resolved broadcaster must be broadcasting"),
            },
        }
    }
}

/// The shared body of every buffered [`Protocol::act_batch`] override:
/// for each node of the batch, pre-fill `reserve(node)` words of its
/// private stream in one bulk draw ([`BatchCtx::buffered`] — the reserve
/// must be a *lower bound* on the node's actual draws) and run `act` over
/// the buffered stream.
///
/// Ported protocols implement `act_batch` as one call to this, passing
/// their `min_draws` state inspection and their generic act body — so the
/// dispatch loop and the reserve contract live in exactly one place.
pub fn act_batch_buffered<P, Reserve, Act>(
    batch: &mut [P],
    ctx: &mut BatchCtx<'_>,
    out: &mut Vec<Action<P::Message>>,
    reserve: Reserve,
    mut act: Act,
) where
    P: Protocol,
    Reserve: Fn(&P) -> usize,
    Act: FnMut(&mut P, &mut SlotCtx<'_, BufferedRng<'_, SmallRng>>) -> Action<P::Message>,
{
    let slot = ctx.slot();
    for (i, p) in batch.iter_mut().enumerate() {
        let mut rng = ctx.buffered(i, reserve(p));
        out.push(act(p, &mut SlotCtx { slot, rng: &mut rng }));
    }
}

/// The shared body of every buffered [`Protocol::feedback_batch`] override:
/// for each node of the batch, decode its outcome, pre-fill
/// `reserve(node)` words of its private stream in one bulk draw (the
/// reserve must be a *lower bound* on the words the node's feedback body
/// will actually draw — most schedule-driven feedback paths draw zero, and
/// data-dependent transition draws simply fall through the façade), and
/// run `feedback` over the buffered stream.
///
/// Ported protocols implement `feedback_batch` as one call to this,
/// passing their reserve inspection and their generic feedback body — the
/// dispatch loop and the reserve contract live in exactly one place,
/// mirroring [`act_batch_buffered`].
pub fn feedback_batch_buffered<P, Reserve, Fb>(
    batch: &mut [P],
    ctx: &mut BatchCtx<'_>,
    fb: FeedbackBatch<'_, P::Message>,
    reserve: Reserve,
    mut feedback: Fb,
) where
    P: Protocol,
    Reserve: Fn(&P) -> usize,
    Fb: FnMut(&mut P, &mut SlotCtx<'_, BufferedRng<'_, SmallRng>>, Feedback<'_, P::Message>),
{
    debug_assert_eq!(batch.len(), ctx.len(), "one RNG stream per batched node");
    debug_assert_eq!(batch.len(), fb.len(), "one outcome per batched node");
    let slot = ctx.slot();
    for (i, p) in batch.iter_mut().enumerate() {
        let f = fb.feedback(i);
        let mut rng = ctx.buffered(i, reserve(p));
        feedback(p, &mut SlotCtx { slot, rng: &mut rng }, f);
    }
}

/// Static, node-local information available when a protocol instance is
/// constructed.
///
/// Note what is *absent*: the node does not know its neighbors, their
/// identities, nor the global channel labels — exactly the initial knowledge
/// of the paper's model. Global parameters such as `n`, `Δ`, `k`, `kmax` are
/// assumed common knowledge and are carried by the protocol parameter
/// structs in `crn-core`, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's unique identity.
    pub id: NodeId,
    /// Number of channels this node can access (the paper's `c`). Local
    /// labels are `0..num_channels`.
    pub num_channels: u16,
}

/// A per-node protocol state machine.
///
/// Implementations must be *oblivious to wall-clock length differences*: the
/// engine drives all nodes in lockstep, so any phase structure must be a
/// function of the slot count alone (all of the paper's algorithms have this
/// fixed-schedule property).
///
/// # Examples
///
/// A trivial protocol that broadcasts its identity on local channel 0 in
/// every slot:
///
/// ```
/// use crn_sim::{Action, Feedback, LocalChannel, NodeCtx, Protocol, SlotCtx};
///
/// struct Beacon {
///     me: u32,
/// }
///
/// impl Protocol for Beacon {
///     type Message = u32;
///     type Output = ();
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
///         Action::Broadcast { channel: LocalChannel(0), message: self.me }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u32>) {}
///     fn is_complete(&self) -> bool { false }
///     fn into_output(self) -> () {}
/// }
/// ```
pub trait Protocol {
    /// The message type exchanged over the air. No `Clone` bound: the
    /// engine delivers messages by reference and never clones them.
    /// Protocols that need ownership clone at their concrete type.
    type Message;
    /// The final result extracted when the run ends.
    type Output;

    /// Decide this slot's action. Called exactly once per slot, in slot
    /// order, before any feedback for the slot is delivered.
    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<Self::Message>;

    /// Decide one slot's actions for a contiguous batch of nodes: append
    /// exactly `batch.len()` actions to `out`, one per instance in batch
    /// order, drawing node `i`'s randomness only from stream `i` of `ctx`.
    ///
    /// This is the engine's phase-1 entry point — the unit its pooled
    /// collection path dispatches to worker threads in node-range chunks.
    /// The default implementation delegates to scalar [`Protocol::act`]
    /// per node, so existing implementations keep working unchanged.
    ///
    /// An override must be **draw-for-draw identical** to the scalar path:
    /// for every node it must consume exactly the words `act` would (the
    /// [`BatchCtx::buffered`] reserve mechanism makes that automatic when
    /// the reserve is a lower bound on the node's draws). The engine's
    /// differential tests enforce this equivalence bit for bit.
    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<Self::Message>>)
    where
        Self: Sized,
    {
        debug_assert_eq!(batch.len(), ctx.len(), "one RNG stream per batched node");
        for (i, p) in batch.iter_mut().enumerate() {
            let mut sctx = ctx.slot_ctx(i);
            out.push(p.act(&mut sctx));
        }
    }

    /// Receive the observation for the slot. Called exactly once per slot
    /// after all nodes have acted. A heard message arrives by reference;
    /// clone it here if it must outlive the call.
    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, Self::Message>);

    /// Deliver one slot's observations to a contiguous batch of nodes:
    /// node `i` of the batch receives the feedback decoded from outcome
    /// `i` of `fb`, drawing any randomness only from stream `i` of `ctx`.
    ///
    /// This is the engine's phase-3 entry point — the unit its pooled
    /// delivery path dispatches to worker threads in node-range chunks.
    /// The default implementation delegates to scalar
    /// [`Protocol::feedback`] per node, so existing implementations keep
    /// working unchanged.
    ///
    /// An override must be **draw-for-draw identical** to the scalar path
    /// (same contract as [`Protocol::act_batch`]; the engine's
    /// differential tests enforce the equivalence bit for bit).
    fn feedback_batch(
        batch: &mut [Self],
        ctx: &mut BatchCtx<'_>,
        fb: FeedbackBatch<'_, Self::Message>,
    ) where
        Self: Sized,
    {
        debug_assert_eq!(batch.len(), ctx.len(), "one RNG stream per batched node");
        debug_assert_eq!(batch.len(), fb.len(), "one outcome per batched node");
        for (i, p) in batch.iter_mut().enumerate() {
            let f = fb.feedback(i);
            let mut sctx = ctx.slot_ctx(i);
            p.feedback(&mut sctx, f);
        }
    }

    /// `true` once the protocol's fixed schedule has finished. The engine
    /// stops early when every node is complete.
    fn is_complete(&self) -> bool;

    /// Consume the protocol and produce its output.
    fn into_output(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_channel_accessor() {
        let b: Action<u8> = Action::Broadcast { channel: LocalChannel(3), message: 1 };
        let l: Action<u8> = Action::Listen { channel: LocalChannel(2) };
        let s: Action<u8> = Action::Sleep;
        assert_eq!(b.channel(), Some(LocalChannel(3)));
        assert_eq!(l.channel(), Some(LocalChannel(2)));
        assert_eq!(s.channel(), None);
        assert!(b.is_broadcast());
        assert!(!l.is_broadcast());
    }

    #[test]
    fn feedback_heard_extraction() {
        assert_eq!(Feedback::Heard(&7u32).heard(), Some(&7));
        assert_eq!(Feedback::<u32>::Silence.heard(), None);
        assert_eq!(Feedback::<u32>::Sent.heard(), None);
        assert_eq!(Feedback::<u32>::Slept.heard(), None);
    }

    #[test]
    fn feedback_batch_decodes_every_outcome() {
        let actions: Vec<Action<u32>> = vec![
            Action::Broadcast { channel: LocalChannel(0), message: 11 },
            Action::Sleep,
            Action::Broadcast { channel: LocalChannel(1), message: 22 },
        ];
        // A batch covering a sub-range whose broadcaster ids index the
        // full action buffer.
        let outcomes =
            [outcome::SENT, outcome::SLEPT, outcome::IDLE, outcome::COLLISION, outcome::PU_BUSY, 2];
        let fb = FeedbackBatch::new(&outcomes, &actions);
        assert_eq!(fb.len(), 6);
        assert_eq!(fb.feedback(0), Feedback::Sent);
        assert_eq!(fb.feedback(1), Feedback::Slept);
        assert_eq!(fb.feedback(2), Feedback::Silence);
        assert_eq!(fb.feedback(3), Feedback::Silence);
        assert_eq!(fb.feedback(4), Feedback::Silence);
        assert_eq!(fb.feedback(5), Feedback::Heard(&22));
        assert_eq!(fb.outcome(5), 2);
        const { assert!(outcome::MIN_SENTINEL <= outcome::PU_BUSY) };
    }

    #[test]
    fn feedback_is_copy_without_message_clone() {
        // `Feedback` must stay `Copy` even for non-`Clone` messages.
        struct NoClone;
        let m = NoClone;
        let fb: Feedback<'_, NoClone> = Feedback::Heard(&m);
        let a = fb;
        let b = fb;
        assert!(matches!(a, Feedback::Heard(_)));
        assert!(matches!(b, Feedback::Heard(_)));
    }
}
