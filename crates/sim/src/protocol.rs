//! The protocol interface: how per-node algorithms plug into the engine.
//!
//! A [`Protocol`] is the state machine one node runs. In every slot the
//! engine asks each node for an [`Action`] (broadcast on a local channel,
//! listen on a local channel, or sleep), resolves collisions globally, and
//! then hands each node a [`Feedback`] describing what that node observed.
//!
//! The model (paper §3) is faithfully encoded in the feedback rules:
//!
//! * a broadcaster only learns that it sent (it "receives" only its own
//!   message in that slot);
//! * a listener hears a message iff **exactly one** of its *neighbors*
//!   broadcast on the same (global) channel in that slot;
//! * zero broadcasters and ≥ 2 broadcasters are indistinguishable: both are
//!   [`Feedback::Silence`] (no collision detection).

use crate::ids::{LocalChannel, NodeId, Slot};
use rand::rngs::SmallRng;

/// What a node decides to do in one slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Tune to local channel `channel` and transmit `message`.
    Broadcast {
        /// The node-local channel label to transmit on.
        channel: LocalChannel,
        /// The message payload.
        message: M,
    },
    /// Tune to local channel `channel` and listen.
    Listen {
        /// The node-local channel label to listen on.
        channel: LocalChannel,
    },
    /// Stay idle this slot (radio off).
    Sleep,
}

impl<M> Action<M> {
    /// The channel this action tunes to, if any.
    pub fn channel(&self) -> Option<LocalChannel> {
        match self {
            Action::Broadcast { channel, .. } | Action::Listen { channel } => Some(*channel),
            Action::Sleep => None,
        }
    }

    /// `true` if this action transmits.
    pub fn is_broadcast(&self) -> bool {
        matches!(self, Action::Broadcast { .. })
    }
}

/// What a node observed at the end of one slot.
///
/// A received message is handed out *by reference* into the broadcaster's
/// still-live action buffer: the engine never clones payloads. A protocol
/// that wants to keep a message beyond the `feedback` call clones it there —
/// a single clone per actual delivery, paid only by the consumer that needs
/// ownership (many don't: they extract a `Copy` field and drop the rest).
#[derive(Debug, PartialEq, Eq)]
pub enum Feedback<'a, M> {
    /// The node broadcast; it learns nothing else this slot.
    Sent,
    /// The node listened and exactly one neighbor broadcast on its channel.
    Heard(&'a M),
    /// The node listened and heard nothing — either no neighbor broadcast on
    /// the channel or at least two did (collision). The two cases are
    /// indistinguishable in this model.
    Silence,
    /// The node slept.
    Slept,
}

// Manual impls: `Feedback` is always `Copy` (it carries at most a shared
// reference), with no `M: Clone`/`M: Copy` bound as a derive would add.
impl<M> Clone for Feedback<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<M> Copy for Feedback<'_, M> {}

impl<'a, M> Feedback<'a, M> {
    /// Returns the received message, if any.
    pub fn heard(self) -> Option<&'a M> {
        match self {
            Feedback::Heard(m) => Some(m),
            _ => None,
        }
    }
}

/// Per-slot context handed to protocols, carrying the global slot clock and
/// the node's private randomness stream.
///
/// The slot index is global knowledge (the model is synchronous with
/// simultaneous start), and each node can "independently generate random
/// bits" (paper §3) — hence one independent RNG per node.
pub struct SlotCtx<'a> {
    /// The current slot (identical at all nodes).
    pub slot: Slot,
    /// The node's private random stream for this execution.
    pub rng: &'a mut SmallRng,
}

/// Static, node-local information available when a protocol instance is
/// constructed.
///
/// Note what is *absent*: the node does not know its neighbors, their
/// identities, nor the global channel labels — exactly the initial knowledge
/// of the paper's model. Global parameters such as `n`, `Δ`, `k`, `kmax` are
/// assumed common knowledge and are carried by the protocol parameter
/// structs in `crn-core`, not here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's unique identity.
    pub id: NodeId,
    /// Number of channels this node can access (the paper's `c`). Local
    /// labels are `0..num_channels`.
    pub num_channels: u16,
}

/// A per-node protocol state machine.
///
/// Implementations must be *oblivious to wall-clock length differences*: the
/// engine drives all nodes in lockstep, so any phase structure must be a
/// function of the slot count alone (all of the paper's algorithms have this
/// fixed-schedule property).
///
/// # Examples
///
/// A trivial protocol that broadcasts its identity on local channel 0 in
/// every slot:
///
/// ```
/// use crn_sim::{Action, Feedback, LocalChannel, NodeCtx, Protocol, SlotCtx};
///
/// struct Beacon {
///     me: u32,
/// }
///
/// impl Protocol for Beacon {
///     type Message = u32;
///     type Output = ();
///     fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u32> {
///         Action::Broadcast { channel: LocalChannel(0), message: self.me }
///     }
///     fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, u32>) {}
///     fn is_complete(&self) -> bool { false }
///     fn into_output(self) -> () {}
/// }
/// ```
pub trait Protocol {
    /// The message type exchanged over the air. No `Clone` bound: the
    /// engine delivers messages by reference and never clones them.
    /// Protocols that need ownership clone at their concrete type.
    type Message;
    /// The final result extracted when the run ends.
    type Output;

    /// Decide this slot's action. Called exactly once per slot, in slot
    /// order, before any feedback for the slot is delivered.
    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<Self::Message>;

    /// Receive the observation for the slot. Called exactly once per slot
    /// after all nodes have acted. A heard message arrives by reference;
    /// clone it here if it must outlive the call.
    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, Self::Message>);

    /// `true` once the protocol's fixed schedule has finished. The engine
    /// stops early when every node is complete.
    fn is_complete(&self) -> bool;

    /// Consume the protocol and produce its output.
    fn into_output(self) -> Self::Output;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_channel_accessor() {
        let b: Action<u8> = Action::Broadcast { channel: LocalChannel(3), message: 1 };
        let l: Action<u8> = Action::Listen { channel: LocalChannel(2) };
        let s: Action<u8> = Action::Sleep;
        assert_eq!(b.channel(), Some(LocalChannel(3)));
        assert_eq!(l.channel(), Some(LocalChannel(2)));
        assert_eq!(s.channel(), None);
        assert!(b.is_broadcast());
        assert!(!l.is_broadcast());
    }

    #[test]
    fn feedback_heard_extraction() {
        assert_eq!(Feedback::Heard(&7u32).heard(), Some(&7));
        assert_eq!(Feedback::<u32>::Silence.heard(), None);
        assert_eq!(Feedback::<u32>::Sent.heard(), None);
        assert_eq!(Feedback::<u32>::Slept.heard(), None);
    }

    #[test]
    fn feedback_is_copy_without_message_clone() {
        // `Feedback` must stay `Copy` even for non-`Clone` messages.
        struct NoClone;
        let m = NoClone;
        let fb: Feedback<'_, NoClone> = Feedback::Heard(&m);
        let a = fb;
        let b = fb;
        assert!(matches!(a, Feedback::Heard(_)));
        assert!(matches!(b, Feedback::Heard(_)));
    }
}
