//! Geographic white-space modeling: spatially-correlated channel
//! availability caused by licensed primary users (paper §1, motivation (1)).
//!
//! Secondary users (our nodes) are placed in the unit square and connect
//! when within radio range. Each *primary user* (e.g. a TV broadcaster)
//! occupies one channel inside a protection disk; a secondary user may not
//! use a channel whose primary covers its position. Each node then selects
//! its `c` operating channels from the channels free at its location,
//! producing the spatially-correlated heterogeneous channel sets that
//! motivate the cognitive radio model: nearby nodes see similar spectrum,
//! distant nodes may not.

use crate::ids::GlobalChannel;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// A licensed primary user occupying `channel` within `radius` of its
/// position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimaryUser {
    /// Position in the unit square.
    pub x: f64,
    /// Position in the unit square.
    pub y: f64,
    /// Protection radius: secondaries within it must avoid the channel.
    pub radius: f64,
    /// The occupied channel.
    pub channel: GlobalChannel,
}

impl PrimaryUser {
    /// `true` if a secondary at `(x, y)` is inside the protection region.
    pub fn covers(&self, x: f64, y: f64) -> bool {
        let dx = self.x - x;
        let dy = self.y - y;
        dx * dx + dy * dy <= self.radius * self.radius
    }
}

/// Parameters of a white-space deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WhitespaceConfig {
    /// Number of secondary users (nodes).
    pub n: usize,
    /// Radio range between secondaries.
    pub radio_radius: f64,
    /// Size of the licensed band (number of global channels).
    pub universe: usize,
    /// Channels each secondary operates on (the model's `c`).
    pub c: usize,
    /// Number of primary users, placed uniformly at random.
    pub primaries: usize,
    /// Protection radius of every primary.
    pub primary_radius: f64,
}

/// A materialized white-space deployment.
#[derive(Debug, Clone)]
pub struct WhitespaceDeployment {
    /// Node positions in the unit square.
    pub positions: Vec<(f64, f64)>,
    /// The primary users.
    pub primaries: Vec<PrimaryUser>,
    /// Per-node channel sets (each of size `c`), local-label order.
    pub channel_sets: Vec<Vec<GlobalChannel>>,
    /// Radio-range edges (before any overlap pruning).
    pub edges: Vec<(u32, u32)>,
}

/// Errors from [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WhitespaceError {
    /// A node position had fewer than `c` free channels; reduce primary
    /// density or `c`.
    NotEnoughFreeChannels {
        /// The starved node.
        node: usize,
        /// Channels free at its position.
        free: usize,
        /// Channels required.
        needed: usize,
    },
}

impl std::fmt::Display for WhitespaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WhitespaceError::NotEnoughFreeChannels { node, free, needed } => write!(
                f,
                "node {node} has only {free} free channels but needs {needed}; \
                 lower the primary density, shrink protection radii, or reduce c"
            ),
        }
    }
}

impl std::error::Error for WhitespaceError {}

/// Generates a deployment: node and primary placement, per-node channel
/// availability, channel selection, and radio-range edges.
///
/// # Errors
/// Fails with [`WhitespaceError::NotEnoughFreeChannels`] when the primaries
/// blanket some location so densely that fewer than `c` channels remain.
pub fn generate(
    cfg: &WhitespaceConfig,
    rng: &mut SmallRng,
) -> Result<WhitespaceDeployment, WhitespaceError> {
    assert!(cfg.c >= 1 && cfg.c <= cfg.universe, "need 1 <= c <= universe");
    assert!(cfg.radio_radius > 0.0, "radio radius must be positive");
    let positions: Vec<(f64, f64)> =
        (0..cfg.n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let primaries: Vec<PrimaryUser> = (0..cfg.primaries)
        .map(|_| PrimaryUser {
            x: rng.gen(),
            y: rng.gen(),
            radius: cfg.primary_radius,
            channel: GlobalChannel(rng.gen_range(0..cfg.universe as u32)),
        })
        .collect();

    let mut channel_sets = Vec::with_capacity(cfg.n);
    for (i, &(x, y)) in positions.iter().enumerate() {
        let free: Vec<GlobalChannel> = (0..cfg.universe as u32)
            .map(GlobalChannel)
            .filter(|&ch| !primaries.iter().any(|p| p.channel == ch && p.covers(x, y)))
            .collect();
        if free.len() < cfg.c {
            return Err(WhitespaceError::NotEnoughFreeChannels {
                node: i,
                free: free.len(),
                needed: cfg.c,
            });
        }
        let mut chosen: Vec<GlobalChannel> = free.choose_multiple(rng, cfg.c).copied().collect();
        chosen.shuffle(rng); // arbitrary local labels
        channel_sets.push(chosen);
    }

    let r2 = cfg.radio_radius * cfg.radio_radius;
    let mut edges = Vec::new();
    for a in 0..cfg.n {
        for b in (a + 1)..cfg.n {
            let dx = positions[a].0 - positions[b].0;
            let dy = positions[a].1 - positions[b].1;
            if dx * dx + dy * dy <= r2 {
                edges.push((a as u32, b as u32));
            }
        }
    }
    Ok(WhitespaceDeployment { positions, primaries, channel_sets, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channels::overlap_size;
    use crate::rng::stream_rng;

    fn config() -> WhitespaceConfig {
        WhitespaceConfig {
            n: 40,
            radio_radius: 0.25,
            universe: 12,
            c: 5,
            primaries: 6,
            primary_radius: 0.3,
        }
    }

    #[test]
    fn generates_valid_deployment() {
        let mut rng = stream_rng(1, 0);
        let dep = generate(&config(), &mut rng).expect("generates");
        assert_eq!(dep.positions.len(), 40);
        assert_eq!(dep.channel_sets.len(), 40);
        for set in &dep.channel_sets {
            assert_eq!(set.len(), 5);
            let mut d = set.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 5, "no duplicate channels");
        }
    }

    #[test]
    fn nodes_avoid_covering_primaries() {
        let mut rng = stream_rng(2, 0);
        let dep = generate(&config(), &mut rng).unwrap();
        for (i, set) in dep.channel_sets.iter().enumerate() {
            let (x, y) = dep.positions[i];
            for p in &dep.primaries {
                if p.covers(x, y) {
                    assert!(
                        !set.contains(&p.channel),
                        "node {i} uses channel {} inside primary protection",
                        p.channel
                    );
                }
            }
        }
    }

    #[test]
    fn nearby_nodes_share_more_spectrum_than_distant_ones() {
        // Spatial correlation: average overlap of close pairs should be at
        // least that of far pairs (statistically, with a blanket primary
        // layout this is the whole point of the model).
        let cfg = WhitespaceConfig { primaries: 10, primary_radius: 0.4, ..config() };
        let mut close = Vec::new();
        let mut far = Vec::new();
        for seed in 0..10 {
            let mut rng = stream_rng(100 + seed, 0);
            let Ok(dep) = generate(&cfg, &mut rng) else { continue };
            for a in 0..cfg.n {
                for b in (a + 1)..cfg.n {
                    let dx = dep.positions[a].0 - dep.positions[b].0;
                    let dy = dep.positions[a].1 - dep.positions[b].1;
                    let dist = (dx * dx + dy * dy).sqrt();
                    let ov = overlap_size(&dep.channel_sets[a], &dep.channel_sets[b]) as f64;
                    if dist < 0.2 {
                        close.push(ov);
                    } else if dist > 0.7 {
                        far.push(ov);
                    }
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&close) >= mean(&far),
            "close pairs should overlap at least as much: {} vs {}",
            mean(&close),
            mean(&far)
        );
    }

    #[test]
    fn fails_cleanly_when_primaries_blanket_spectrum() {
        let cfg = WhitespaceConfig {
            universe: 3,
            c: 3,
            primaries: 60,
            primary_radius: 2.0, // covers everything
            ..config()
        };
        let mut rng = stream_rng(3, 0);
        let err = generate(&cfg, &mut rng).unwrap_err();
        assert!(matches!(err, WhitespaceError::NotEnoughFreeChannels { .. }));
        assert!(err.to_string().contains("free channels"));
    }

    #[test]
    fn primary_coverage_geometry() {
        let p = PrimaryUser { x: 0.5, y: 0.5, radius: 0.1, channel: GlobalChannel(0) };
        assert!(p.covers(0.55, 0.5));
        assert!(!p.covers(0.7, 0.5));
    }
}
