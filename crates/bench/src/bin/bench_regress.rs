//! Bench-over-bench regression gate.
//!
//! Compares a freshly produced engine bench report against the committed
//! baseline (`BENCH_engine.json`) and fails — exit code 1 — when any
//! scenario's median slowed down by more than the tolerance (default 25%).
//! Run by CI after the quick-mode bench:
//!
//! ```text
//! bench_regress <baseline.json> <new.json> [--tolerance <percent>] [--phases]
//! ```
//!
//! Scenarios present in only one of the two reports are reported but never
//! fail the gate (the matrix is allowed to grow). `sharded*` rows are
//! exempt: their wall-clock depends on idle cores, which CI runners don't
//! guarantee, so they are tracked but not gated. Per-scenario ratios are
//! printed on *green* runs too, so drift that stays inside the tolerance
//! is visible before it compounds past the gate.
//!
//! With `--phases`, a green run is followed by an in-process per-phase
//! wall-clock breakdown of the engine (the `small_slot_200` shape with
//! `Engine::set_phase_timing` enabled), so when a future run *does*
//! regress, the green runs around it already show which phase the time
//! normally goes to — no criterion rerun or bisect needed to localize.
//!
//! With `--normalize` (what CI passes), each scenario is gated against
//! `baseline · scale`, where `scale` is the median `new/baseline` ratio
//! over all gated scenarios. A uniformly faster or slower machine shifts
//! every ratio equally and cancels out of the comparison, so the gate
//! measures *per-scenario* regressions even though the committed baseline
//! and the CI runner are different hardware; a real regression moves one
//! scenario against the pack and still fails.
//!
//! The parser targets exactly the format the criterion shim writes (one
//! benchmark object per line); it is not a general JSON parser.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Benchmark ids (suffix match) excluded from the gate.
const SHARDED_EXEMPT: &[&str] = &["sharded2", "sharded4", "sharded8"];

/// Benchmark *groups* that are reported but not yet gated.
///
/// `spectrum_churn` graduated from this list when its baseline was
/// recalibrated on the CI container: measured against the gated pack its
/// rows now track the pack's machine scale (drift within ±10% after
/// normalization on the promotion run), so the original objection — a
/// foreign-machine baseline for rows that differ from the pack in kind —
/// no longer applies. It is gated like any other group.
///
/// * `campaign_resume` — the `journaled` and `resume_replay` rows are
///   fsync-bound at the margin: their medians track the runner's
///   filesystem latency, not the code under test, so gating them would
///   fail the build on hardware variance. The journal-overhead acceptance
///   claim (journaled ≤ 5% over in_memory) is checked when the baseline
///   is regenerated, and the printed rows keep the ratio visible per run.
/// * `huge_sparse_1e6` — the million-node memory-layout row. Its medians
///   track memory bandwidth, not cache-resident compute, so it scales
///   differently across runners than the gated pack and the pack's median
///   ratio is not a valid machine scale for it. The row's real acceptance
///   criteria — O(n + m) footprint and peak RSS — are hard-asserted by
///   the bench itself and by the `huge_smoke` CI binary; the timing here
///   is tracked for drift, not gated.
/// * `server_load` — loopback HTTP round-trips through the campaign
///   server. Each measurement is a handful of socket connect/read/write
///   syscalls, so medians track the runner's kernel scheduler and
///   loopback stack, not the code under test; on a shared CI machine the
///   iteration-to-iteration spread exceeds any tolerance worth gating.
///   The server's functional guarantees (byte-identical results, torn-
///   read-free concurrent polling) are hard-asserted by the server e2e
///   tests and the CI smoke step; the rows here are capacity drift
///   telemetry.
const PRINT_ONLY_GROUPS: &[&str] = &["campaign_resume", "huge_sparse_1e6", "server_load"];

/// One `(group, id) → median_ns` measurement.
type Report = BTreeMap<(String, String), f64>;

/// Extracts the string value of `"key": "..."` from a JSON object line.
fn str_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_string())
}

/// Extracts the numeric value of `"key": <number>` from a JSON object line.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a criterion-shim bench report into `(group, id) → median_ns`.
fn parse_report(text: &str) -> Report {
    let mut out = Report::new();
    for line in text.lines() {
        let (Some(group), Some(id), Some(median)) =
            (str_field(line, "group"), str_field(line, "id"), num_field(line, "median_ns"))
        else {
            continue;
        };
        out.insert((group, id), median);
    }
    out
}

fn is_exempt(group: &str, id: &str) -> bool {
    PRINT_ONLY_GROUPS.contains(&group) || SHARDED_EXEMPT.iter().any(|suffix| id.ends_with(suffix))
}

/// The widest machine-speed spread `--normalize` will attribute to
/// hardware: the median ratio is clamped to `[1/3, 3]`, so a fleet-wide
/// *genuine* slowdown beyond `3 × (1 + tolerance)` still fails the gate
/// instead of being absorbed as "slower machine".
const MAX_MACHINE_SCALE: f64 = 3.0;

/// The median `new/baseline` ratio over the gated scenarios both reports
/// share — the machine-speed scale that `--normalize` divides out,
/// clamped to `[1/MAX_MACHINE_SCALE, MAX_MACHINE_SCALE]`. `1.0` when
/// fewer than three scenarios overlap (too little signal to estimate a
/// machine shift).
fn machine_scale(baseline: &Report, new: &Report) -> f64 {
    let mut ratios: Vec<f64> = baseline
        .iter()
        .filter(|((group, id), _)| !is_exempt(group, id))
        .filter_map(|(key, &base_ns)| new.get(key).map(|&new_ns| new_ns / base_ns))
        .collect();
    if ratios.len() < 3 {
        return 1.0;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("NaN ratio"));
    ratios[ratios.len() / 2].clamp(1.0 / MAX_MACHINE_SCALE, MAX_MACHINE_SCALE)
}

/// Compares `new` against `baseline · scale`; returns the regressions as
/// `(scenario, scaled_baseline_ns, new_ns)` triples.
fn regressions(
    baseline: &Report,
    new: &Report,
    tolerance_pct: f64,
    scale: f64,
) -> Vec<(String, f64, f64)> {
    let factor = 1.0 + tolerance_pct / 100.0;
    let mut out = Vec::new();
    for ((group, id), &base_ns) in baseline {
        if is_exempt(group, id) {
            continue;
        }
        match new.get(&(group.clone(), id.clone())) {
            Some(&new_ns) if new_ns > base_ns * scale * factor => {
                out.push((format!("{group}/{id}"), base_ns * scale, new_ns));
            }
            _ => {}
        }
    }
    out
}

/// The `--phases` report: runs the `small_slot_200` scenario shape
/// in-process with `Engine::set_phase_timing` enabled and prints where a
/// slot's wall-clock goes, per resolver. Green-run context for localizing
/// future regressions — the timings come from the engine's own per-phase
/// accumulators, not from criterion.
fn print_phase_breakdown() {
    use crn_sim::channels::ChannelModel;
    use crn_sim::topology::Topology;
    use crn_sim::{Action, Engine, Network, Protocol, Resolver, SlotCtx, StatsMode};
    use rand::Rng;

    /// The bench `Chatter` shape: random channel, random role, every slot.
    struct Chatter;
    impl Protocol for Chatter {
        type Message = u32;
        type Output = ();
        fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
            let channel = crn_sim::LocalChannel(ctx.rng.gen_range(0..3));
            if ctx.rng.gen_bool(0.5) {
                Action::Broadcast { channel, message: 7 }
            } else {
                Action::Listen { channel }
            }
        }
        fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: crn_sim::Feedback<'_, u32>) {}
        fn is_complete(&self) -> bool {
            false
        }
        fn into_output(self) {}
    }

    let n = 200usize;
    let slots = 1024u64;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = Network::generate_with_stats(&topology, &channels, 13, StatsMode::Approximate)
        .expect("breakdown network must build");

    println!("  per-phase breakdown (n={n}, {slots} slots, small_slot_200 shape):");
    for (rname, resolver) in [
        ("auto", Resolver::Auto),
        ("sharded2", Resolver::ParallelSharded { threads: 2 }),
        ("sharded4", Resolver::ParallelSharded { threads: 4 }),
    ] {
        let mut eng = Engine::with_resolver(&net, 42, resolver, |_| Chatter);
        eng.set_phase_timing(true);
        eng.run_to_completion(slots);
        let pt = eng.phase_timings().expect("timing was enabled");
        let total = pt.total_ns().max(1) as f64;
        let pct = |ns: u64| ns as f64 / total * 100.0;
        println!(
            "    {rname:<9} total {:>8.2} ms · spectrum {:>4.1}% · collect {:>4.1}% \
             ({} pooled) · resolve {:>4.1}% ({} sharded) · deliver {:>4.1}% ({} pooled)",
            total / 1e6,
            pct(pt.spectrum_ns),
            pct(pt.collect_ns()),
            pt.collect_pooled_slots,
            pct(pt.resolve_ns()),
            pt.resolve_sharded_slots,
            pct(pt.deliver_ns()),
            pt.deliver_pooled_slots,
        );
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance_pct = 25.0;
    let mut normalize = false;
    let mut phases = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance_pct = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance needs a numeric percent");
            }
            "--normalize" => normalize = true,
            "--phases" => phases = true,
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    let [baseline_path, new_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_regress <baseline.json> <new.json> [--tolerance <percent>] [--normalize] [--phases]"
        );
        return ExitCode::FAILURE;
    };

    let read =
        |p: &str| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"));
    let baseline = parse_report(&read(baseline_path));
    let new = parse_report(&read(new_path));
    println!(
        "bench_regress: {} baseline scenarios vs {} new, tolerance {tolerance_pct}%",
        baseline.len(),
        new.len()
    );
    for (group, id) in baseline.keys() {
        if !new.contains_key(&(group.clone(), id.clone())) {
            println!("  note: {group}/{id} missing from new report (not gated)");
        }
    }
    for (group, id) in new.keys() {
        if !baseline.contains_key(&(group.clone(), id.clone())) {
            println!("  note: {group}/{id} is new (no baseline, not gated)");
        }
    }

    let scale = if normalize { machine_scale(&baseline, &new) } else { 1.0 };
    if normalize {
        println!("  machine scale (median new/baseline): {scale:.3}");
    }
    // Per-scenario ratios, printed on green runs too: baseline drift that
    // stays inside the tolerance is otherwise invisible until it compounds
    // past the gate.
    println!("  per-scenario medians (new / scaled baseline):");
    for ((group, id), &base_ns) in &baseline {
        let Some(&new_ns) = new.get(&(group.clone(), id.clone())) else {
            continue;
        };
        let scaled = base_ns * scale;
        println!(
            "    {group}/{id}: {:.3} ms -> {:.3} ms ({:+.1}%){}",
            scaled / 1e6,
            new_ns / 1e6,
            (new_ns / scaled - 1.0) * 100.0,
            if is_exempt(group, id) { "  [exempt]" } else { "" }
        );
    }

    let bad = regressions(&baseline, &new, tolerance_pct, scale);
    for (scenario, base_ns, new_ns) in &bad {
        eprintln!(
            "  REGRESSION {scenario}: {:.3} ms -> {:.3} ms ({:+.1}%)",
            base_ns / 1e6,
            new_ns / 1e6,
            (new_ns / base_ns - 1.0) * 100.0
        );
    }
    if bad.is_empty() {
        println!("bench_regress: OK — no scenario regressed beyond {tolerance_pct}%");
        if phases {
            print_phase_breakdown();
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_regress: {} scenario(s) regressed beyond {tolerance_pct}%", bad.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"group": "g", "id": "a/auto", "samples": 10, "median_ns": 1000.0, "mean_ns": 1.0, "min_ns": 1.0, "stddev_ns": 0.1, "throughput_kind": "elements", "throughput_per_iter": 5},
    {"group": "g", "id": "a/sharded2", "samples": 10, "median_ns": 1000.0, "mean_ns": 1.0, "min_ns": 1.0, "stddev_ns": 0.1, "throughput_kind": null, "throughput_per_iter": null}
  ]
}
"#;

    #[test]
    fn parses_the_shim_report_format() {
        let r = parse_report(SAMPLE);
        assert_eq!(r.len(), 2);
        assert_eq!(r[&("g".into(), "a/auto".into())], 1000.0);
    }

    #[test]
    fn flags_only_regressions_beyond_tolerance() {
        let baseline = parse_report(SAMPLE);
        let mut new = baseline.clone();
        // +20% is within the 25% tolerance.
        new.insert(("g".into(), "a/auto".into()), 1200.0);
        assert!(regressions(&baseline, &new, 25.0, 1.0).is_empty());
        // +30% is not.
        new.insert(("g".into(), "a/auto".into()), 1300.0);
        let bad = regressions(&baseline, &new, 25.0, 1.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "g/a/auto");
    }

    #[test]
    fn sharded_rows_and_missing_scenarios_are_not_gated() {
        let baseline = parse_report(SAMPLE);
        let mut new = Report::new();
        // a/auto missing entirely; a/sharded2 regressed 10x — neither gates.
        new.insert(("g".into(), "a/sharded2".into()), 10_000.0);
        assert!(regressions(&baseline, &new, 25.0, 1.0).is_empty());
    }

    #[test]
    fn print_only_groups_never_gate() {
        // A campaign_resume row regressed 10×: reported, never gated, and
        // excluded from the machine-scale estimate.
        let mut baseline = Report::new();
        let mut new = Report::new();
        for id in ["in_memory", "journaled"] {
            baseline.insert(("campaign_resume".into(), id.into()), 1000.0);
            new.insert(("campaign_resume".into(), id.into()), 10_000.0);
        }
        for id in ["a", "b", "c"] {
            baseline.insert(("g".into(), id.into()), 1000.0);
            new.insert(("g".into(), id.into()), 1000.0);
        }
        assert!(regressions(&baseline, &new, 25.0, 1.0).is_empty());
        assert_eq!(machine_scale(&baseline, &new), 1.0, "scale must ignore print-only rows");
    }

    #[test]
    fn spectrum_churn_is_gated_after_promotion() {
        // The group graduated from PRINT_ONLY_GROUPS with a baseline
        // recalibrated on the CI container: a regression there must now
        // fail the gate like any other scenario.
        let mut baseline = Report::new();
        let mut new = Report::new();
        baseline.insert(("spectrum_churn".into(), "none".into()), 1000.0);
        new.insert(("spectrum_churn".into(), "none".into()), 10_000.0);
        let bad = regressions(&baseline, &new, 25.0, 1.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "spectrum_churn/none");
    }

    #[test]
    fn speedups_pass() {
        let baseline = parse_report(SAMPLE);
        let mut new = baseline.clone();
        new.insert(("g".into(), "a/auto".into()), 500.0);
        assert!(regressions(&baseline, &new, 25.0, 1.0).is_empty());
    }

    fn synthetic(medians: &[(&str, f64)]) -> Report {
        medians.iter().map(|(id, m)| (("g".to_string(), id.to_string()), *m)).collect()
    }

    #[test]
    fn normalization_cancels_uniform_machine_shift() {
        let baseline = synthetic(&[("a", 100.0), ("b", 200.0), ("c", 400.0), ("d", 800.0)]);
        // A uniformly 2× slower runner: every scenario doubles. Without
        // normalization that is four "+100%" regressions; with it, none.
        let uniform = synthetic(&[("a", 200.0), ("b", 400.0), ("c", 800.0), ("d", 1600.0)]);
        assert_eq!(regressions(&baseline, &uniform, 25.0, 1.0).len(), 4);
        let scale = machine_scale(&baseline, &uniform);
        assert!((scale - 2.0).abs() < 1e-9);
        assert!(regressions(&baseline, &uniform, 25.0, scale).is_empty());
        // The same slow runner plus one genuine 3× regression on "b":
        // only "b" moves against the pack.
        let real = synthetic(&[("a", 200.0), ("b", 1200.0), ("c", 800.0), ("d", 1600.0)]);
        let scale = machine_scale(&baseline, &real);
        let bad = regressions(&baseline, &real, 25.0, scale);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "g/b");
    }

    #[test]
    fn fleet_wide_catastrophic_slowdown_is_not_absorbed() {
        let baseline = synthetic(&[("a", 100.0), ("b", 200.0), ("c", 400.0), ("d", 800.0)]);
        // Every scenario 5× slower: beyond any plausible hardware spread.
        // The clamp caps the scale at 3, so all four still fail the gate.
        let slow = synthetic(&[("a", 500.0), ("b", 1000.0), ("c", 2000.0), ("d", 4000.0)]);
        let scale = machine_scale(&baseline, &slow);
        assert_eq!(scale, MAX_MACHINE_SCALE);
        assert_eq!(regressions(&baseline, &slow, 25.0, scale).len(), 4);
    }

    #[test]
    fn scale_defaults_to_unity_with_sparse_overlap() {
        let baseline = synthetic(&[("a", 100.0), ("b", 200.0)]);
        let new = synthetic(&[("a", 300.0), ("b", 600.0)]);
        assert_eq!(machine_scale(&baseline, &new), 1.0, "fewer than 3 shared scenarios");
    }
}
