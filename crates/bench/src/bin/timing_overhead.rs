//! Paired A/B measurement of the phase-timer overhead.
//!
//! The ISSUE acceptance for the observability layer bounds the cost of
//! the *enabled-but-unscraped* path — `Engine::set_phase_timing(true)`
//! with nobody reading the accumulators — at < 3% on the
//! `small_slot_200/auto` regime. Comparing two rows of the criterion
//! suite under-delivers on that question: the rows run minutes apart, so
//! machine drift (turbo, co-tenants) of several percent lands entirely in
//! the delta. This binary interleaves the two configurations back to
//! back, run-pair by run-pair, and reports the median of the per-pair
//! ratios — drift hits both sides of every pair, so it cancels.
//!
//! ```text
//! cargo run --release -p crn-bench --bin timing_overhead [pairs]
//! ```
//!
//! Exits non-zero if the paired-median overhead exceeds the 3% bound, so
//! it can serve as a manual acceptance gate (it is deliberately not in
//! CI — shared runners make sub-3% timing asserts flaky).

use std::process::ExitCode;
use std::time::Instant;

use crn_sim::channels::ChannelModel;
use crn_sim::engine::Resolver;
use crn_sim::topology::Topology;
use crn_sim::{Action, Engine, Feedback, LocalChannel, Network, Protocol, SlotCtx, StatsMode};
use rand::Rng;

/// The `small_slot_200` chatter: broadcast or listen on one of 3 shared
/// channels, count deliveries (same shape as the engine bench row).
struct Chatter {
    c: u16,
    heard: u64,
}

impl Protocol for Chatter {
    type Message = u32;
    type Output = u64;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(0.5) {
            Action::Broadcast { channel, message: 7 }
        } else {
            Action::Listen { channel }
        }
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
        if matches!(fb, Feedback::Heard(_)) {
            self.heard += 1;
        }
    }

    fn is_complete(&self) -> bool {
        false
    }

    fn into_output(self) -> u64 {
        self.heard
    }
}

/// One full `small_slot_200/auto` run; returns (deliveries, seconds).
fn run(net: &Network, timed: bool, slots: u64) -> (u64, f64) {
    let mut eng = Engine::with_resolver(net, 42, Resolver::Auto, |_| Chatter { c: 3, heard: 0 });
    eng.set_phase_timing(timed);
    let start = Instant::now();
    eng.run_to_completion(slots);
    let secs = start.elapsed().as_secs_f64();
    (eng.counters().deliveries, secs)
}

fn main() -> ExitCode {
    let pairs: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(30);
    let n = 200usize;
    let slots = 1024u64;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = Network::generate_with_stats(&topology, &channels, 13, StatsMode::Approximate)
        .expect("bench network must build");

    // Warm both paths (page-in, branch history) before measuring.
    run(&net, false, slots);
    run(&net, true, slots);

    let mut ratios = Vec::with_capacity(pairs);
    let (mut plain_best, mut timed_best) = (f64::MAX, f64::MAX);
    for _ in 0..pairs {
        let (d_plain, t_plain) = run(&net, false, slots);
        let (d_timed, t_timed) = run(&net, true, slots);
        assert_eq!(d_plain, d_timed, "timers changed the simulation — invisibility broken");
        ratios.push(t_timed / t_plain);
        plain_best = plain_best.min(t_plain);
        timed_best = timed_best.min(t_timed);
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = ratios[ratios.len() / 2];
    let overhead_pct = (median - 1.0) * 100.0;
    println!(
        "small_slot_200/auto phase-timer overhead over {pairs} interleaved pairs:\n\
         paired median {overhead_pct:+.2}%  ·  best-vs-best {:+.2}%\n\
         plain best {:.3} ms  ·  timed best {:.3} ms",
        (timed_best / plain_best - 1.0) * 100.0,
        plain_best * 1e3,
        timed_best * 1e3,
    );
    if overhead_pct < 3.0 {
        println!("PASS: within the < 3% acceptance bound");
        ExitCode::SUCCESS
    } else {
        println!("FAIL: exceeds the 3% acceptance bound");
        ExitCode::FAILURE
    }
}
