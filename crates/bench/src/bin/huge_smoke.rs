//! CI memory-layout gate: the `huge_sparse_1e6` scenario at a reduced
//! n = 10⁵, with hard assertions instead of printed reports.
//!
//! The full million-node row lives in the engine criterion suite and is
//! too heavy for every CI run; this binary proves the same O(n + m)
//! claims in a couple of seconds and exits non-zero when any of them
//! breaks:
//!
//! * the network footprint stays linear (no dense adjacency rows at
//!   average degree 8 — the old eager per-node bitset alone would be
//!   n²/8 = 1.25 GB at this size);
//! * the engine's internal state (SoA node arrays, renumbering maps,
//!   internal CSR, shard scratch) stays linear;
//! * the *process peak RSS* (`VmHWM`) stays under a bound that any
//!   quadratic term blows past by an order of magnitude — this catches
//!   transient setup spikes that a post-hoc footprint sum cannot;
//! * the engine actually runs: slots complete and messages are
//!   delivered under the sharded resolver with pooled phase 1.
//!
//! Run by CI as `cargo run --release -p crn-bench --bin huge_smoke`.

use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Engine, Feedback, FeedbackBatch,
    LocalChannel, Network, Protocol, Resolver, SlotCtx, StatsMode,
};
use rand::{Rng, RngCore};

/// Peak-RSS ceiling. The linear structures at n = 10⁵ / m ≈ 4·10⁵ total a
/// few tens of MiB including the binary and worker stacks; the first
/// quadratic term to come back (dense adjacency) costs 1.25 GB on its
/// own, so the gate has wide margins on both sides.
const PEAK_RSS_LIMIT: u64 = 256 << 20;

/// Per-structure ceiling for the network footprint and the engine state.
const STRUCTURE_LIMIT: usize = 64 << 20;

/// The engine benches' hot-path protocol: random channel, random role,
/// every slot.
struct Chatter {
    c: u16,
    heard: u64,
}

impl Chatter {
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<u32> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(0.05) {
            Action::Broadcast { channel, message: 7 }
        } else {
            Action::Listen { channel }
        }
    }
}

impl Protocol for Chatter {
    type Message = u32;
    type Output = u64;
    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
        self.act_any(ctx)
    }
    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<u32>>) {
        act_batch_buffered(batch, ctx, out, |_| 2, |p, sctx| p.act_any(sctx));
    }
    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
        if matches!(fb, Feedback::Heard(_)) {
            self.heard += 1;
        }
    }
    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, u32>) {
        feedback_batch_buffered(
            batch,
            ctx,
            fb,
            |_| 0,
            |p, _sctx, f| {
                if matches!(f, Feedback::Heard(_)) {
                    p.heard += 1;
                }
            },
        );
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn into_output(self) -> u64 {
        self.heard
    }
}

fn main() {
    let n = 100_000usize;
    let slots = 8u64;
    let topology = Topology::SparseErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::SharedCore { c: 3, core: 2 };

    let t0 = std::time::Instant::now();
    let net = Network::generate_with_stats(&topology, &channels, 17, StatsMode::Approximate)
        .expect("huge_smoke network must build");
    let setup = t0.elapsed();
    let stats = net.stats();
    assert!(stats.edges > n, "average degree ~8 expected, got {} edges", stats.edges);

    let fp = net.memory_footprint();
    println!("huge_smoke: built n = {n}, m = {} in {setup:.2?}", stats.edges);
    println!("huge_smoke: network footprint: {fp}");
    assert_eq!(
        fp.adjacency_rows, 0,
        "no node reaches the dense-adjacency degree threshold at average degree 8"
    );
    assert!(
        fp.total_bytes() < STRUCTURE_LIMIT,
        "network footprint {} bytes exceeds the linear budget {STRUCTURE_LIMIT}",
        fp.total_bytes()
    );

    let mut eng =
        Engine::with_resolver(&net, 42, Resolver::sharded(4), |_| Chatter { c: 3, heard: 0 });
    let engine_bytes = eng.internal_memory_bytes();
    println!(
        "huge_smoke: engine internal state {:.1} MiB",
        engine_bytes as f64 / (1u64 << 20) as f64
    );
    assert!(
        engine_bytes < STRUCTURE_LIMIT,
        "engine internal state {engine_bytes} bytes exceeds the linear budget {STRUCTURE_LIMIT}"
    );

    eng.run_to_completion(slots);
    let deliveries = eng.counters().deliveries;
    println!("huge_smoke: {slots} slots, {deliveries} deliveries");
    assert!(deliveries > 0, "the engine must deliver messages at this density");

    // Re-assert *after* the run: pooled phase-1 collection and pooled
    // phase-3 delivery (both engaged here — n = 10⁵ on a 4-way sharded
    // resolver) allocate their shard scratch lazily on first use, so only
    // a post-run measurement proves that scratch is O(n + m) too and that
    // no hidden O(n·threads) buffer appeared.
    let engine_bytes_after = eng.internal_memory_bytes();
    println!(
        "huge_smoke: engine internal state after run {:.1} MiB",
        engine_bytes_after as f64 / (1u64 << 20) as f64
    );
    assert!(
        engine_bytes_after < STRUCTURE_LIMIT,
        "post-run engine state {engine_bytes_after} bytes exceeds the linear budget \
         {STRUCTURE_LIMIT}: pooled collect/deliver scratch is no longer O(n + m)"
    );

    match crn_bench::peak_rss_bytes() {
        Some(bytes) => {
            println!("huge_smoke: peak RSS {:.0} MiB (VmHWM)", bytes as f64 / (1u64 << 20) as f64);
            assert!(
                bytes < PEAK_RSS_LIMIT,
                "peak RSS {bytes} bytes exceeds the {PEAK_RSS_LIMIT}-byte gate: \
                 setup is no longer O(n + m) in memory"
            );
        }
        None => println!("huge_smoke: peak RSS unavailable (no procfs) — RSS gate skipped"),
    }
    println!("huge_smoke: OK");
}
