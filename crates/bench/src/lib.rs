//! Shared helpers for the criterion benches and the `experiments` binary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use crn_core::params::ModelInfo;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::Network;
use crn_workloads::Scenario;

/// Builds a standard benchmark network: topology + channel model at a fixed
/// seed, returning the network and its model parameters.
pub fn bench_network(
    topology: Topology,
    channels: ChannelModel,
    seed: u64,
) -> (Network, ModelInfo) {
    let built = Scenario::new("bench", topology, channels, seed)
        .build()
        .expect("bench scenario must build");
    (built.net, built.model)
}

/// The default small discovery arena used across benches: a 16-node cycle
/// with a 2-channel core out of 6.
pub fn small_discovery_arena() -> (Network, ModelInfo) {
    bench_network(Topology::Cycle { n: 16 }, ChannelModel::SharedCore { c: 6, core: 2 }, 0xBEC5)
}

/// Peak resident-set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. This is a
/// high-water mark: it never decreases, so measure it *after* the workload
/// under test and interpret it as "the process never needed more than
/// this". Used by the huge-sparse bench row and the `huge_smoke` CI gate
/// to prove setup memory stays `O(n + m)`.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_builds() {
        let (net, model) = small_discovery_arena();
        assert_eq!(net.len(), 16);
        assert_eq!(model.k, 2);
    }
}
