//! CGCAST end-to-end benchmark (experiment E8's engine): one full global
//! broadcast — discovery, dedicated channels, distributed edge coloring and
//! dissemination — on small paths and stars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn_bench::bench_network;
use crn_core::cgcast::CGCast;
use crn_core::params::GcastParams;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, NodeId};

fn cgcast_paths(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cgcast_full_run_path");
    group.sample_size(10);
    for &d in &[3usize, 6] {
        let (net, model) = bench_network(
            Topology::Path { n: d + 1 },
            ChannelModel::SharedCore { c: 4, core: 2 },
            19,
        );
        let sched =
            GcastParams { dissemination_phases: d as u64, ..Default::default() }.schedule(&model);
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(&net, 9, |ctx| {
                    CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(1))
                });
                eng.run_to_completion(sched.total_slots());
                eng.counters().deliveries
            })
        });
    }
    group.finish();
}

fn cgcast_star(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cgcast_full_run_star");
    group.sample_size(10);
    let (net, model) =
        bench_network(Topology::Star { leaves: 6 }, ChannelModel::Identical { c: 3 }, 21);
    let sched = GcastParams { dissemination_phases: 2, ..Default::default() }.schedule(&model);
    group.bench_function("star6", |b| {
        b.iter(|| {
            let mut eng = Engine::new(&net, 9, |ctx| {
                CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(1))
            });
            eng.run_to_completion(sched.total_slots());
            eng.counters().deliveries
        })
    });
    group.finish();
}

criterion_group!(benches, cgcast_paths, cgcast_star);
criterion_main!(benches);
