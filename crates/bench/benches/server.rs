//! Loopback load benchmarks for the campaign server (`server_load`).
//!
//! Load-testing the service *is* the bench scenario here: every row
//! drives a real [`Server`] over real sockets on the loopback interface,
//! so the numbers include the accept loop, worker handoff, parser,
//! router, and store locking — the whole request path a remote client
//! would see, minus the network.
//!
//! Rows:
//!
//! * `status_poll_1x64` — one client, 64 sequential `GET /campaigns/{id}`
//!   polls of a completed job (per-request latency, cold connections).
//! * `status_poll_8x8` — 8 concurrent client threads, 8 polls each,
//!   hammering the status endpoint while the scheduler may be mid-run
//!   (the store-lock contention row).
//! * `lifecycle_resubmit` — submit → watch to terminal → fetch results
//!   for an already-journaled campaign: the scheduler restores every
//!   unit from the WAL, so the row measures pure service overhead
//!   (queueing, scheduling, journal replay, serialization), not
//!   simulation time.
//!
//! The group is print-only in `bench_regress`: loopback round-trips on a
//! shared CI runner are scheduler-noise-bound, nothing here should gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crn_server::json::{parse, Json};
use crn_server::{client, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Journal directory removed on drop, failure paths included.
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let path = std::env::temp_dir().join(format!("crn-bench-server-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create bench journal dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let resp = client::post(addr, "/campaigns", Some(body)).expect("submit");
    assert_eq!(resp.status, 201, "submit: {}", resp.text());
    parse(&resp.text()).expect("json").get("id").and_then(Json::as_u64).expect("id")
}

fn wait_terminal(addr: SocketAddr, id: u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let text = client::get(addr, &format!("/campaigns/{id}")).expect("poll").text();
        let state = parse(&text)
            .ok()
            .and_then(|j| j.get("state").and_then(|s| s.as_str().map(str::to_string)))
            .expect("state");
        if state == "completed" {
            return;
        }
        assert!(
            !["killed", "cancelled", "failed"].contains(&state.as_str()),
            "bench campaign ended {state}"
        );
        assert!(Instant::now() < deadline, "bench campaign timed out");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn poll_once(addr: SocketAddr, id: u64) {
    let resp = client::get(addr, &format!("/campaigns/{id}")).expect("status poll");
    assert_eq!(resp.status, 200);
}

fn server_load(criterion: &mut Criterion) {
    let dir = TempDir::new();
    let server = Server::start(ServerConfig {
        journal_dir: dir.0.clone(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // A completed job gives the status endpoint its full payload
    // (progress snapshot + provenance flags) — the production poll shape.
    let done_id = submit(addr, r#"{"kind":"e2","quick":true,"trials":1,"seed":3,"threads":2}"#);
    wait_terminal(addr, done_id);

    let mut group = criterion.benchmark_group("server_load");
    group.sample_size(10);

    group.throughput(Throughput::Elements(64));
    group.bench_with_input(BenchmarkId::from_parameter("status_poll_1x64"), &(), |b, ()| {
        b.iter(|| {
            for _ in 0..64 {
                poll_once(addr, done_id);
            }
        })
    });

    // Concurrency row: launch a longer campaign so at least the early
    // iterations poll a *running* job, then hammer with 8 threads.
    let running_id = submit(addr, r#"{"kind":"e2","quick":true,"trials":8,"seed":4,"threads":2}"#);
    group.bench_with_input(BenchmarkId::from_parameter("status_poll_8x8"), &(), |b, ()| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        for _ in 0..8 {
                            poll_once(addr, running_id);
                        }
                    });
                }
            })
        })
    });
    wait_terminal(addr, running_id);

    // Lifecycle row: the campaign above is fully journaled, so each
    // resubmission restores from the WAL — submit/queue/replay/results
    // without simulation time.
    group.throughput(Throughput::Elements(1));
    let body = r#"{"kind":"e2","quick":true,"trials":8,"seed":4,"threads":2}"#;
    group.bench_with_input(BenchmarkId::from_parameter("lifecycle_resubmit"), &(), |b, ()| {
        b.iter(|| {
            let id = submit(addr, body);
            wait_terminal(addr, id);
            let resp = client::get(addr, &format!("/campaigns/{id}/results")).expect("results");
            assert_eq!(resp.status, 200);
            resp.body.len()
        })
    });

    group.finish();
    server.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = server_load
}
criterion_main!(benches);
