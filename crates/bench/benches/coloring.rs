//! Coloring benchmarks (experiment E7's engine): line-graph construction
//! and the Luby-style 2Δ coloring across graph sizes, plus the greedy
//! baseline of ablation A3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn_core::coloring::{color_graph, greedy_edge_coloring, LineGraph};
use crn_sim::graph::Graph;
use crn_sim::rng::stream_rng;
use crn_sim::topology::Topology;
use crn_sim::{Edge, NodeId};

fn build_edges(n: usize) -> (Vec<Edge>, usize) {
    let mut rng = stream_rng(17, n as u64);
    let topo = Topology::ErdosRenyi { n, p: (6.0 / n as f64).min(1.0) };
    let raw = topo.edges(&mut rng);
    let g = Graph::from_edges(n, &raw);
    let edges = g.edges().into_iter().map(|(a, b)| Edge::new(NodeId(a), NodeId(b))).collect();
    (edges, g.max_degree())
}

fn luby_coloring(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("luby_line_graph_coloring");
    for &n in &[64usize, 256, 1024] {
        let (edges, delta) = build_edges(n);
        let lg = LineGraph::of(&edges);
        let palette = (2 * delta.max(1)) as u32;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = stream_rng(23, 0);
                color_graph(lg.adjacency(), palette, 10_000, &mut rng).phases_used
            })
        });
    }
    group.finish();
}

fn greedy_coloring(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("greedy_edge_coloring");
    for &n in &[64usize, 256, 1024] {
        let (edges, _) = build_edges(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| greedy_edge_coloring(&edges).len())
        });
    }
    group.finish();
}

fn line_graph_construction(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("line_graph_construction");
    for &n in &[64usize, 256, 1024] {
        let (edges, _) = build_edges(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| LineGraph::of(&edges).len())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = luby_coloring, greedy_coloring, line_graph_construction
}
criterion_main!(benches);
