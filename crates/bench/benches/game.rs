//! Hitting-game benchmarks (experiment E9's engine): rounds-per-second of
//! the game machinery and full games with the uniform and reduction
//! players.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_lowerbounds::game::HittingGame;
use crn_lowerbounds::players::{play, ReductionPlayer, UniformRandomPlayer};
use crn_sim::rng::stream_rng;
use crn_sim::NodeId;

fn uniform_player(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("hitting_game_uniform_player");
    for &(c, k) in &[(8usize, 2usize), (16, 4), (32, 8)] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("c{c}k{k}")), &c, |b, _| {
            b.iter(|| {
                let mut rng = stream_rng(31, 0);
                let mut game = HittingGame::new(c, k, &mut rng);
                let mut player = UniformRandomPlayer::new(c);
                play(&mut game, &mut player, &mut rng, 10_000_000).unwrap()
            })
        });
    }
    group.finish();
}

fn reduction_player(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("hitting_game_cseek_reduction");
    group.sample_size(10);
    let (c, k) = (8usize, 2usize);
    let m = ModelInfo { n: 2, c, delta: 1, k, kmax: k };
    let sched = SeekParams::default().schedule(&m);
    group.bench_function("c8k2", |b| {
        b.iter(|| {
            let mut rng = stream_rng(37, 0);
            let mut game = HittingGame::new(c, k, &mut rng);
            let mut player = ReductionPlayer::new(
                CSeek::new(NodeId(0), sched, false),
                CSeek::new(NodeId(1), sched, false),
                77,
            );
            play(&mut game, &mut player, &mut rng, sched.total_slots())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = uniform_player, reduction_player
}
criterion_main!(benches);
