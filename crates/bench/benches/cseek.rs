//! CSEEK end-to-end benchmarks (experiments E2–E5's engine): one full
//! discovery run across the knobs of Theorem 4 — channels c, overlap k,
//! and degree Δ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn_bench::bench_network;
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::Engine;

fn cseek_vs_c(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cseek_full_run_vs_c");
    group.sample_size(10);
    for &c in &[4usize, 8, 12] {
        let (net, model) =
            bench_network(Topology::Cycle { n: 16 }, ChannelModel::SharedCore { c, core: 2 }, 11);
        let sched = SeekParams::default().schedule(&model);
        group.bench_with_input(BenchmarkId::from_parameter(c), &c, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(&net, 5, |ctx| CSeek::new(ctx.id, sched, false));
                eng.run_to_completion(sched.total_slots());
                eng.counters().deliveries
            })
        });
    }
    group.finish();
}

fn cseek_vs_delta(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("cseek_full_run_vs_delta");
    group.sample_size(10);
    for &delta in &[8usize, 16, 32] {
        let (net, model) = bench_network(
            Topology::Star { leaves: delta },
            ChannelModel::CrowdedSplit { c: 4, k: 2, hot: 1, k_hot: 1 },
            13,
        );
        let sched = SeekParams::default().schedule(&model);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(&net, 5, |ctx| CSeek::new(ctx.id, sched, false));
                eng.run_to_completion(sched.total_slots());
                eng.counters().deliveries
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cseek_vs_c, cseek_vs_delta);
criterion_main!(benches);
