//! COUNT benchmarks (experiment E1's engine): wall-clock cost of one COUNT
//! execution across broadcaster counts — Lemma 1 says the slot cost is
//! O(lg² n) independent of m; this bench confirms the wall-clock follows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crn_core::count::{CountProtocol, Role};
use crn_core::params::{CountParams, ModelInfo};
use crn_sim::{Engine, GlobalChannel, LocalChannel, Network, NodeId};

fn arena(m: usize) -> Network {
    let n = m + 1;
    let mut b = Network::builder(n);
    for v in 0..n {
        b.set_channels(NodeId(v as u32), vec![GlobalChannel(0), GlobalChannel(1 + v as u32)]);
    }
    for leaf in 1..n {
        b.add_edge(NodeId(0), NodeId(leaf as u32));
    }
    b.build().unwrap()
}

fn count_bench(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("count_execution");
    let model = ModelInfo { n: 256, c: 2, delta: 256, k: 1, kmax: 1 };
    let sched = CountParams::default().schedule(&model);
    for &m in &[1usize, 8, 64, 255] {
        let net = arena(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(&net, 3, |ctx| {
                    let role = if ctx.id == NodeId(0) { Role::Listener } else { Role::Broadcaster };
                    CountProtocol::new(ctx.id, role, sched, LocalChannel(0))
                });
                eng.run_to_completion(sched.total_slots());
                eng.counters().deliveries
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = count_bench
}
criterion_main!(benches);
