//! Engine micro-benchmarks: raw slot throughput of the simulator substrate,
//! across network sizes and action mixes. Establishes the node-slot cost
//! every higher-level number is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crn_bench::bench_network;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Action, Engine, Feedback, LocalChannel, Protocol, SlotCtx};
use rand::Rng;

/// A protocol exercising the engine's hot path: random channel, random role.
struct Chatter {
    c: u16,
    heard: u64,
}

impl Protocol for Chatter {
    type Message = u32;
    type Output = u64;
    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(0.5) {
            Action::Broadcast { channel, message: 7 }
        } else {
            Action::Listen { channel }
        }
    }
    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<u32>) {
        if matches!(fb, Feedback::Heard(_)) {
            self.heard += 1;
        }
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn into_output(self) -> u64 {
        self.heard
    }
}

fn engine_throughput(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("engine_slot_throughput");
    for &n in &[16usize, 64, 256, 1024] {
        let (net, model) = bench_network(
            Topology::RandomGeometric { n, radius: (8.0 / n as f64).sqrt() },
            ChannelModel::SharedCore { c: 6, core: 2 },
            7,
        );
        let slots = 256u64;
        group.throughput(Throughput::Elements(slots * n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(&net, 42, |_| Chatter { c: model.c as u16, heard: 0 });
                eng.run_to_completion(slots);
                eng.counters().deliveries
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = engine_throughput
}
criterion_main!(benches);
