//! Engine micro-benchmarks: raw slot throughput of the simulator substrate.
//!
//! Seven suites:
//!
//! * `engine_slot_throughput` — a topology matrix (star / random dense
//!   Erdős–Rényi / random geometric) at n ∈ {100, 1k, 5k}, comparing the
//!   optimized `Resolver::Auto` against the seed's `Resolver::Naive`
//!   listener×broadcaster scan. This is the repo's perf trajectory for the
//!   hot path every experiment sits on.
//! * `small_slot_200` — the amortized regime: n = 200, 1024 slots. Per-slot
//!   fixed costs dominate here; this is the row that keeps the sharded
//!   resolver's per-slot overhead (worker wake/park, formerly thread spawn)
//!   honest — including `p1_*` rows with pooled phase-1 collection forced
//!   on and `p3_batched_*` rows with pooled phase-3 delivery forced on
//!   too (the fully pooled pipeline).
//! * `trial_reuse_200` — the trial-runner regime: 32 runs of 64 slots,
//!   fresh engine per run vs one engine re-armed by `Engine::reset` (what
//!   the `crn-workloads` runners do per worker).
//! * `spectrum_churn` — the per-slot fixed cost of the primary-user
//!   spectrum layer against the spectrum-free baseline.
//! * `campaign_resume` — the overhead of the resumable campaign layer:
//!   lifecycle bookkeeping, on-disk journaling, and resume-by-replay over
//!   the bare stateful trial runner.
//! * `dense_broadcast_5000` — the acceptance scenario: a random graph with
//!   n = 5000 and average degree ≥ 64, every node broadcasting or listening
//!   each slot on a handful of shared channels. The optimized resolver must
//!   beat the naive one by ≥ 2× per slot here.
//! * `huge_sparse_1e6` — the memory-layout acceptance scenario: a streaming
//!   Erdős–Rényi graph at n = 10⁶, average degree 8. The timing rows come
//!   with a memory report (network footprint, engine internal state, and
//!   process peak RSS) proving setup stays O(n + m) in memory; see
//!   [`huge_sparse`].
//!
//! Results are printed per benchmark and written as JSON on exit
//! (`BENCH_engine.json`, or the path in `$CRN_BENCH_JSON`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Engine, Feedback, FeedbackBatch,
    GlobalChannel, LocalChannel, Network, Protocol, Resolver, SlotCtx, SpectrumDynamics, StatsMode,
};
use rand::{Rng, RngCore};

/// A protocol exercising the engine's hot path: random channel, random role,
/// every slot (no sleeping — maximum per-slot resolution load). Ported to
/// the batched act path (two guaranteed words per slot, pre-filled in one
/// bulk draw) and the batched feedback path (reserve 0 — the body never
/// draws), like the repo's real protocols.
struct Chatter {
    c: u16,
    heard: u64,
}

impl Chatter {
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<u32> {
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        if ctx.rng.gen_bool(0.5) {
            Action::Broadcast { channel, message: 7 }
        } else {
            Action::Listen { channel }
        }
    }
}

impl Protocol for Chatter {
    type Message = u32;
    type Output = u64;
    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u32> {
        self.act_any(ctx)
    }
    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<u32>>) {
        act_batch_buffered(batch, ctx, out, |_| 2, |p, sctx| p.act_any(sctx));
    }
    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u32>) {
        if matches!(fb, Feedback::Heard(_)) {
            self.heard += 1;
        }
    }
    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, u32>) {
        feedback_batch_buffered(
            batch,
            ctx,
            fb,
            |_| 0,
            |p, _sctx, f| {
                if matches!(f, Feedback::Heard(_)) {
                    p.heard += 1;
                }
            },
        );
    }
    fn is_complete(&self) -> bool {
        false
    }
    fn into_output(self) -> u64 {
        self.heard
    }
}

fn build(topology: &Topology, channels: &ChannelModel, seed: u64) -> Network {
    // Approximate stats: the benches measure slot throughput, and exact
    // all-source-BFS diameters would dominate setup at n = 5000.
    Network::generate_with_stats(topology, channels, seed, StatsMode::Approximate)
        .expect("bench network must build")
}

fn run_slots(net: &Network, resolver: Resolver, c: u16, slots: u64) -> u64 {
    let mut eng = Engine::with_resolver(net, 42, resolver, |_| Chatter { c, heard: 0 });
    eng.run_to_completion(slots);
    eng.counters().deliveries
}

/// [`run_slots`] with per-phase wall-clock timing enabled — the
/// enabled-but-unscraped observability path. Compared against the `auto`
/// row, the gap is the whole cost of `Engine::set_phase_timing(true)`
/// (the ISSUE acceptance bound is < 3% in this amortized regime).
fn run_slots_timed(net: &Network, resolver: Resolver, c: u16, slots: u64) -> u64 {
    let mut eng = Engine::with_resolver(net, 42, resolver, |_| Chatter { c, heard: 0 });
    eng.set_phase_timing(true);
    eng.run_to_completion(slots);
    assert_eq!(eng.phase_timings().expect("timing enabled").slots, slots);
    eng.counters().deliveries
}

/// [`run_slots`] with phase-1 pooled collection forced on (threshold 0) —
/// the batched `act_batch` chunks run on the engine's worker pool.
fn run_slots_pooled_p1(net: &Network, resolver: Resolver, c: u16, slots: u64) -> u64 {
    let mut eng = Engine::with_resolver(net, 42, resolver, |_| Chatter { c, heard: 0 });
    eng.set_phase1_pool_min_nodes(0);
    eng.run_to_completion(slots);
    eng.counters().deliveries
}

/// [`run_slots`] with pooled phase-1 collection *and* pooled phase-3
/// delivery forced on (both thresholds 0) — the fully pooled pipeline:
/// `act_batch` chunks, sharded resolution, and `feedback_batch` chunks all
/// run on the persistent worker pool.
fn run_slots_pooled_p3(net: &Network, resolver: Resolver, c: u16, slots: u64) -> u64 {
    let mut eng = Engine::with_resolver(net, 42, resolver, |_| Chatter { c, heard: 0 });
    eng.set_phase1_pool_min_nodes(0);
    eng.set_phase3_pool_min_nodes(0);
    eng.run_to_completion(slots);
    eng.counters().deliveries
}

/// Topology matrix × resolver. Slot counts shrink with n so a single
/// iteration stays comparable across sizes.
fn engine_throughput(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("engine_slot_throughput");
    group.sample_size(10);

    let sizes: &[(usize, u64)] = &[(100, 256), (1000, 64), (5000, 16)];
    for &(n, slots) in sizes {
        let nf = n as f64;
        let configs: Vec<(&str, Topology, ChannelModel)> = vec![
            ("star", Topology::Star { leaves: n - 1 }, ChannelModel::Identical { c: 2 }),
            (
                "dense",
                // Average degree ~16, independent of n.
                Topology::ErdosRenyi { n, p: (16.0 / (nf - 1.0)).min(1.0) },
                ChannelModel::Identical { c: 3 },
            ),
            (
                "geo",
                // n·π·r² ≈ 16 expected neighbors.
                Topology::RandomGeometric {
                    n,
                    radius: (16.0 / (std::f64::consts::PI * nf)).sqrt(),
                },
                ChannelModel::SharedCore { c: 4, core: 2 },
            ),
        ];
        for (name, topology, channels) in configs {
            let net = build(&topology, &channels, 7);
            let c = net.channels_per_node() as u16;
            group.throughput(Throughput::Elements(slots * n as u64));
            for (rname, resolver) in [("auto", Resolver::Auto), ("naive", Resolver::Naive)] {
                group.bench_with_input(
                    BenchmarkId::from_parameter(format!("{name}/n{n}/{rname}")),
                    &n,
                    |b, _| b.iter(|| run_slots(&net, resolver, c, slots)),
                );
            }
        }
    }
    group.finish();
}

/// Small-slot regime: n = 200 on a sparse random graph, many slots — the
/// amortized-cost scenario the paper's Ω(polylog n)-slot primitives live
/// in, where per-slot overhead (not peak throughput) decides wall-clock.
/// This is the scenario the engine's persistent worker pool exists for:
/// with per-slot thread spawning the `sharded*` rows here pay a full
/// spawn/join per slot; with the parked pool they pay one wake/park
/// round-trip. The `auto`/`naive` rows are gated by `bench_regress`; the
/// `sharded*` rows need idle cores and are tracked but exempt (see
/// `SHARDED_EXEMPT` in `bench_regress`).
fn small_slot(criterion: &mut Criterion) {
    let n = 200usize;
    let slots = 1024u64;
    // Average degree ~8: enough contention for several touched channels per
    // slot (so the sharded path actually engages), small enough that one
    // slot is only a few microseconds of resolution work.
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = build(&topology, &channels, 13);

    let mut group = criterion.benchmark_group("small_slot_200");
    group.sample_size(10);
    group.throughput(Throughput::Elements(slots * n as u64));
    for (rname, resolver) in [
        ("auto", Resolver::Auto),
        ("naive", Resolver::Naive),
        ("sharded2", Resolver::ParallelSharded { threads: 2 }),
        ("sharded4", Resolver::ParallelSharded { threads: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| run_slots(&net, resolver, 3, slots))
        });
    }
    // The `auto` row with per-phase timers enabled: prices the
    // enabled-but-unscraped observability path against `auto` (the
    // acceptance bound is < 3% overhead in this regime).
    group.bench_with_input(BenchmarkId::from_parameter("auto_timed"), &n, |b, _| {
        b.iter(|| run_slots_timed(&net, Resolver::Auto, 3, slots))
    });
    // Pooled phase-1 collection on top of the sharded engine (forced on —
    // n = 200 is below the default threshold). Like all sharded rows these
    // need idle cores for wall-clock wins and are bench_regress-exempt by
    // the `sharded*` suffix; they keep the *overhead* of the second
    // per-slot pool dispatch honest on this container.
    for (rname, resolver) in [
        ("p1_sharded2", Resolver::ParallelSharded { threads: 2 }),
        ("p1_sharded4", Resolver::ParallelSharded { threads: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| run_slots_pooled_p1(&net, resolver, 3, slots))
        });
    }
    // The fully pooled pipeline: pooled phase-1 collection *and* pooled
    // phase-3 delivery forced on (n = 200 is below both default
    // thresholds). bench_regress-exempt by the `sharded*` suffix; these
    // rows price the third per-slot pool dispatch in the worst (fully
    // amortized) regime.
    for (rname, resolver) in [
        ("p3_batched_sharded2", Resolver::ParallelSharded { threads: 2 }),
        ("p3_batched_sharded4", Resolver::ParallelSharded { threads: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| run_slots_pooled_p3(&net, resolver, 3, slots))
        });
    }
    group.finish();
}

/// Trial-runner regime: many short runs on one network, the shape of every
/// experiment sweep in `crn-workloads`. `fresh_*` rows construct a new
/// engine per trial (the pre-reuse runner behavior); `reuse_*` rows keep
/// one engine and re-arm it with `Engine::reset` — what the trial runners
/// now do per worker. The auto rows are gated by `bench_regress`; the
/// sharded rows (per-trial pool spawn vs parked pool, pooled phase-1
/// forced on) are exempt like every `sharded*` row but make the per-trial
/// thread-setup cost visible.
fn trial_reuse(criterion: &mut Criterion) {
    let n = 200usize;
    let trials = 32u64;
    let slots = 64u64;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = build(&topology, &channels, 13);

    let fresh = |resolver: Resolver, phase1_min: usize| {
        let mut total = 0u64;
        for t in 0..trials {
            let mut eng =
                Engine::with_resolver(&net, 42 + t, resolver, |_| Chatter { c: 3, heard: 0 });
            eng.set_phase1_pool_min_nodes(phase1_min);
            eng.run_to_completion(slots);
            total += eng.counters().deliveries;
        }
        total
    };
    let reuse = |resolver: Resolver, phase1_min: usize| {
        let mut eng = Engine::with_resolver(&net, 42, resolver, |_| Chatter { c: 3, heard: 0 });
        eng.set_phase1_pool_min_nodes(phase1_min);
        let mut total = 0u64;
        for t in 0..trials {
            if t > 0 {
                eng.reset(42 + t, |_| Chatter { c: 3, heard: 0 });
            }
            eng.run_to_completion(slots);
            total += eng.counters().deliveries;
        }
        total
    };

    let mut group = criterion.benchmark_group("trial_reuse_200");
    group.sample_size(10);
    group.throughput(Throughput::Elements(trials * slots * n as u64));
    group.bench_with_input(BenchmarkId::from_parameter("fresh_auto"), &n, |b, _| {
        b.iter(|| fresh(Resolver::Auto, usize::MAX))
    });
    group.bench_with_input(BenchmarkId::from_parameter("reuse_auto"), &n, |b, _| {
        b.iter(|| reuse(Resolver::Auto, usize::MAX))
    });
    group.bench_with_input(BenchmarkId::from_parameter("fresh_sharded2"), &n, |b, _| {
        b.iter(|| fresh(Resolver::ParallelSharded { threads: 2 }, 0))
    });
    group.bench_with_input(BenchmarkId::from_parameter("reuse_sharded2"), &n, |b, _| {
        b.iter(|| reuse(Resolver::ParallelSharded { threads: 2 }, 0))
    });
    group.finish();
}

/// Primary-user churn overhead: the `small_slot_200` scenario with each
/// spectrum-dynamics flavour installed, against the spectrum-free baseline
/// (`none`). The masked slots do strictly less resolution work, so this
/// group measures the *fixed* per-slot cost of the spectrum layer (state
/// advance + mask probes), which is what must stay negligible. Gated by
/// `bench_regress` since its baseline was recalibrated on the CI
/// container (it was print-only while the committed baseline predated
/// that machine).
fn spectrum_churn(criterion: &mut Criterion) {
    let n = 200usize;
    let slots = 1024u64;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = build(&topology, &channels, 13);

    // A periodic replay pattern: channel 0 busy 1-in-4 slots, channel 1
    // busy 1-in-8.
    let mut replay = vec![Vec::new(); 8];
    for (t, step) in replay.iter_mut().enumerate() {
        if t % 4 == 0 {
            step.push(GlobalChannel(0));
        }
        if t % 8 == 4 {
            step.push(GlobalChannel(1));
        }
    }

    let rows: [(&str, SpectrumDynamics); 4] = [
        ("none", SpectrumDynamics::Static),
        ("markov", SpectrumDynamics::MarkovOnOff { p_busy: 0.05, p_free: 0.2 }),
        ("poisson", SpectrumDynamics::PoissonBursts { rate: 0.05, mean_len: 4.0 }),
        ("replay", SpectrumDynamics::TraceReplay(replay)),
    ];

    let mut group = criterion.benchmark_group("spectrum_churn");
    group.sample_size(10);
    group.throughput(Throughput::Elements(slots * n as u64));
    for (rname, dynamics) in rows {
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| {
                let mut eng = Engine::new(&net, 42, |_| Chatter { c: 3, heard: 0 });
                eng.set_spectrum(dynamics.clone());
                // The bench measures the hot path, not the post-run
                // analysis: keep the per-slot history out of the loop.
                if let Some(sp) = eng.spectrum_mut() {
                    sp.set_record_history(false);
                }
                eng.run_to_completion(slots);
                eng.counters().deliveries
            })
        });
    }
    group.finish();
}

/// Campaign-runner overhead: a `trial_reuse_200`-shaped workload (n = 200,
/// 32 units of 128 slots) driven through the resumable campaign layer.
/// Three rows:
///
/// * `in_memory` — `run_campaign` with no journal: lifecycle + wave
///   scheduling on top of the bare stateful runner.
/// * `journaled` — the same campaign checkpointed to a fresh on-disk
///   journal (create, one append per unit, one fsync per wave). The
///   journal cost is *fixed per wave*, not per slot: a no-fault campaign
///   is one wave, so this row pays file creation plus ~3 fsyncs total,
///   and the acceptance claim — journaled within 5% of `in_memory` — holds
///   for any campaign at least this long (~40 ms; real sweeps run
///   seconds). The margin is fsync latency, so the group is print-only in
///   `bench_regress` (`PRINT_ONLY_GROUPS`): filesystem differences across
///   runners would gate on hardware, not code.
/// * `resume_replay` — resuming an already-complete journal: pure
///   parse-and-restore, no units run. This bounds the fixed cost a crash
///   recovery pays before the first new wave is scheduled.
fn campaign_resume(criterion: &mut Criterion) {
    use crn_workloads::campaign::{run_campaign, ArmResult, ArmSpec, CampaignSpec, FaultPlan};
    use crn_workloads::runner::{EngineCell, TrialOpts};

    let n = 200usize;
    let slots = 128u64;
    let topology = Topology::ErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 3 };
    let net = build(&topology, &channels, 13);

    let arms: Vec<ArmSpec> = (0..4).map(|a| ArmSpec::new(format!("arm{a}"), 8)).collect();
    let spec = CampaignSpec::new("bench-campaign", arms, 42);
    let opts = TrialOpts::default();
    let run = |journal: Option<&std::path::Path>| {
        run_campaign(&spec, 1, journal, &FaultPlan::none(), EngineCell::new, |cell, u| {
            let seed = spec.seed ^ ((u.arm as u64) << 32) ^ u.trial as u64;
            let out = cell.run_trial(
                &net,
                |_| Chatter { c: 3, heard: 0 },
                seed,
                slots,
                &opts,
                |_, _| false,
            );
            ArmResult::Done { output: out }
        })
        .expect("bench campaign must run")
    };

    let mut path = std::env::temp_dir();
    path.push(format!("crn-bench-campaign-{}.crnj", std::process::id()));

    let mut group = criterion.benchmark_group("campaign_resume");
    group.sample_size(10);
    group.throughput(Throughput::Elements(spec.total_trials() as u64 * slots * n as u64));
    group.bench_with_input(BenchmarkId::from_parameter("in_memory"), &n, |b, _| {
        b.iter(|| run(None))
    });
    group.bench_with_input(BenchmarkId::from_parameter("journaled"), &n, |b, _| {
        b.iter(|| {
            // A fresh journal each iteration: this times the checkpoint
            // path, not a resume of the previous iteration's file.
            std::fs::remove_file(&path).ok();
            run(Some(&path))
        })
    });
    std::fs::remove_file(&path).ok();
    run(Some(&path)); // leave one *complete* journal for the replay row
    group.bench_with_input(BenchmarkId::from_parameter("resume_replay"), &n, |b, _| {
        b.iter(|| {
            let report = run(Some(&path));
            assert!(report.resumed, "replay row must restore, not re-run");
            report
        })
    });
    std::fs::remove_file(&path).ok();
    group.finish();
}

/// Acceptance scenario: dense broadcast storm. Random graph, n = 5000,
/// average degree ≥ 64, all nodes broadcasting-or-listening on 2 shared
/// channels. `auto` must be ≥ 2× faster per slot than `naive` here.
fn dense_broadcast(criterion: &mut Criterion) {
    let n = 5000usize;
    let slots = 8u64;
    // Expected degree 65, one above the >= 64 acceptance floor: the average
    // degree concentrates within ~0.1 of its expectation at this size, so the
    // assert below cannot flip on an RNG stream or seed change (whereas
    // p = 64/(n-1) would sit exactly on the floor, a coin flip).
    let topology = Topology::ErdosRenyi { n, p: 65.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::Identical { c: 2 };
    let net = build(&topology, &channels, 11);
    let avg_degree = 2.0 * net.stats().edges as f64 / n as f64;
    assert!(avg_degree >= 64.0, "acceptance scenario needs avg degree >= 64, got {avg_degree:.1}");

    let mut group = criterion.benchmark_group("dense_broadcast_5000");
    group.sample_size(10);
    group.throughput(Throughput::Elements(slots * n as u64));
    for (rname, resolver) in [
        ("auto", Resolver::Auto),
        ("broadcaster", Resolver::BroadcasterCentric),
        ("listener", Resolver::ListenerCentric),
        ("naive", Resolver::Naive),
        // Channel-sharded phase 2. Wall-clock gains require idle cores: a
        // single-core runner shows the ~thread-spawn overhead instead, so
        // these rows are reported but not gated by bench_regress (see
        // `SHARDED_EXEMPT` there).
        ("sharded2", Resolver::ParallelSharded { threads: 2 }),
        ("sharded4", Resolver::ParallelSharded { threads: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| run_slots(&net, resolver, 2, slots))
        });
    }
    // Fully pooled pipeline (phase-1 collection + phase-3 delivery both on
    // the worker pool; n = 5000 clears the phase-3 default threshold, the
    // explicit force keeps the row's meaning pinned). `sharded*`-suffix
    // exempt in bench_regress: wall-clock wins need idle cores.
    for (rname, resolver) in [
        ("p3_batched_sharded2", Resolver::ParallelSharded { threads: 2 }),
        ("p3_batched_sharded4", Resolver::ParallelSharded { threads: 4 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| run_slots_pooled_p3(&net, resolver, 2, slots))
        });
    }
    group.finish();
}

/// Memory-layout acceptance scenario: n = 10⁶ on a *streaming* sparse
/// Erdős–Rényi graph (average degree 8, skip-sampled — the legacy
/// `ErdosRenyi` variant would draw n²/2 coin flips), 3 shared channels.
///
/// The rows time the per-slot hot path (engine re-armed with
/// `Engine::reset` per iteration, the trial-runner shape); next to them
/// the bench prints the memory report the layout refactor is accountable
/// to — network footprint, engine internal state, and the process peak
/// RSS high-water mark (`VmHWM`) after the workload. Any quadratic term
/// (the old dense per-node adjacency bitset alone would be n²/8 = 125 GB)
/// shows up here as an OOM, not a subtle slowdown. A `total_bytes`
/// assert keeps the linear claim machine-checked even in bench runs; the
/// CI gate proper is the `huge_smoke` binary at n = 10⁵.
///
/// Timing rows are print-only in `bench_regress` (`PRINT_ONLY_GROUPS`):
/// at this size the medians track memory bandwidth, which varies more
/// across runners than the gated pack's cache-resident rows, so they are
/// reported but not gated until a CI-runner baseline is committed.
fn huge_sparse(criterion: &mut Criterion) {
    let n = 1_000_000usize;
    let slots = 2u64;
    let topology = Topology::SparseErdosRenyi { n, p: 8.0 / (n as f64 - 1.0) };
    let channels = ChannelModel::SharedCore { c: 3, core: 2 };

    let t0 = std::time::Instant::now();
    let net = build(&topology, &channels, 17);
    let setup = t0.elapsed();
    let fp = net.memory_footprint();
    println!(
        "huge_sparse_1e6: built n = {n}, m = {} in {:.2?} (streaming generation)",
        net.stats().edges,
        setup
    );
    println!("huge_sparse_1e6: network footprint: {fp}");
    assert!(
        fp.total_bytes() < 256 << 20,
        "network footprint must stay O(n + m) at n = 1e6, got {} bytes",
        fp.total_bytes()
    );

    let mut group = criterion.benchmark_group("huge_sparse_1e6");
    group.sample_size(10);
    group.throughput(Throughput::Elements(slots * n as u64));
    for (rname, resolver) in [("auto", Resolver::Auto), ("sharded4", Resolver::sharded(4))] {
        let mut eng = Engine::with_resolver(&net, 42, resolver, |_| Chatter { c: 3, heard: 0 });
        println!(
            "huge_sparse_1e6/{rname}: engine internal state {:.1} MiB",
            eng.internal_memory_bytes() as f64 / (1u64 << 20) as f64
        );
        let mut trial = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(rname), &n, |b, _| {
            b.iter(|| {
                trial += 1;
                eng.reset(42 + trial, |_| Chatter { c: 3, heard: 0 });
                eng.run_to_completion(slots);
                eng.counters().deliveries
            })
        });
    }
    // High-water mark measured after the rows: everything above — setup,
    // both engines, the slot loops — fits under it.
    match crn_bench::peak_rss_bytes() {
        Some(bytes) => {
            println!(
                "huge_sparse_1e6: peak RSS {:.0} MiB (VmHWM)",
                bytes as f64 / (1u64 << 20) as f64
            )
        }
        None => println!("huge_sparse_1e6: peak RSS unavailable (no procfs)"),
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = engine_throughput, small_slot, trial_reuse, spectrum_churn, campaign_resume,
        dense_broadcast, huge_sparse
}
criterion_main!(benches);
