//! Concrete RNGs. Only [`SmallRng`] is provided.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the algorithm `rand` 0.8 uses for `SmallRng` on 64-bit
/// platforms. Fast, small state, more than adequate quality for simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

#[inline]
fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 state expansion, as recommended by the xoshiro authors
        // (and as real rand 0.8 does).
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = split_mix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, but be defensive anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Bulk draw with the state held in locals across the whole loop, so the
    /// optimizer keeps it in registers instead of spilling through `self`
    /// after every word. Produces exactly the `next_u64` stream.
    fn fill_u64s(&mut self, dest: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for word in dest {
            *word = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vector() {
        // Golden values for xoshiro256++ with SplitMix64 seed expansion.
        // The first output for seed 0 (0x53175d61490b23df) matches the
        // published `rand_xoshiro` test vector for
        // `Xoshiro256PlusPlus::seed_from_u64(0)`, confirming this is the
        // reference algorithm; the remaining literals pin the stream so any
        // accidental change to a constant breaks this test (the statistical
        // experiment thresholds in crn-workloads depend on the exact stream).
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![0x53175d61490b23df, 0x61da6f3dc380d507, 0x5c0fdf91ec9a7bfc, 0x02eebf8c3bbe5e1a]
        );
        let mut rng = SmallRng::seed_from_u64(42);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![0xd0764d4f4476689f, 0x519e4174576f3791, 0xfbe07cfb0c24ed8c, 0xb37d9f600cd835b8]
        );
    }
}
