//! Slice sampling helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// One uniformly random element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements, uniformly without replacement (all of them
    /// if `amount >= len`). Order of the returned elements is random.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> impl Iterator<Item = &Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> impl Iterator<Item = &T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter().map(move |i| &self[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_is_distinct_and_bounded() {
        let mut rng = SmallRng::seed_from_u64(6);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 7).copied().collect();
        assert_eq!(picked.len(), 7);
        let mut d = picked.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 7, "no duplicates");
        let all: Vec<u32> = v.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(7);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert!(!v.is_empty() || v.choose(&mut rng).is_none());
    }
}
