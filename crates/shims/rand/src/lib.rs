//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace provides its own implementation of the few `rand` items the
//! simulator relies on: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++, the same
//! algorithm real `rand` 0.8 uses for `SmallRng` on 64-bit targets), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! Determinism is the only contract that matters here: the simulator derives
//! every stream from explicit seeds, so results are reproducible bit-for-bit
//! across runs and platforms. No claim of statistical equivalence with the
//! real `rand` crate is made (and none is needed — streams never mix).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw random bits (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random value interface.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(3..17u16);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
