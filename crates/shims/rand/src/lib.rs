//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace provides its own implementation of the few `rand` items the
//! simulator relies on: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`] (xoshiro256++, the same
//! algorithm real `rand` 0.8 uses for `SmallRng` on 64-bit targets), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`, `choose_multiple`).
//!
//! Determinism is the only contract that matters here: the simulator derives
//! every stream from explicit seeds, so results are reproducible bit-for-bit
//! across runs and platforms. No claim of statistical equivalence with the
//! real `rand` crate is made (and none is needed — streams never mix).

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with consecutive outputs of [`RngCore::next_u64`] — the
    /// bulk-draw entry point for batched consumers (the simulator's action
    /// collection, Erdős–Rényi edge sampling). The stream is *identical* to
    /// calling `next_u64` `dest.len()` times: implementations may only
    /// optimize how the words are produced, never which words.
    fn fill_u64s(&mut self, dest: &mut [u64]) {
        for word in dest {
            *word = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_u64s(&mut self, dest: &mut [u64]) {
        (**self).fill_u64s(dest)
    }
}

/// Inline prefill capacity of [`BufferedRng`]. Reserves beyond it are
/// silently capped — the cap only shortens the prefill, never changes the
/// stream (excess draws fall through to the source one word at a time).
pub const BUFFERED_RNG_INLINE_WORDS: usize = 8;

/// A buffered façade over an [`RngCore`]: up to `reserve` words (capped at
/// [`BUFFERED_RNG_INLINE_WORDS`]) are drawn up front in one
/// [`RngCore::fill_u64s`] call into an inline stack buffer, served first;
/// any draw past the prefill falls through to the source. The observable
/// stream is *identical* to using the source directly — the façade only
/// changes how many times the source's state is loaded and stored, never
/// which words come out — so batched consumers (the simulator's
/// `act_batch` path) can amortize per-draw RNG state traffic without
/// perturbing results.
///
/// The reserve must be a **lower bound** on the words actually consumed:
/// over-reserving would pull words out of the source that an unbuffered
/// consumer never draws, desynchronizing the stream. Under-consumption is
/// caught by a debug assertion on drop.
pub struct BufferedRng<'a, R: RngCore> {
    src: &'a mut R,
    words: [u64; BUFFERED_RNG_INLINE_WORDS],
    len: u32,
    pos: u32,
}

impl<'a, R: RngCore> BufferedRng<'a, R> {
    /// Wraps `src`, pre-drawing `reserve.min(BUFFERED_RNG_INLINE_WORDS)`
    /// words in one bulk call.
    pub fn with_reserve(src: &'a mut R, reserve: usize) -> Self {
        let n = reserve.min(BUFFERED_RNG_INLINE_WORDS);
        let mut words = [0u64; BUFFERED_RNG_INLINE_WORDS];
        src.fill_u64s(&mut words[..n]);
        BufferedRng { src, words, len: n as u32, pos: 0 }
    }

    /// Pre-drawn words not yet consumed. Must reach 0 before drop: a
    /// reserve that exceeds actual consumption breaks stream identity.
    pub fn reserved_remaining(&self) -> usize {
        (self.len - self.pos) as usize
    }
}

impl<R: RngCore> RngCore for BufferedRng<'_, R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos < self.len {
            let word = self.words[self.pos as usize];
            self.pos += 1;
            word
        } else {
            self.src.next_u64()
        }
    }
}

impl<R: RngCore> Drop for BufferedRng<'_, R> {
    fn drop(&mut self) {
        debug_assert!(
            self.pos >= self.len || std::thread::panicking(),
            "BufferedRng dropped with {} reserved word(s) unconsumed — the reserve must be a \
             lower bound on the draws actually made, or the source stream desynchronizes",
            self.len - self.pos
        );
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from raw random bits (the shim's
/// stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Maps one raw 64-bit word to a uniform `f64` in `[0, 1)` — 53 mantissa
/// bits, the exact mapping [`Rng::gen`]`::<f64>()` and [`Rng::gen_bool`]
/// apply to each word they draw. Public so bulk consumers of
/// [`RngCore::fill_u64s`] can reproduce the per-call stream bit-for-bit.
#[inline]
pub fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// `draw % span`, with the division strength-reduced to a mask when `span`
/// is a power of two (the common case in the simulator: channel counts of
/// 2/4/8). Bit-identical to the plain `%` for every input.
#[inline]
fn rem_span(draw: u64, span: u64) -> u64 {
    if span.is_power_of_two() {
        draw & (span - 1)
    } else {
        draw % span
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(rem_span(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rem_span(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing random value interface.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Number of independent Bernoulli(`p`) trials up to and including the
    /// first success — the geometric distribution on `1, 2, 3, …` with mean
    /// `1/p` — sampled by inverse CDF from **exactly one** word of the
    /// stream (so batched consumers can account for it in a
    /// [`BufferedRng`] reserve).
    ///
    /// Sojourn-time processes (primary-user on/off channel models) draw
    /// their dwell times from this instead of hand-rolling inverse-CDF
    /// loops at every call site.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    fn sample_geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "sample_geometric p={p} out of (0, 1]");
        // Always consume one word, even on the p = 1 fast path: the draw
        // count must be a function of the call, not of the parameter, so
        // callers can reason about stream positions.
        let u = unit_f64(self.next_u64());
        if p >= 1.0 {
            return 1;
        }
        // P(X > k) = (1-p)^k  ⇒  X = 1 + ⌊ln(1-U) / ln(1-p)⌋, U ∈ [0, 1).
        // 1-U ∈ (0, 1] keeps the numerator finite; saturate the cast so a
        // vanishing p cannot wrap.
        let k = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
        1u64.saturating_add(k as u64)
    }

    /// A Poisson(`lambda`) draw via Knuth's product-of-uniforms method:
    /// consumes `k + 1` words to return `k` (and zero words when
    /// `lambda == 0`). Suited to the small-to-moderate rates the simulator
    /// uses (burst lengths, per-slot arrival counts); cost grows linearly
    /// with `lambda`.
    ///
    /// # Panics
    /// Panics unless `0 <= lambda <= 700` (beyond that `exp(-lambda)`
    /// underflows and the product method degenerates).
    fn sample_poisson(&mut self, lambda: f64) -> u64 {
        assert!((0.0..=700.0).contains(&lambda), "sample_poisson lambda={lambda} out of [0, 700]");
        if lambda == 0.0 {
            return 0;
        }
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut prod = 1.0f64;
        loop {
            prod *= unit_f64(self.next_u64());
            if prod <= limit {
                return k;
            }
            k += 1;
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_u64s_matches_repeated_next_u64() {
        let mut a = SmallRng::seed_from_u64(33);
        let mut b = SmallRng::seed_from_u64(33);
        let mut bulk = [0u64; 67];
        a.fill_u64s(&mut bulk);
        let singles: Vec<u64> = (0..bulk.len()).map(|_| b.next_u64()).collect();
        assert_eq!(bulk.as_slice(), singles.as_slice());
        // The two generators must also agree on everything drawn *after*.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rem_span_matches_modulo() {
        let mut rng = SmallRng::seed_from_u64(8);
        for span in [1u64, 2, 3, 4, 5, 7, 8, 16, 100, 1 << 33, u64::MAX] {
            for _ in 0..64 {
                let draw = rng.next_u64();
                assert_eq!(rem_span(draw, span), draw % span, "span {span} draw {draw}");
            }
        }
    }

    #[test]
    fn gen_range_power_of_two_spans_unchanged() {
        // The mask fast path must not perturb the stream mapping: pin a few
        // golden draws for spans the simulator uses constantly.
        let mut rng = SmallRng::seed_from_u64(0);
        // The first three raw outputs for seed 0, from the xoshiro256++
        // reference vector; gen_range(0..2) must be (raw % 2) of each in
        // order.
        let raws = [0x53175d61490b23dfu64, 0x61da6f3dc380d507, 0x5c0fdf91ec9a7bfc];
        for raw in raws {
            let v: u64 = rng.gen_range(0..2u64);
            assert_eq!(v, raw % 2);
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(3..17u16);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5u32);
            assert!(w <= 5);
            let f = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn buffered_rng_is_stream_identical() {
        // Buffered draws — including fall-through past the reserve — must
        // reproduce the direct-draw stream exactly, and leave the source in
        // the same state a direct consumer would.
        let mut direct = SmallRng::seed_from_u64(77);
        let mut src = SmallRng::seed_from_u64(77);
        {
            let mut buf = BufferedRng::with_reserve(&mut src, 3);
            assert_eq!(buf.gen_bool(0.5), direct.gen_bool(0.5));
            assert_eq!(buf.gen_range(0..13u16), direct.gen_range(0..13u16));
            assert_eq!(buf.gen::<u64>(), direct.gen::<u64>());
            assert_eq!(buf.reserved_remaining(), 0);
            // Past the reserve: falls through to the source, same stream.
            assert_eq!(buf.gen_range(0..1000u32), direct.gen_range(0..1000u32));
        }
        // The source must have advanced exactly as far as the direct RNG.
        assert_eq!(src.next_u64(), direct.next_u64());
    }

    #[test]
    fn buffered_rng_zero_reserve_is_passthrough() {
        let mut direct = SmallRng::seed_from_u64(5);
        let mut src = SmallRng::seed_from_u64(5);
        {
            let mut buf = BufferedRng::with_reserve(&mut src, 0);
            for _ in 0..8 {
                assert_eq!(buf.next_u64(), direct.next_u64());
            }
        }
        assert_eq!(src.next_u64(), direct.next_u64());
    }

    #[test]
    fn buffered_rng_caps_reserve_at_inline_capacity() {
        // A reserve beyond the inline buffer prefills only the capacity;
        // the rest falls through — the stream must stay identical and the
        // source must not be over-advanced at drop time.
        let mut direct = SmallRng::seed_from_u64(9);
        let mut src = SmallRng::seed_from_u64(9);
        {
            let mut buf = BufferedRng::with_reserve(&mut src, BUFFERED_RNG_INLINE_WORDS + 5);
            for _ in 0..BUFFERED_RNG_INLINE_WORDS + 5 {
                assert_eq!(buf.next_u64(), direct.next_u64());
            }
        }
        assert_eq!(src.next_u64(), direct.next_u64());
    }

    #[test]
    fn sample_geometric_consumes_exactly_one_word() {
        // Stream identity: one call advances the stream by exactly one
        // word, for every parameter value (including the p = 1 fast path).
        for p in [1e-6, 0.01, 0.3, 0.5, 0.97, 1.0] {
            let mut a = SmallRng::seed_from_u64(21);
            let mut b = SmallRng::seed_from_u64(21);
            let _ = a.sample_geometric(p);
            let _ = b.next_u64();
            assert_eq!(a.next_u64(), b.next_u64(), "p={p} draw count != 1");
        }
    }

    #[test]
    fn sample_geometric_matches_inverse_cdf_of_the_raw_word() {
        // The mapping word → value is pinned: 1 + floor(ln(1-U)/ln(1-p)).
        let p = 0.25f64;
        let mut rng = SmallRng::seed_from_u64(77);
        let mut raw = SmallRng::seed_from_u64(77);
        for _ in 0..256 {
            let expect = {
                let u = unit_f64(raw.next_u64());
                1 + (((1.0 - u).ln() / (1.0 - p).ln()).floor() as u64)
            };
            assert_eq!(rng.sample_geometric(p), expect);
        }
    }

    #[test]
    fn sample_geometric_support_and_mean() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!((0..64).all(|_| rng.sample_geometric(1.0) == 1));
        let n = 4000u64;
        let sum: u64 = (0..n).map(|_| rng.sample_geometric(0.2)).sum();
        let mean = sum as f64 / n as f64;
        assert!(rng.sample_geometric(0.2) >= 1);
        assert!((mean - 5.0).abs() < 0.5, "geometric(0.2) mean ≈ 5, got {mean}");
    }

    #[test]
    fn sample_poisson_stream_identity_and_draw_count() {
        // Same seed, same sequence; and the draw count is k + 1 words
        // (zero words for lambda = 0), so callers can reason about stream
        // positions.
        let mut a = SmallRng::seed_from_u64(31);
        let mut b = SmallRng::seed_from_u64(31);
        let xs: Vec<u64> = (0..64).map(|_| a.sample_poisson(3.0)).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.sample_poisson(3.0)).collect();
        assert_eq!(xs, ys);

        let mut c = SmallRng::seed_from_u64(31);
        let mut raw = SmallRng::seed_from_u64(31);
        let k = c.sample_poisson(3.0);
        for _ in 0..k + 1 {
            raw.next_u64();
        }
        assert_eq!(c.next_u64(), raw.next_u64(), "poisson consumed != k + 1 words");

        let mut d = SmallRng::seed_from_u64(9);
        assert_eq!(d.sample_poisson(0.0), 0);
        let mut untouched = SmallRng::seed_from_u64(9);
        assert_eq!(d.next_u64(), untouched.next_u64(), "lambda = 0 must draw nothing");
    }

    #[test]
    fn sample_poisson_mean_tracks_lambda() {
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 4000u64;
        for lambda in [0.5f64, 2.0, 6.0] {
            let sum: u64 = (0..n).map(|_| rng.sample_poisson(lambda)).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.2 + lambda * 0.1,
                "poisson({lambda}) mean drifted: {mean}"
            );
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
