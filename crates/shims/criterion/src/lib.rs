//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access, so the bench crates link
//! against this small harness instead of the real criterion. It implements
//! the same source-level API (`criterion_group!`, `criterion_main!`,
//! `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher`)
//! with a simple but honest measurement loop: per sample it runs enough
//! iterations to amortize timer overhead, then reports min / median / mean
//! per-iteration times and element throughput.
//!
//! Every measurement is also recorded in a process-global registry;
//! [`criterion_main!`] writes the registry as a JSON report when the binary
//! exits. The output path is `$CRN_BENCH_JSON` if set, otherwise
//! `BENCH_<binary>.json` in the working directory. Set `CRN_BENCH_QUICK=1`
//! (or pass `--quick`) to cap sample counts for CI smoke runs.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Top-level harness configuration, threaded into every group it creates.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target total measurement time per benchmark (builder style).
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` form.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Work-per-iteration declaration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Overrides the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        self.run(id.into(), f);
    }

    /// Runs one benchmark with an input handle.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.into(), |b| f(b, input));
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let samples = if quick_mode() { self.sample_size.min(5) } else { self.sample_size };
        let meas_time = if quick_mode() {
            self.measurement_time.min(Duration::from_millis(100))
        } else {
            self.measurement_time
        };
        let mut bencher = Bencher {
            samples,
            target_sample_time: meas_time.div_f64(samples as f64).max(Duration::from_micros(200)),
            per_iter_ns: Vec::new(),
        };
        f(&mut bencher);
        let stats = Stats::of(&bencher.per_iter_ns);
        let full = format!("{}/{}", self.name, id.id);
        print_result(&full, &stats, self.throughput);
        registry().lock().expect("bench registry poisoned").push(Record {
            group: self.name.clone(),
            id: id.id,
            throughput: self.throughput,
            stats,
        });
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    target_sample_time: Duration,
    per_iter_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f`, running it enough times per sample to amortize timer
    /// overhead, for the configured number of samples.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + calibration: run until we've spent ~1 target sample.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.target_sample_time {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let iters = ((self.target_sample_time.as_secs_f64() / per_iter) as u64).clamp(1, 1 << 24);

        self.per_iter_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.per_iter_ns.push(dt.as_secs_f64() * 1e9 / iters as f64);
        }
    }
}

/// An identity function that hides the value from the optimizer
/// (best-effort, `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Summary statistics over per-iteration nanosecond samples.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of samples.
    pub samples: usize,
    /// Fastest sample (ns / iteration).
    pub min_ns: f64,
    /// Median sample (ns / iteration).
    pub median_ns: f64,
    /// Mean sample (ns / iteration).
    pub mean_ns: f64,
    /// Sample standard deviation (ns / iteration).
    pub stddev_ns: f64,
}

impl Stats {
    fn of(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "benchmark closure never called Bencher::iter");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            sorted.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let median =
            if n % 2 == 1 { sorted[n / 2] } else { (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0 };
        Stats {
            samples: n,
            min_ns: sorted[0],
            median_ns: median,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
        }
    }
}

/// One recorded measurement.
#[derive(Debug, Clone)]
struct Record {
    group: String,
    id: String,
    throughput: Option<Throughput>,
    stats: Stats,
}

fn registry() -> &'static Mutex<Vec<Record>> {
    static REGISTRY: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn quick_mode() -> bool {
    static QUICK: OnceLock<bool> = OnceLock::new();
    *QUICK.get_or_init(|| {
        std::env::var_os("CRN_BENCH_QUICK").is_some_and(|v| v != "0" && !v.is_empty())
            || std::env::args().any(|a| a == "--quick")
    })
}

fn fmt_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn print_result(name: &str, stats: &Stats, throughput: Option<Throughput>) {
    let thr = match throughput {
        Some(Throughput::Elements(e)) => {
            format!("  ({:.2} Melem/s)", e as f64 / stats.median_ns * 1e3)
        }
        Some(Throughput::Bytes(b)) => {
            // bytes/ns → bytes/s → MiB/s.
            format!("  ({:.2} MiB/s)", b as f64 / stats.median_ns * 1e9 / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "bench {name:<56} median {:>12}  min {:>12}  ±{:>10}{thr}",
        fmt_time(stats.median_ns),
        fmt_time(stats.min_ns),
        fmt_time(stats.stddev_ns),
    );
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[doc(hidden)]
pub mod private {
    use super::*;

    /// Writes the JSON report for everything measured in this process.
    /// Invoked by `criterion_main!` after all groups run.
    pub fn write_report() {
        let records = registry().lock().expect("bench registry poisoned");
        if records.is_empty() {
            return;
        }
        let path = std::env::var("CRN_BENCH_JSON").unwrap_or_else(|_| {
            let bin = std::env::args()
                .next()
                .and_then(|a| {
                    std::path::Path::new(&a).file_stem().map(|s| s.to_string_lossy().into_owned())
                })
                .unwrap_or_else(|| "bench".to_string());
            // Strip cargo's trailing `-<metadata hash>` if present.
            let base = match bin.rsplit_once('-') {
                Some((head, tail))
                    if tail.len() == 16 && tail.chars().all(|c| c.is_ascii_hexdigit()) =>
                {
                    head.to_string()
                }
                _ => bin,
            };
            format!("BENCH_{base}.json")
        });
        let mut out = String::from("{\n  \"benchmarks\": [\n");
        for (i, r) in records.iter().enumerate() {
            let (thr_kind, thr_value) = match r.throughput {
                Some(Throughput::Elements(e)) => ("\"elements\"".to_string(), e.to_string()),
                Some(Throughput::Bytes(b)) => ("\"bytes\"".to_string(), b.to_string()),
                None => ("null".to_string(), "null".to_string()),
            };
            out.push_str(&format!(
                "    {{\"group\": \"{}\", \"id\": \"{}\", \"samples\": {}, \
                 \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \
                 \"stddev_ns\": {:.1}, \"throughput_kind\": {}, \"throughput_per_iter\": {}}}{}\n",
                json_escape(&r.group),
                json_escape(&r.id),
                r.stats.samples,
                r.stats.median_ns,
                r.stats.mean_ns,
                r.stats.min_ns,
                r.stats.stddev_ns,
                thr_kind,
                thr_value,
                if i + 1 < records.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("bench report written to {path}"),
            Err(e) => eprintln!("warning: could not write bench report {path}: {e}"),
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::private::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_median_and_min() {
        let s = Stats::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.min_ns, 1.0);
        assert_eq!(s.median_ns, 2.0);
        assert_eq!(s.samples, 3);
        let e = Stats::of(&[4.0, 1.0, 2.0, 3.0]);
        assert_eq!(e.median_ns, 2.5);
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim_self_test");
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
        assert!(registry().lock().unwrap().iter().any(|r| r.group == "shim_self_test"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    }
}
