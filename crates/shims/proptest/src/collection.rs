//! Collection strategies (`proptest::collection` subset).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::collections::BTreeSet;

/// Accepted size arguments: an exact `usize` or a `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..self.hi)
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy for `BTreeSet<T>` with element strategy `S`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate draws collapse, so the realized size can be below the
        // draw count (matching real proptest's best-effort semantics).
        let n = self.size.sample(rng);
        let mut set = BTreeSet::new();
        for _ in 0..n {
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Generates `BTreeSet`s with element count drawn from `size` (realized size
/// may be smaller when duplicate elements are drawn).
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(1);
        let exact = vec(0u32..10, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let ranged = vec(0u32..10, 2..6usize);
        for _ in 0..50 {
            let v = ranged.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_respects_upper_bound() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = btree_set(0u32..1000, 1..20usize);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 20);
        }
    }
}
