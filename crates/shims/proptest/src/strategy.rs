//! Core strategy combinators: how test inputs are generated.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking tree; `generate` draws one
/// value directly from the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Always produces a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type
/// (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The canonical strategy for `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(33)
    }

    #[test]
    fn tuple_and_map_generate() {
        let s = (0u32..5, 10u64..20).prop_map(|(a, b)| a as u64 + b);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10..25).contains(&v));
        }
    }

    #[test]
    fn union_picks_all_arms_eventually() {
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed(), Just(3u8).boxed()]);
        let mut r = rng();
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn any_bool_varies() {
        let s = any::<bool>();
        let mut r = rng();
        let vals: Vec<bool> = (0..64).map(|_| s.generate(&mut r)).collect();
        assert!(vals.iter().any(|&b| b) && vals.iter().any(|&b| !b));
    }
}
