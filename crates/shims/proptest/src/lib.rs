//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no network access, so the property tests link
//! against this deterministic mini-harness instead of the real proptest.
//! It is source-compatible with the usage in `tests/`: the [`proptest!`]
//! macro, [`Strategy`] with `prop_map`/`boxed`, range / tuple / [`Just`] /
//! [`any`] strategies, [`prop_oneof!`], `collection::{vec, btree_set}`,
//! [`ProptestConfig::with_cases`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, by design: no shrinking (a failing case
//! reports its master seed and case index, which reproduces it exactly),
//! and input generation is driven by the workspace's own deterministic
//! xoshiro stream. Set `PROPTEST_SEED=<u64>` to vary the corpus.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

pub use strategy::{any, BoxedStrategy, Just, Strategy, Union};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!`; try another case.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError,
    };
}

#[doc(hidden)]
pub mod runner {
    use super::*;

    fn master_seed() -> u64 {
        std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x00C0_FFEE)
    }

    fn case_rng(master: u64, name: &str, case: u64) -> TestRng {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        case.hash(&mut h);
        master.hash(&mut h);
        TestRng::seed_from_u64(h.finish())
    }

    /// Drives one property: generates cases until `config.cases` accepted
    /// runs succeed, panicking on the first failure with reproduction info.
    pub fn run(
        config: ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let master = master_seed();
        let mut accepted = 0u64;
        let mut attempts = 0u64;
        let max_attempts = (config.cases as u64).saturating_mul(16).max(64);
        while accepted < config.cases as u64 {
            if attempts >= max_attempts {
                panic!(
                    "proptest '{name}': too many rejected cases \
                     ({accepted}/{} accepted after {attempts} attempts)",
                    config.cases
                );
            }
            let mut rng = case_rng(master, name, attempts);
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest '{name}' failed at case {} (PROPTEST_SEED={master}): {msg}",
                    attempts - 1
                ),
            }
        }
    }
}

/// Defines property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::runner::run(config, stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                    #[allow(unused_mut)]
                    let mut body =
                        move || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                    body()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report reproduction info.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with debug output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with debug output of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left != right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0usize..5, f in 1.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u32..10).prop_map(|x| x * 2),
            Just(1u32),
        ]) {
            prop_assert!(v == 1 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn collections_have_requested_sizes(
            v in crate::collection::vec(0u32..50, 6),
            s in crate::collection::btree_set(0u32..1000, 1..20usize),
        ) {
            prop_assert_eq!(v.len(), 6);
            prop_assert!(!s.is_empty() && s.len() < 20);
        }
    }

    fn runner_corpus() -> Vec<u64> {
        use crate::{Strategy, TestRng};
        use rand::SeedableRng;
        let mut out = Vec::new();
        for case in 0..8u64 {
            let mut rng = {
                use std::hash::{Hash, Hasher};
                let mut h = std::collections::hash_map::DefaultHasher::new();
                "corpus".hash(&mut h);
                case.hash(&mut h);
                TestRng::seed_from_u64(h.finish())
            };
            out.push((0u64..1_000_000).generate(&mut rng));
        }
        out
    }

    #[test]
    fn determinism_same_seed_same_corpus() {
        let a = runner_corpus();
        let b = runner_corpus();
        assert_eq!(a, b);
    }
}
