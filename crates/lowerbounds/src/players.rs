//! Players for the hitting games, including the Lemma 11 reduction player
//! that turns any neighbor-discovery (or two-node broadcast) protocol into
//! a game player.

use crate::game::HittingGame;
use crn_sim::rng::stream_rng;
use crn_sim::{Action, Feedback, LocalChannel, Protocol, Slot, SlotCtx};
use rand::rngs::SmallRng;
use rand::Rng;

/// A hitting-game player: proposes one edge per round.
pub trait Player {
    /// The next edge to propose.
    fn next_guess(&mut self, rng: &mut SmallRng) -> (u32, u32);
}

/// Proposes a uniformly random edge each round (with replacement).
/// Expected rounds to win: `c²/k` — matching the Lemma 10 lower bound up to
/// the constant `α`.
#[derive(Debug, Clone)]
pub struct UniformRandomPlayer {
    c: u32,
}

impl UniformRandomPlayer {
    /// Creates a player for board size `c`.
    pub fn new(c: usize) -> Self {
        UniformRandomPlayer { c: c as u32 }
    }
}

impl Player for UniformRandomPlayer {
    fn next_guess(&mut self, rng: &mut SmallRng) -> (u32, u32) {
        (rng.gen_range(0..self.c), rng.gen_range(0..self.c))
    }
}

/// Enumerates all `c²` edges in row-major order — the deterministic
/// worst-case-optimal strategy (`≤ c²` rounds, and `c² − k + 1` in the
/// worst case).
#[derive(Debug, Clone)]
pub struct ExhaustivePlayer {
    c: u32,
    cursor: u64,
}

impl ExhaustivePlayer {
    /// Creates a player for board size `c`.
    pub fn new(c: usize) -> Self {
        ExhaustivePlayer { c: c as u32, cursor: 0 }
    }
}

impl Player for ExhaustivePlayer {
    fn next_guess(&mut self, rng: &mut SmallRng) -> (u32, u32) {
        let _ = rng;
        let total = self.c as u64 * self.c as u64;
        let i = self.cursor % total;
        self.cursor += 1;
        ((i / self.c as u64) as u32, (i % self.c as u64) as u32)
    }
}

/// Plays `player` against `game` until a win or `max_rounds`. Returns the
/// number of rounds on a win.
pub fn play(
    game: &mut HittingGame,
    player: &mut dyn Player,
    rng: &mut SmallRng,
    max_rounds: u64,
) -> Option<u64> {
    for _ in 0..max_rounds {
        let (a, b) = player.next_guess(rng);
        if game.propose(a, b) {
            return Some(game.rounds());
        }
    }
    None
}

/// The Lemma 11 reduction: simulate a two-node network `u, v` whose channel
/// overlap *is* the referee's hidden matching, drive any protocol at both
/// nodes, and propose the pair of channels they tune to each slot. Until
/// the proposal wins, the two nodes provably have not met, so feeding both
/// of them silence is a faithful simulation.
///
/// The protocol instances see local channel labels `0..c`, exactly as in
/// the paper's local-label model: `u`'s label `i` is `a_i`, `v`'s label `j`
/// is `b_j`.
pub struct ReductionPlayer<P: Protocol> {
    u: P,
    v: P,
    rng_u: SmallRng,
    rng_v: SmallRng,
    slot: u64,
    last_guess: (u32, u32),
}

impl<P: Protocol> ReductionPlayer<P> {
    /// Wraps protocol instances for the two simulated nodes. `seed`
    /// derives the nodes' private randomness.
    pub fn new(u: P, v: P, seed: u64) -> Self {
        ReductionPlayer {
            u,
            v,
            rng_u: stream_rng(seed, 0),
            rng_v: stream_rng(seed, 1),
            slot: 0,
            last_guess: (0, 0),
        }
    }

    fn channel_of(action: &Action<P::Message>, fallback: u32) -> u32 {
        match action.channel() {
            Some(LocalChannel(l)) => l as u32,
            // A sleeping node proposes its previous channel — this can only
            // cost the player extra rounds, never unsoundness.
            None => fallback,
        }
    }
}

impl<P: Protocol> Player for ReductionPlayer<P> {
    fn next_guess(&mut self, _rng: &mut SmallRng) -> (u32, u32) {
        let slot = Slot(self.slot);
        let au = self.u.act(&mut SlotCtx { slot, rng: &mut self.rng_u });
        let av = self.v.act(&mut SlotCtx { slot, rng: &mut self.rng_v });
        let guess =
            (Self::channel_of(&au, self.last_guess.0), Self::channel_of(&av, self.last_guess.1));
        // Simulate the slot outcome under "no contact yet": broadcasters
        // hear themselves, listeners hear silence.
        let fb_u = match au {
            Action::Broadcast { .. } => Feedback::Sent,
            Action::Listen { .. } => Feedback::Silence,
            Action::Sleep => Feedback::Slept,
        };
        let fb_v = match av {
            Action::Broadcast { .. } => Feedback::Sent,
            Action::Listen { .. } => Feedback::Silence,
            Action::Sleep => Feedback::Slept,
        };
        self.u.feedback(&mut SlotCtx { slot, rng: &mut self.rng_u }, fb_u);
        self.v.feedback(&mut SlotCtx { slot, rng: &mut self.rng_v }, fb_v);
        self.slot += 1;
        self.last_guess = guess;
        guess
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_core::params::{ModelInfo, SeekParams};
    use crn_core::seek::CSeek;
    use crn_sim::NodeId;

    #[test]
    fn exhaustive_player_enumerates_row_major() {
        let mut p = ExhaustivePlayer::new(2);
        let mut rng = stream_rng(0, 0);
        let got: Vec<(u32, u32)> = (0..4).map(|_| p.next_guess(&mut rng)).collect();
        assert_eq!(got, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn uniform_player_eventually_wins() {
        let mut rng = stream_rng(5, 0);
        let mut game = HittingGame::new(6, 2, &mut rng);
        let mut player = UniformRandomPlayer::new(6);
        let rounds = play(&mut game, &mut player, &mut rng, 100_000).expect("must win");
        assert!(rounds >= 1);
    }

    #[test]
    fn uniform_player_mean_rounds_near_c2_over_k() {
        let c = 8;
        let k = 2;
        let trials = 200;
        let mut total = 0u64;
        for seed in 0..trials {
            let mut rng = stream_rng(900 + seed, 0);
            let mut game = HittingGame::new(c, k, &mut rng);
            let mut player = UniformRandomPlayer::new(c);
            total += play(&mut game, &mut player, &mut rng, 1_000_000).unwrap();
        }
        let mean = total as f64 / trials as f64;
        let expect = (c * c) as f64 / k as f64; // 32
        assert!((mean - expect).abs() < expect * 0.3, "mean {mean} too far from {expect}");
    }

    #[test]
    fn reduction_player_with_cseek_wins() {
        let c = 6;
        let k = 2;
        let m = ModelInfo { n: 2, c, delta: 1, k, kmax: k };
        let sched = SeekParams::default().schedule(&m);
        let mut rng = stream_rng(42, 7);
        let mut game = HittingGame::new(c, k, &mut rng);
        let mut player = ReductionPlayer::new(
            CSeek::new(NodeId(0), sched, false),
            CSeek::new(NodeId(1), sched, false),
            1234,
        );
        let rounds = play(&mut game, &mut player, &mut rng, sched.total_slots())
            .expect("CSEEK must land on a shared channel within its schedule");
        // Lemma 10: no player can beat c²/(8k) in the median; CSEEK is a
        // legal player so it must cost at least a few rounds.
        assert!(rounds >= 1);
    }
}
