//! The bipartite hitting games of paper §6.
//!
//! **(c,k)-bipartite hitting** (used for `k ≤ c/2`, Lemma 10): the referee
//! privately picks a matching `M` of size `k` in the complete bipartite
//! graph on `(A, B)` with `|A| = |B| = c`. Each round the player proposes
//! one edge; it wins when the edge is in `M`. Any player that wins with
//! probability ≥ 1/2 needs `≥ c²/(αk)` rounds, `2 < α ≤ 8`.
//!
//! **c-complete bipartite hitting** (used for `k > c/2`, Lemma 12): the
//! referee picks a *maximum* (perfect) matching; winning takes ≥ `c/3`
//! rounds. It is the `k = c` case of the general game, so one type covers
//! both.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// One instance of the (c,k)-bipartite hitting game, refereed privately.
#[derive(Debug, Clone)]
pub struct HittingGame {
    c: usize,
    k: usize,
    /// `matched[a] = Some(b)` iff `(a_a, b_b) ∈ M`.
    matched: Vec<Option<u32>>,
    rounds: u64,
    won: bool,
}

impl HittingGame {
    /// The referee picks a uniformly random `k`-matching on `(A, B)`.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ c`.
    pub fn new(c: usize, k: usize, rng: &mut SmallRng) -> HittingGame {
        assert!(k >= 1 && k <= c, "need 1 <= k <= c");
        // Random k-matching: pick k distinct A-vertices and k distinct
        // B-vertices, pair them up by a random bijection.
        let mut a_side: Vec<u32> = (0..c as u32).collect();
        let mut b_side: Vec<u32> = (0..c as u32).collect();
        a_side.shuffle(rng);
        b_side.shuffle(rng);
        let mut matched = vec![None; c];
        for i in 0..k {
            matched[a_side[i] as usize] = Some(b_side[i]);
        }
        HittingGame { c, k, matched, rounds: 0, won: false }
    }

    /// The `c`-complete game of Lemma 12: a random maximum matching.
    pub fn complete(c: usize, rng: &mut SmallRng) -> HittingGame {
        HittingGame::new(c, c, rng)
    }

    /// A referee with a fixed matching, for deterministic tests. `pairs`
    /// are `(a, b)` edges and must form a matching.
    ///
    /// # Panics
    /// Panics if `pairs` is not a matching on `(0..c, 0..c)`.
    pub fn with_matching(c: usize, pairs: &[(u32, u32)]) -> HittingGame {
        assert!(!pairs.is_empty() && pairs.len() <= c, "need 1 <= |M| <= c");
        let mut matched = vec![None; c];
        let mut b_used = vec![false; c];
        for &(a, b) in pairs {
            assert!((a as usize) < c && (b as usize) < c, "edge out of range");
            assert!(matched[a as usize].is_none(), "A-vertex {a} used twice");
            assert!(!b_used[b as usize], "B-vertex {b} used twice");
            matched[a as usize] = Some(b);
            b_used[b as usize] = true;
        }
        HittingGame { c, k: pairs.len(), matched, rounds: 0, won: false }
    }

    /// Board size `c`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Matching size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Rounds played so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// `true` once the player has hit a matching edge.
    pub fn is_won(&self) -> bool {
        self.won
    }

    /// The player proposes edge `(a, b)`. Returns `true` on a win. Further
    /// proposals after a win are ignored (and not counted).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn propose(&mut self, a: u32, b: u32) -> bool {
        assert!((a as usize) < self.c && (b as usize) < self.c, "edge ({a},{b}) out of range");
        if self.won {
            return true;
        }
        self.rounds += 1;
        if self.matched[a as usize] == Some(b) {
            self.won = true;
        }
        self.won
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::rng::stream_rng;

    #[test]
    fn fixed_matching_game() {
        let mut g = HittingGame::with_matching(3, &[(0, 1), (2, 0)]);
        assert_eq!(g.k(), 2);
        assert!(!g.propose(0, 0));
        assert!(!g.propose(1, 1));
        assert!(g.propose(0, 1));
        assert!(g.is_won());
        assert_eq!(g.rounds(), 3);
        // Post-win proposals don't count rounds.
        assert!(g.propose(2, 2));
        assert_eq!(g.rounds(), 3);
    }

    #[test]
    fn random_matching_has_k_edges() {
        let mut rng = stream_rng(1, 0);
        for k in [1usize, 3, 8] {
            let g = HittingGame::new(8, k, &mut rng);
            let edges = g.matched.iter().filter(|m| m.is_some()).count();
            assert_eq!(edges, k);
            // B-side endpoints distinct.
            let mut bs: Vec<u32> = g.matched.iter().flatten().copied().collect();
            bs.sort_unstable();
            bs.dedup();
            assert_eq!(bs.len(), k);
        }
    }

    #[test]
    fn complete_game_is_perfect_matching() {
        let mut rng = stream_rng(2, 0);
        let g = HittingGame::complete(5, &mut rng);
        assert_eq!(g.k(), 5);
        assert!(g.matched.iter().all(Option::is_some));
    }

    #[test]
    fn exhaustive_scan_always_wins_within_c_squared() {
        let mut rng = stream_rng(3, 0);
        let mut g = HittingGame::new(6, 2, &mut rng);
        'outer: for a in 0..6u32 {
            for b in 0..6u32 {
                if g.propose(a, b) {
                    break 'outer;
                }
            }
        }
        assert!(g.is_won());
        assert!(g.rounds() <= 36);
    }

    #[test]
    #[should_panic(expected = "A-vertex 0 used twice")]
    fn with_matching_rejects_non_matching() {
        let _ = HittingGame::with_matching(3, &[(0, 1), (0, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn propose_validates_range() {
        let mut g = HittingGame::with_matching(2, &[(0, 0)]);
        let _ = g.propose(5, 0);
    }
}
