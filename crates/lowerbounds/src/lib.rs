//! # crn-lowerbounds — the lower-bound machinery of §6
//!
//! The paper proves `Ω(c²/k + Δ)` for neighbor discovery (Theorem 13) and
//! `Ω(c²/k + D·min{c,Δ})` for global broadcast (Theorem 14) via two
//! devices, both implemented here:
//!
//! * [`game`] — the (c,k)-bipartite hitting game and its `k = c` complete
//!   variant, with a private referee;
//! * [`players`] — game players: uniform random, exhaustive, and the
//!   [`players::ReductionPlayer`] of Lemma 11 that wraps *any* protocol in
//!   a simulated two-node network (until the player wins, the two nodes
//!   provably have not met, so silence is a faithful simulation);
//! * [`tree`] — the Theorem 14 hard instance (complete tree with
//!   channel-disjoint siblings) plus an omniscient scheduler that attains
//!   the bound, witnessing its tightness;
//! * [`analysis`] — the closed-form bounds for comparison in experiments.
//!
//! ## Example: measure CSEEK against the game bound
//!
//! ```
//! use crn_lowerbounds::analysis::hitting_game_lower_bound;
//! use crn_lowerbounds::game::HittingGame;
//! use crn_lowerbounds::players::{play, UniformRandomPlayer};
//! use crn_sim::rng::stream_rng;
//!
//! let mut rng = stream_rng(1, 0);
//! let mut game = HittingGame::new(8, 2, &mut rng);
//! let mut player = UniformRandomPlayer::new(8);
//! let rounds = play(&mut game, &mut player, &mut rng, 1_000_000).unwrap();
//! // No strategy can reliably beat c²/(αk); the uniform player is within
//! // a constant of it in expectation.
//! assert!(rounds as f64 >= 1.0);
//! assert!(hitting_game_lower_bound(8, 2) > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod game;
pub mod players;
pub mod tree;

pub use analysis::{broadcast_lower_bound, discovery_lower_bound, hitting_game_lower_bound};
pub use game::HittingGame;
pub use players::{play, ExhaustivePlayer, Player, ReductionPlayer, UniformRandomPlayer};
pub use tree::{lower_bound_tree, OracleTreeBroadcast};
