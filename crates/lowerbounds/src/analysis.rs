//! Closed-form bounds from §6, for comparing measured player performance
//! against theory in experiment E9.

/// The Lemma 10 lower bound on rounds to win the (c,k)-bipartite hitting
/// game with probability ≥ 1/2: `c²/(α·k)` with `α = 2(β/(β−1))²` for
/// `β = c/k ≥ 2`. For `k > c/2` the Lemma 12 bound `c/3` applies instead;
/// this function returns whichever is relevant.
pub fn hitting_game_lower_bound(c: usize, k: usize) -> f64 {
    assert!(k >= 1 && k <= c, "need 1 <= k <= c");
    let cf = c as f64;
    let kf = k as f64;
    if kf <= cf / 2.0 {
        let beta = cf / kf; // >= 2
        let alpha = 2.0 * (beta / (beta - 1.0)).powi(2); // in (2, 8]
        cf * cf / (alpha * kf)
    } else {
        cf / 3.0
    }
}

/// Expected rounds for the uniform random player: each guess hits with
/// probability `k/c²`, so the expectation is `c²/k` (geometric).
pub fn uniform_player_expected_rounds(c: usize, k: usize) -> f64 {
    assert!(k >= 1 && k <= c, "need 1 <= k <= c");
    (c * c) as f64 / k as f64
}

/// The Theorem 13 discovery lower bound `Ω(c²/k + Δ)` with unit constants —
/// used as the reference curve in plots.
pub fn discovery_lower_bound(c: usize, k: usize, delta: usize) -> f64 {
    hitting_game_lower_bound(c, k) + delta as f64
}

/// The Theorem 14 broadcast lower bound `Ω(c²/k + D·min{c,Δ})` with unit
/// constants.
pub fn broadcast_lower_bound(c: usize, k: usize, delta: usize, diameter: u64) -> f64 {
    hitting_game_lower_bound(c, k) + diameter as f64 * c.min(delta) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_is_in_range() {
        // β = 2 gives α = 8 (the loosest constant the paper states).
        let lb = hitting_game_lower_bound(8, 4);
        assert!((lb - 64.0 / (8.0 * 4.0)).abs() < 1e-12);
        // β large => α -> 2.
        let lb2 = hitting_game_lower_bound(1000, 1);
        let alpha = 1000.0 * 1000.0 / lb2;
        assert!(alpha > 2.0 && alpha < 2.01);
    }

    #[test]
    fn large_k_uses_complete_game_bound() {
        assert!((hitting_game_lower_bound(9, 8) - 3.0).abs() < 1e-12);
        assert!((hitting_game_lower_bound(9, 9) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_below_uniform_expectation() {
        for (c, k) in [(8, 1), (8, 2), (16, 4), (32, 8)] {
            assert!(
                hitting_game_lower_bound(c, k) < uniform_player_expected_rounds(c, k),
                "LB must lie below the achievable expectation for c={c}, k={k}"
            );
        }
    }

    #[test]
    fn composite_bounds_add_terms() {
        let d = discovery_lower_bound(8, 2, 10);
        assert!(d > hitting_game_lower_bound(8, 2));
        let b = broadcast_lower_bound(8, 2, 4, 5);
        assert!((b - (hitting_game_lower_bound(8, 2) + 20.0)).abs() < 1e-12);
    }
}
