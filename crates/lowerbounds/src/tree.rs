//! The Ω(D·min{c,Δ}) broadcast lower-bound scenario of Theorem 14.
//!
//! The hard instance is a complete tree where each non-leaf node has
//! `min{c, Δ} − 1` children and *siblings share no channels*: a parent can
//! inform at most one child per slot, so every level costs
//! `Θ(min{c, Δ})` slots and the full broadcast costs `Ω(D·min{c,Δ})`.
//!
//! [`lower_bound_tree`] builds the network; [`OracleTreeBroadcast`] is an
//! omniscient scheduler (it knows the topology and the shared channels) that
//! attains the bound, witnessing its tightness: *no* algorithm — CGCAST
//! included — can beat the oracle on this instance.

use crn_sim::{
    Action, Feedback, GlobalChannel, LocalChannel, Network, NetworkError, NodeId, Protocol, SlotCtx,
};

/// Builds the Theorem 14 tree: `depth` levels below the root, branching
/// factor `b = min(c, delta) − 1`, every child sharing exactly one channel
/// with its parent and none with its siblings (`k = kmax = 1`).
///
/// Channel layout: each node gets `c` channels. Channel slot 0..b−1 of a
/// parent are its "downlinks"; child `j` shares downlink `j` as its own
/// channel slot `c−1` ("uplink"), with all other channels private.
///
/// # Errors
/// Propagates [`NetworkError`] from the builder (cannot happen for valid
/// parameters).
///
/// # Panics
/// Panics if `c < 2` or `delta < 2` (the tree needs at least one child and
/// one uplink).
pub fn lower_bound_tree(c: usize, delta: usize, depth: usize) -> Result<Network, NetworkError> {
    assert!(c >= 2 && delta >= 2, "tree needs c >= 2 and delta >= 2");
    let b = c.min(delta) - 1;
    // Node count of a complete b-ary tree of the given depth.
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..depth {
        level *= b;
        n += level;
    }
    let mut builder = Network::builder(n);
    let mut next_channel = 0u32;
    // Assign each node its channel list; downlinks are created when the
    // node is processed as a parent, so allocate lazily: we fill the root's
    // channels first, then walk level by level.
    let mut channels: Vec<Vec<GlobalChannel>> = vec![Vec::new(); n];
    // Root: c fresh channels.
    for _ in 0..c {
        channels[0].push(GlobalChannel(next_channel));
        next_channel += 1;
    }
    // Heap layout: children of v are b*v + 1 ..= b*v + b.
    for v in 0..n {
        for j in 0..b {
            let child = b * v + 1 + j;
            if child >= n {
                break;
            }
            // Child's uplink = parent's downlink j (parent channel index j).
            let uplink = channels[v][j];
            channels[child].push(uplink);
            // Fill the child's remaining c−1 channels with fresh ones
            // (these become its own downlinks and private channels).
            for _ in 1..c {
                channels[child].push(GlobalChannel(next_channel));
                next_channel += 1;
            }
            // Rotate so the uplink is NOT always local label 0 (avoid
            // giving algorithms an accidental labeling hint): put fresh
            // channels first, uplink last.
            channels[child].rotate_left(1);
            builder.add_edge(NodeId(v as u32), NodeId(child as u32));
        }
    }
    for (v, chs) in channels.into_iter().enumerate() {
        builder.set_channels(NodeId(v as u32), chs);
    }
    builder.build()
}

/// An omniscient broadcast scheduler on the lower-bound tree: each informed
/// parent transmits to its children one at a time on the child's uplink
/// channel; each uninformed node listens on its own uplink. Collision-free
/// by construction, so it informs level `d` by slot `≈ d·b` — the
/// Ω(D·min{c,Δ}) bound is tight on this instance.
#[derive(Debug, Clone)]
pub struct OracleTreeBroadcast {
    id: NodeId,
    /// `(child local channel at THIS node's labeling)` per child, in order.
    downlinks: Vec<LocalChannel>,
    /// This node's uplink local channel (None at the root).
    uplink: Option<LocalChannel>,
    payload: Option<u64>,
    informed_at: Option<u64>,
    /// Slot at which this node became informed (drives the downlink
    /// round-robin).
    informed_slot: Option<u64>,
    max_slots: u64,
    slot: u64,
}

impl OracleTreeBroadcast {
    /// Builds the oracle participant for node `id` of `net` (which must be
    /// a [`lower_bound_tree`] with branching factor `b`). The root is node
    /// 0 and starts informed with `payload`.
    pub fn new(net: &Network, id: NodeId, b: usize, payload: u64, max_slots: u64) -> Self {
        let v = id.index();
        let parent = if v == 0 { None } else { Some(NodeId(((v - 1) / b) as u32)) };
        let children: Vec<NodeId> = (1..=b)
            .map(|j| b * v + j)
            .filter(|&ch| ch < net.len())
            .map(|ch| NodeId(ch as u32))
            .collect();
        let downlinks = children
            .iter()
            .map(|&ch| {
                let shared = net.shared_channels(id, ch);
                assert_eq!(shared.len(), 1, "tree edges share exactly one channel");
                net.global_to_local(id, shared[0]).expect("shared channel is ours")
            })
            .collect();
        let uplink = parent.map(|p| {
            let shared = net.shared_channels(id, p);
            assert_eq!(shared.len(), 1);
            net.global_to_local(id, shared[0]).expect("shared channel is ours")
        });
        let is_root = v == 0;
        OracleTreeBroadcast {
            id,
            downlinks,
            uplink,
            payload: is_root.then_some(payload),
            informed_at: is_root.then_some(0),
            informed_slot: is_root.then_some(0),
            max_slots,
            slot: 0,
        }
    }

    /// `true` once informed.
    pub fn is_informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Slot at which the payload arrived (0 at the root).
    pub fn informed_at(&self) -> Option<u64> {
        self.informed_at
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl Protocol for OracleTreeBroadcast {
    type Message = u64;
    type Output = (NodeId, Option<u64>);

    fn act(&mut self, _ctx: &mut SlotCtx<'_>) -> Action<u64> {
        if self.slot >= self.max_slots {
            return Action::Sleep;
        }
        match (self.payload, self.informed_slot) {
            (Some(data), Some(t0)) if !self.downlinks.is_empty() => {
                // Serve children round-robin, one slot each, forever (a
                // child needs exactly one slot; repeating is harmless and
                // keeps the oracle simple).
                let idx = ((self.slot - t0) % self.downlinks.len() as u64) as usize;
                Action::Broadcast { channel: self.downlinks[idx], message: data }
            }
            (Some(_), _) => Action::Sleep, // informed leaf
            (None, _) => {
                Action::Listen { channel: self.uplink.expect("uninformed node has a parent") }
            }
        }
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u64>) {
        if let Feedback::Heard(data) = fb {
            if self.payload.is_none() {
                self.payload = Some(*data);
                self.informed_at = Some(ctx.slot.0);
                self.informed_slot = Some(ctx.slot.0 + 1);
            }
        }
        self.slot += 1;
    }

    fn is_complete(&self) -> bool {
        self.slot >= self.max_slots
    }

    fn into_output(self) -> (NodeId, Option<u64>) {
        (self.id, self.informed_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::Engine;

    #[test]
    fn tree_structure_matches_theorem() {
        let c = 4;
        let delta = 4;
        let net = lower_bound_tree(c, delta, 2).unwrap();
        let b = c.min(delta) - 1;
        assert_eq!(net.len(), 1 + b + b * b);
        let s = net.stats();
        assert_eq!(s.k, 1);
        assert_eq!(s.kmax, 1);
        assert!(s.connected);
        assert_eq!(s.diameter, Some(4));
        // Siblings share nothing.
        assert_eq!(net.overlap(NodeId(1), NodeId(2)), 0);
        assert!(!net.are_neighbors(NodeId(1), NodeId(2)));
        // Parent-child edges share exactly one channel.
        assert_eq!(net.overlap(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn oracle_informs_everyone_in_about_depth_times_b_slots() {
        let c = 4;
        let delta = 4;
        let depth = 3;
        let b = c.min(delta) - 1;
        let net = lower_bound_tree(c, delta, depth).unwrap();
        let max_slots = (depth as u64 + 1) * b as u64 + 8;
        let mut eng =
            Engine::new(&net, 3, |ctx| OracleTreeBroadcast::new(&net, ctx.id, b, 77, max_slots));
        eng.run_to_completion(max_slots);
        let outs = eng.into_outputs();
        let worst = outs.iter().filter_map(|&(_, t)| t).max().unwrap();
        for (id, t) in &outs {
            assert!(t.is_some(), "node {id} uninformed after {max_slots} slots");
        }
        // The oracle meets the lower bound shape: worst-case time within
        // [depth·1, depth·b + small constant].
        assert!(worst >= depth as u64, "worst {worst} too small");
        assert!(worst <= (depth as u64) * b as u64 + b as u64, "worst {worst} too large");
    }

    #[test]
    fn oracle_root_serves_children_in_distinct_slots() {
        let net = lower_bound_tree(3, 3, 1).unwrap();
        let b = 2;
        let mut eng = Engine::new(&net, 1, |ctx| OracleTreeBroadcast::new(&net, ctx.id, b, 9, 16));
        eng.run_to_completion(16);
        let outs = eng.into_outputs();
        let mut times: Vec<u64> = outs[1..].iter().filter_map(|&(_, t)| t).collect();
        times.sort_unstable();
        assert_eq!(times.len(), 2);
        assert_ne!(times[0], times[1], "one child per slot");
    }

    #[test]
    #[should_panic(expected = "c >= 2")]
    fn tree_rejects_degenerate_params() {
        let _ = lower_bound_tree(1, 4, 2);
    }
}
