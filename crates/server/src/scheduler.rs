//! The single-flight scheduler thread.
//!
//! One thread drains the store's FIFO queue onto
//! [`run`](crn_workloads::experiments::campaigns::CampaignKind::run) — one
//! campaign at a time, with the job's journal file as its write-ahead log.
//! Single-flight is a correctness choice, not a simplification: campaigns
//! already saturate the machine internally (wave parallelism), and two
//! campaigns sharing a journal directory must never interleave writes to
//! one WAL. Crash recovery needs no scheduler state at all — the journal
//! *is* the state, so restarting the server and resubmitting a campaign
//! resumes exactly where the old process stopped.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crn_workloads::campaign::{CampaignObserver, CampaignOutcome, ProgressSnapshot};
use crn_workloads::experiments::campaigns::find_kind;

use crate::metrics::ServerMetrics;
use crate::store::{ClaimedJob, JobState, Store};

/// Bridges a running campaign to the store: snapshots flow in, the cancel
/// flag flows out. Lives on the scheduler thread for the duration of one
/// job. Also stamps each snapshot with the run's monotonic elapsed time
/// (the campaign core is clock-free) and feeds the fsync-latency
/// histogram from the snapshot's measurement fields.
struct JobObserver {
    store: Arc<Store>,
    metrics: Arc<ServerMetrics>,
    id: u64,
    started: Instant,
    /// `fsync_count` of the last snapshot seen — fsync latencies arrive as
    /// "latest" values, so only count increments are observed.
    fsyncs_seen: AtomicU64,
    cancel: Arc<std::sync::atomic::AtomicBool>,
}

impl CampaignObserver for JobObserver {
    fn on_progress(&self, snapshot: &ProgressSnapshot) {
        if snapshot.fsync_count > self.fsyncs_seen.swap(snapshot.fsync_count, Ordering::Relaxed) {
            self.metrics.fsync_nanos.observe(snapshot.fsync_nanos_last);
        }
        self.store.set_progress(self.id, snapshot.clone(), self.started.elapsed());
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }
}

/// Spawns the scheduler thread. It exits when [`Store::close`] is called
/// and the queue has drained.
pub fn spawn(store: Arc<Store>, metrics: Arc<ServerMetrics>) -> JoinHandle<()> {
    thread::Builder::new()
        .name("crn-scheduler".to_string())
        .spawn(move || {
            while let Some(job) = store.next_job() {
                run_one(&store, &metrics, job);
            }
        })
        .expect("spawn scheduler thread")
}

fn run_one(store: &Arc<Store>, metrics: &Arc<ServerMetrics>, job: ClaimedJob) {
    // The kind was validated against the registry at submit time; a miss
    // here would mean the store was corrupted, not a bad request.
    let kind = find_kind(&job.spec.kind).expect("kind validated at submit");
    metrics.jobs_started.inc();
    let observer = JobObserver {
        store: store.clone(),
        metrics: metrics.clone(),
        id: job.id,
        started: Instant::now(),
        fsyncs_seen: AtomicU64::new(0),
        cancel: job.cancel.clone(),
    };
    let result = (kind.run)(
        &job.spec.cfg,
        job.spec.threads,
        Some(&job.spec.journal),
        &job.spec.fault,
        &observer,
    );
    match result {
        Ok(report) => {
            let state = match report.outcome {
                CampaignOutcome::Completed => JobState::Completed,
                CampaignOutcome::Killed { .. } => JobState::Killed,
                CampaignOutcome::Cancelled { .. } => JobState::Cancelled,
            };
            store.finish(job.id, state, Some(report), None);
        }
        Err(e) => {
            store.finish(job.id, JobState::Failed, None, Some(e.to_string()));
        }
    }
}
