//! Server-side metrics and the Prometheus text-exposition writer.
//!
//! [`ServerMetrics`] is the one shared instrument bundle: the HTTP workers
//! count connections, requests, parse errors, and response classes; the
//! scheduler counts job starts and feeds the journal-fsync histogram from
//! the campaign's progress snapshots. Everything store-derived — jobs per
//! state, queue depth, per-job progress — is *not* an instrument at all:
//! the store is already the source of truth, so [`ServerMetrics::render`]
//! reads it at scrape time instead of mirroring it into gauges that could
//! drift.
//!
//! The writer follows the same discipline as the [`crate::json`] renderer:
//! output is canonical (instruments sorted by name, derived families in a
//! fixed order, no timestamps), so two scrapes of identical state produce
//! identical bytes. The format is the Prometheus text exposition v0.0.4
//! subset — `# HELP` / `# TYPE` comments and `name{labels} value` samples,
//! histograms as cumulative `_bucket{le="…"}` series plus `_sum`/`_count`
//! — parseable by any Prometheus scraper yet hand-rolled on `std` only.

use std::fmt::Write as _;
use std::sync::Arc;

use crn_sim::metrics::{Counter, Histogram, MetricValue, Registry};
use crn_workloads::campaign::ProgressSnapshot;

use crate::store::{JobState, Store};

/// Content type of the `/metrics` response.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The server's shared instrument bundle (see module docs).
pub struct ServerMetrics {
    registry: Registry,
    /// TCP connections accepted and handed to a worker.
    pub connections: Arc<Counter>,
    /// Requests fully parsed and routed.
    pub requests: Arc<Counter>,
    /// Connections dropped on a request-framing error.
    pub parse_errors: Arc<Counter>,
    /// Responses by status class: `[2xx, 3xx, 4xx, 5xx]`.
    pub responses: [Arc<Counter>; 4],
    /// Jobs the scheduler has started running.
    pub jobs_started: Arc<Counter>,
    /// Journal checkpoint (fsync) latency, in nanoseconds.
    pub fsync_nanos: Arc<Histogram>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new()
    }
}

impl ServerMetrics {
    /// A fresh bundle with every instrument registered and zeroed.
    pub fn new() -> ServerMetrics {
        let registry = Registry::new();
        let connections = registry
            .counter("crn_http_connections_total", "TCP connections handed to an HTTP worker");
        let requests =
            registry.counter("crn_http_requests_total", "requests fully parsed and routed");
        let parse_errors = registry
            .counter("crn_http_parse_errors_total", "connections dropped on a framing error");
        let responses = ["2xx", "3xx", "4xx", "5xx"].map(|class| {
            registry.counter(
                &format!("crn_http_responses_{class}_total"),
                &format!("responses with a {class} status"),
            )
        });
        let jobs_started =
            registry.counter("crn_jobs_started_total", "jobs the scheduler started running");
        let fsync_nanos = registry
            .histogram("crn_journal_fsync_nanos", "journal checkpoint (fsync) latency in ns");
        ServerMetrics {
            registry,
            connections,
            requests,
            parse_errors,
            responses,
            jobs_started,
            fsync_nanos,
        }
    }

    /// Counts one response into its status class.
    pub fn record_response(&self, status: u16) {
        let idx = match status {
            200..=299 => 0,
            300..=399 => 1,
            400..=499 => 2,
            _ => 3,
        };
        self.responses[idx].inc();
    }

    /// Renders the full exposition body: every registered instrument, then
    /// the store-derived families (jobs per state, queue depth, per-job
    /// progress of non-terminal jobs).
    pub fn render(&self, store: &Store) -> String {
        let mut out = String::new();
        for family in self.registry.snapshot() {
            write_family(&mut out, &family.name, &family.help, &family.value);
        }
        self.render_store(&mut out, store);
        out
    }

    fn render_store(&self, out: &mut String, store: &Store) {
        let jobs = store.list();

        let states = [
            JobState::Queued,
            JobState::Running,
            JobState::Completed,
            JobState::Killed,
            JobState::Cancelled,
            JobState::Failed,
        ];
        writeln!(out, "# HELP crn_jobs jobs in the store by lifecycle state").unwrap();
        writeln!(out, "# TYPE crn_jobs gauge").unwrap();
        for state in states {
            let count = jobs.iter().filter(|j| j.state == state).count();
            writeln!(out, "crn_jobs{{state=\"{}\"}} {count}", state.token()).unwrap();
        }
        let queued = jobs.iter().filter(|j| j.queue_position.is_some()).count();
        writeln!(out, "# HELP crn_queue_depth jobs waiting in the FIFO queue").unwrap();
        writeln!(out, "# TYPE crn_queue_depth gauge").unwrap();
        writeln!(out, "crn_queue_depth {queued}").unwrap();

        // Per-job progress for jobs that are still live. Terminal jobs
        // keep their last snapshot in the store for status queries, but
        // exposing them here would grow the scrape without bound.
        let live: Vec<_> = jobs.iter().filter(|j| !j.state.terminal()).collect();
        type Field = (&'static str, &'static str, fn(&ProgressSnapshot) -> u64);
        let fields: [Field; 4] = [
            ("crn_job_recorded", "terminal units recorded", |p| p.recorded as u64),
            ("crn_job_total", "total units in the campaign", |p| p.total as u64),
            ("crn_job_waves", "waves applied by the current run", |p| p.waves),
            ("crn_job_backoff_depth", "units parked in retry backoff", |p| p.backoff_depth as u64),
        ];
        for (name, help, get) in fields {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} gauge").unwrap();
            for job in &live {
                if let Some(p) = &job.progress {
                    writeln!(
                        out,
                        "{name}{{job=\"{}\",campaign=\"{}\"}} {}",
                        job.id,
                        job.campaign,
                        get(p)
                    )
                    .unwrap();
                }
            }
        }
    }
}

/// Writes one instrument in exposition format.
fn write_family(out: &mut String, name: &str, help: &str, value: &MetricValue) {
    writeln!(out, "# HELP {name} {help}").unwrap();
    match value {
        MetricValue::Counter(v) => {
            writeln!(out, "# TYPE {name} counter").unwrap();
            writeln!(out, "{name} {v}").unwrap();
        }
        MetricValue::Gauge(v) => {
            writeln!(out, "# TYPE {name} gauge").unwrap();
            writeln!(out, "{name} {v}").unwrap();
        }
        MetricValue::Histogram { buckets, count, sum } => {
            writeln!(out, "# TYPE {name} histogram").unwrap();
            let mut cumulative = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                cumulative += n;
                // Suppress empty leading/inner buckets except the very
                // first: cumulative series stay correct and typical
                // scrapes shrink from 41 lines to a handful. The overflow
                // bucket (no finite bound) renders as `+Inf` below.
                if let Some(bound) = Histogram::upper_bound(i) {
                    if *n != 0 || i == 0 {
                        writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}").unwrap();
                    }
                }
            }
            writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}").unwrap();
            writeln!(out, "{name}_sum {sum}").unwrap();
            writeln!(out, "{name}_count {count}").unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The CI smoke's well-formedness predicate, kept in sync with
    /// `.github/workflows/ci.yml`: every line is a `# HELP`/`# TYPE`
    /// comment or `name{labels} value`.
    fn well_formed(line: &str) -> bool {
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            return true;
        }
        let Some((series, value)) = line.rsplit_once(' ') else {
            return false;
        };
        let name = series.split('{').next().unwrap_or("");
        !name.is_empty()
            && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
            && (series.contains('{') == series.ends_with('}'))
            && value.parse::<f64>().is_ok()
    }

    #[test]
    fn exposition_is_well_formed_and_canonical() {
        let metrics = ServerMetrics::new();
        let store = Store::new();
        metrics.connections.inc();
        metrics.record_response(201);
        metrics.record_response(404);
        metrics.fsync_nanos.observe(1_500);
        let body = metrics.render(&store);
        for line in body.lines() {
            assert!(well_formed(line), "malformed exposition line: {line:?}");
        }
        assert!(body.contains("crn_http_connections_total 1"), "{body}");
        assert!(body.contains("crn_http_responses_2xx_total 1"), "{body}");
        assert!(body.contains("crn_http_responses_4xx_total 1"), "{body}");
        assert!(body.contains("crn_journal_fsync_nanos_count 1"), "{body}");
        assert!(body.contains("crn_journal_fsync_nanos_bucket{le=\"+Inf\"} 1"), "{body}");
        assert!(body.contains("crn_jobs{state=\"queued\"} 0"), "{body}");
        // Canonical: identical state renders identical bytes.
        assert_eq!(body, metrics.render(&store));
    }

    #[test]
    fn histogram_cumulative_buckets_reach_count() {
        let metrics = ServerMetrics::new();
        for v in [1u64, 2, 3, 1 << 20, u64::MAX] {
            metrics.fsync_nanos.observe(v);
        }
        let body = metrics.render(&Store::new());
        let inf = body
            .lines()
            .find(|l| l.starts_with("crn_journal_fsync_nanos_bucket{le=\"+Inf\"}"))
            .expect("+Inf bucket present");
        assert!(inf.ends_with(" 5"), "{inf}");
        assert!(body.contains("crn_journal_fsync_nanos_count 5"), "{body}");
    }
}
