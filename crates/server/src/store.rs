//! The job store: every campaign the server has been asked to run.
//!
//! One `Mutex<Inner>` guards all job state; a `Condvar` wakes the
//! scheduler thread when work arrives. The HTTP workers only ever take
//! the lock for short, bounded sections (submit / snapshot / cancel), so
//! status polls never wait on a running campaign — progress flows in
//! through [`Store::set_progress`] from the observer hook, not by
//! touching the runner.
//!
//! Cancellation is two-phase by design: a queued job flips straight to
//! `Cancelled`, but a *running* job only gets its cancel flag raised —
//! the campaign runner honours it at the next wave boundary and the
//! scheduler records the terminal state when `run_campaign` returns.
//! That keeps "cancelled" meaning "journal checkpointed, resumable",
//! never "thread killed mid-write".

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crn_workloads::campaign::{CampaignReport, FaultPlan, ProgressSnapshot};
use crn_workloads::experiments::ExpConfig;

/// Where a job is in its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the FIFO queue.
    Queued,
    /// The scheduler thread is running it.
    Running,
    /// Finished with every unit terminal.
    Completed,
    /// The fault-plan kill switch fired (test/bench submissions only).
    Killed,
    /// Cancelled — before starting, or at a wave boundary while running.
    Cancelled,
    /// The campaign returned an error (journal trouble).
    Failed,
}

impl JobState {
    /// Stable lowercase token used in JSON payloads.
    pub fn token(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Killed => "killed",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// `true` once the job can never run again.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Killed | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Everything the scheduler needs to run one job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Registry kind token (`"e2"`, …), validated at submit time.
    pub kind: String,
    /// Experiment configuration the campaign spec derives from.
    pub cfg: ExpConfig,
    /// Wave parallelism.
    pub threads: usize,
    /// Fault plan (kill switch for the kill/resume tests; empty in
    /// production submissions).
    pub fault: FaultPlan,
    /// The job's write-ahead log: `<journal_dir>/<kind>-<confighash>.crnj`.
    pub journal: PathBuf,
}

/// One job's full record.
struct Job {
    id: u64,
    spec: JobSpec,
    campaign: String,
    state: JobState,
    progress: Option<ProgressSnapshot>,
    elapsed: Option<Duration>,
    report: Option<CampaignReport>,
    error: Option<String>,
    cancel: Arc<AtomicBool>,
}

/// Read-only copy of a job's externally-visible state.
#[derive(Debug, Clone)]
pub struct JobView {
    /// Server-assigned id (dense, starting at 1).
    pub id: u64,
    /// Registry kind token.
    pub kind: String,
    /// Campaign name from the spec (e.g. `"e2-cseek-vs-c"`).
    pub campaign: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Jobs ahead of this one, if still queued.
    pub queue_position: Option<usize>,
    /// Latest progress snapshot, once the run has emitted one.
    pub progress: Option<ProgressSnapshot>,
    /// Monotonic run time at that snapshot, stamped by the scheduler (the
    /// campaign core is clock-free; rate/ETA derive from this).
    pub elapsed: Option<Duration>,
    /// Final report, once terminal with one.
    pub report: Option<CampaignReport>,
    /// Error message, if the job failed.
    pub error: Option<String>,
    /// Journal file backing the job.
    pub journal: PathBuf,
}

/// Handed to the scheduler by [`Store::next_job`].
pub struct ClaimedJob {
    /// The job's id.
    pub id: u64,
    /// What to run.
    pub spec: JobSpec,
    /// Cancel flag shared with [`Store::cancel`]; the scheduler's observer
    /// polls it at every wave boundary.
    pub cancel: Arc<AtomicBool>,
}

/// Outcome of a cancel request (maps onto HTTP statuses in the router).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// No such job: 404.
    NotFound,
    /// Cancel accepted (queued job cancelled, or running job flagged).
    Accepted,
    /// Cancel was already requested on this running job: 409.
    AlreadyRequested,
    /// The job is already terminal: 409.
    AlreadyTerminal,
}

/// Outcome of a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued, with the new job's id.
    Queued(u64),
    /// An identical submission (same journal file) is already queued or
    /// running: 409, carrying the active job's id.
    DuplicateActive(u64),
}

struct Inner {
    jobs: Vec<Job>,
    queue: Vec<u64>,
    closed: bool,
}

/// Shared job store (see module docs).
pub struct Store {
    inner: Mutex<Inner>,
    wake: Condvar,
}

impl Default for Store {
    fn default() -> Self {
        Store::new()
    }
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store {
            inner: Mutex::new(Inner { jobs: Vec::new(), queue: Vec::new(), closed: false }),
            wake: Condvar::new(),
        }
    }

    /// Enqueues a job. Two submissions are "the same campaign" exactly
    /// when they share a journal file (kind + config hash), matching the
    /// resume semantics: resubmitting a finished campaign re-runs against
    /// its journal (an instant resume), but a second *active* copy would
    /// race the first for the WAL, so it is refused.
    pub fn submit(&self, spec: JobSpec, campaign: String) -> SubmitOutcome {
        let mut inner = self.inner.lock().unwrap();
        if let Some(active) =
            inner.jobs.iter().find(|j| !j.state.terminal() && j.spec.journal == spec.journal)
        {
            return SubmitOutcome::DuplicateActive(active.id);
        }
        let id = inner.jobs.len() as u64 + 1;
        inner.jobs.push(Job {
            id,
            spec,
            campaign,
            state: JobState::Queued,
            progress: None,
            elapsed: None,
            report: None,
            error: None,
            cancel: Arc::new(AtomicBool::new(false)),
        });
        inner.queue.push(id);
        self.wake.notify_all();
        SubmitOutcome::Queued(id)
    }

    /// Snapshot of every job, submission order.
    pub fn list(&self) -> Vec<JobView> {
        let inner = self.inner.lock().unwrap();
        inner.jobs.iter().map(|j| view(&inner, j)).collect()
    }

    /// Snapshot of one job.
    pub fn view(&self, id: u64) -> Option<JobView> {
        let inner = self.inner.lock().unwrap();
        inner.jobs.iter().find(|j| j.id == id).map(|j| view(&inner, j))
    }

    /// Requests cancellation of a job (see module docs for the two-phase
    /// semantics).
    pub fn cancel(&self, id: u64) -> CancelOutcome {
        let mut inner = self.inner.lock().unwrap();
        let Some(idx) = inner.jobs.iter().position(|j| j.id == id) else {
            return CancelOutcome::NotFound;
        };
        match inner.jobs[idx].state {
            JobState::Queued => {
                inner.jobs[idx].state = JobState::Cancelled;
                inner.queue.retain(|&q| q != id);
                CancelOutcome::Accepted
            }
            JobState::Running => {
                if inner.jobs[idx].cancel.swap(true, Ordering::SeqCst) {
                    CancelOutcome::AlreadyRequested
                } else {
                    CancelOutcome::Accepted
                }
            }
            _ => CancelOutcome::AlreadyTerminal,
        }
    }

    /// Blocks until a job is available (returning it marked `Running`) or
    /// the store is closed (returning `None`). Scheduler-thread only.
    pub fn next_job(&self) -> Option<ClaimedJob> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(&id) = inner.queue.first() {
                inner.queue.remove(0);
                let job = inner.jobs.iter_mut().find(|j| j.id == id).expect("queued job exists");
                job.state = JobState::Running;
                return Some(ClaimedJob {
                    id: job.id,
                    spec: job.spec.clone(),
                    cancel: job.cancel.clone(),
                });
            }
            if inner.closed {
                return None;
            }
            inner = self.wake.wait(inner).unwrap();
        }
    }

    /// Records a progress snapshot for a running job (observer hook),
    /// together with the scheduler's monotonic elapsed time for the run.
    pub fn set_progress(&self, id: u64, snapshot: ProgressSnapshot, elapsed: Duration) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(job) = inner.jobs.iter_mut().find(|j| j.id == id) {
            job.progress = Some(snapshot);
            job.elapsed = Some(elapsed);
        }
    }

    /// Records a job's terminal state and (on success) its report.
    pub fn finish(
        &self,
        id: u64,
        state: JobState,
        report: Option<CampaignReport>,
        error: Option<String>,
    ) {
        debug_assert!(state.terminal());
        let mut inner = self.inner.lock().unwrap();
        if let Some(job) = inner.jobs.iter_mut().find(|j| j.id == id) {
            job.state = state;
            job.report = report;
            job.error = error;
        }
        self.wake.notify_all();
    }

    /// Closes the store: `next_job` returns `None` once the queue drains,
    /// letting the scheduler thread exit.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.wake.notify_all();
    }
}

fn view(inner: &Inner, job: &Job) -> JobView {
    JobView {
        id: job.id,
        kind: job.spec.kind.clone(),
        campaign: job.campaign.clone(),
        state: job.state,
        queue_position: inner.queue.iter().position(|&q| q == job.id),
        progress: job.progress.clone(),
        elapsed: job.elapsed,
        report: job.report.clone(),
        error: job.error.clone(),
        journal: job.spec.journal.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(journal: &str) -> JobSpec {
        JobSpec {
            kind: "e2".to_string(),
            cfg: ExpConfig { quick: true, trials: 1, seed: 1 },
            threads: 1,
            fault: FaultPlan::none(),
            journal: PathBuf::from(journal),
        }
    }

    #[test]
    fn fifo_order_and_queue_positions() {
        let store = Store::new();
        assert_eq!(store.submit(spec("a.crnj"), "a".into()), SubmitOutcome::Queued(1));
        assert_eq!(store.submit(spec("b.crnj"), "b".into()), SubmitOutcome::Queued(2));
        assert_eq!(store.view(1).unwrap().queue_position, Some(0));
        assert_eq!(store.view(2).unwrap().queue_position, Some(1));
        let claimed = store.next_job().unwrap();
        assert_eq!(claimed.id, 1);
        assert_eq!(store.view(1).unwrap().state, JobState::Running);
        assert_eq!(store.view(2).unwrap().queue_position, Some(0));
    }

    #[test]
    fn duplicate_active_submissions_are_refused_until_terminal() {
        let store = Store::new();
        assert_eq!(store.submit(spec("a.crnj"), "a".into()), SubmitOutcome::Queued(1));
        assert_eq!(store.submit(spec("a.crnj"), "a".into()), SubmitOutcome::DuplicateActive(1));
        let claimed = store.next_job().unwrap();
        store.finish(claimed.id, JobState::Completed, None, None);
        // Terminal: same campaign may be submitted again (resume semantics).
        assert_eq!(store.submit(spec("a.crnj"), "a".into()), SubmitOutcome::Queued(2));
    }

    #[test]
    fn cancel_semantics_per_state() {
        let store = Store::new();
        assert_eq!(store.cancel(7), CancelOutcome::NotFound);

        store.submit(spec("a.crnj"), "a".into());
        assert_eq!(store.cancel(1), CancelOutcome::Accepted);
        assert_eq!(store.view(1).unwrap().state, JobState::Cancelled);
        assert_eq!(store.cancel(1), CancelOutcome::AlreadyTerminal);

        store.submit(spec("b.crnj"), "b".into());
        let claimed = store.next_job().unwrap();
        assert_eq!(claimed.id, 2);
        assert!(!claimed.cancel.load(Ordering::SeqCst));
        assert_eq!(store.cancel(2), CancelOutcome::Accepted);
        assert!(claimed.cancel.load(Ordering::SeqCst));
        assert_eq!(store.cancel(2), CancelOutcome::AlreadyRequested);
    }

    #[test]
    fn close_releases_the_scheduler() {
        let store = Store::new();
        store.close();
        assert!(store.next_job().is_none());
    }
}
