//! Request routing and JSON payload shaping.
//!
//! The route table is small and closed:
//!
//! | method | path                       | action                      |
//! |--------|----------------------------|-----------------------------|
//! | GET    | `/`                        | service info + kind listing |
//! | POST   | `/campaigns`               | submit a campaign           |
//! | GET    | `/campaigns`               | list jobs                   |
//! | GET    | `/campaigns/{id}`          | status + progress           |
//! | GET    | `/campaigns/{id}/results`  | final report                |
//! | POST   | `/campaigns/{id}/cancel`   | request cancellation        |
//! | GET    | `/metrics`                 | Prometheus text exposition  |
//!
//! A known path with the wrong method is a 405; everything else is a 404.
//!
//! The `/results` payload is intentionally a *strict subset* of the
//! report: only fields that are a deterministic function of the campaign
//! spec (outcome, ticks, per-arm trial states and lifecycle counters).
//! Provenance flags like `resumed` — true on a resumed run, false on an
//! uninterrupted one — live in the status payload instead, so the
//! acceptance guarantee "results over HTTP are byte-identical, including
//! after a mid-run restart" holds by construction.

use std::path::Path;

use crn_sim::engine::Counters;
use crn_workloads::campaign::{
    config_hash, ArmProgress, BreakerState, CampaignOutcome, CampaignReport, FaultPlan,
    ProgressSnapshot, TrialState,
};
use crn_workloads::experiments::campaigns::{find_kind, REGISTRY};
use crn_workloads::experiments::ExpConfig;
use crn_workloads::runner::Trial;

use crate::http::{Request, Response};
use crate::json::{parse, Json};
use crate::metrics::{ServerMetrics, EXPOSITION_CONTENT_TYPE};
use crate::store::{CancelOutcome, JobSpec, JobState, JobView, Store, SubmitOutcome};

/// What the router needs besides the request itself.
pub struct RouterCtx<'a> {
    /// The shared job store.
    pub store: &'a Store,
    /// The shared metric bundle `/metrics` renders.
    pub metrics: &'a ServerMetrics,
    /// Directory journals live in; one file per (kind, config hash).
    pub journal_dir: &'a Path,
    /// Wave parallelism for submissions that don't specify `threads`.
    pub default_threads: usize,
}

/// Dispatches one request to its handler.
pub fn handle(req: &Request, ctx: &RouterCtx<'_>) -> Response {
    let path = req.target.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => service_info(),
        ("POST", ["campaigns"]) => submit(req, ctx),
        ("GET", ["campaigns"]) => list(ctx),
        ("GET", ["campaigns", id]) => with_job(ctx, id, status),
        ("GET", ["campaigns", id, "results"]) => with_job(ctx, id, results),
        ("POST", ["campaigns", id, "cancel"]) => cancel(ctx, id),
        ("GET", ["metrics"]) => metrics(ctx),
        // Known paths, wrong method.
        (
            _,
            []
            | ["campaigns"]
            | ["campaigns", _]
            | ["campaigns", _, "results"]
            | ["campaigns", _, "cancel"]
            | ["metrics"],
        ) => Response::error(405, "method not allowed"),
        _ => Response::error(404, "no such route"),
    }
}

fn service_info() -> Response {
    let kinds = REGISTRY
        .iter()
        .map(|k| {
            Json::Obj(vec![
                ("kind".into(), Json::Str(k.kind.into())),
                ("describe".into(), Json::Str(k.describe.into())),
            ])
        })
        .collect();
    let body = Json::Obj(vec![
        ("service".into(), Json::Str("crn-campaign-server".into())),
        ("kinds".into(), Json::Arr(kinds)),
    ]);
    Response::json(200, body.render())
}

/// Parses `{id}` and hands the job view to `f`; 404 on bad or unknown ids.
fn with_job(ctx: &RouterCtx<'_>, id: &str, f: fn(&JobView) -> Response) -> Response {
    let Some(view) = id.parse::<u64>().ok().and_then(|id| ctx.store.view(id)) else {
        return Response::error(404, "no such campaign");
    };
    f(&view)
}

const SUBMIT_FIELDS: &[&str] = &["kind", "quick", "trials", "seed", "threads", "fault"];

fn submit(req: &Request, ctx: &RouterCtx<'_>) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::error(400, "body is not utf-8");
    };
    let value = match parse(text) {
        Ok(v) => v,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let Some(members) = value.as_obj() else {
        return Response::error(400, "body must be a json object");
    };
    // Strict field set: a typo'd field name should fail loudly, not
    // silently fall back to a default and run the wrong campaign.
    for (key, _) in members {
        if !SUBMIT_FIELDS.contains(&key.as_str()) {
            return Response::error(400, &format!("unknown field {key:?}"));
        }
    }
    let Some(kind_name) = value.get("kind").and_then(Json::as_str) else {
        return Response::error(400, "missing required string field \"kind\"");
    };
    let Some(kind) = find_kind(kind_name) else {
        let known: Vec<&str> = REGISTRY.iter().map(|k| k.kind).collect();
        return Response::error(400, &format!("unknown kind {kind_name:?} (known: {known:?})"));
    };

    let defaults = ExpConfig::default();
    let mut cfg = defaults;
    if let Some(v) = value.get("quick") {
        match v.as_bool() {
            Some(b) => cfg.quick = b,
            None => return Response::error(400, "\"quick\" must be a boolean"),
        }
    }
    if let Some(v) = value.get("trials") {
        match v.as_u64() {
            Some(t) if t >= 1 => cfg.trials = t as usize,
            _ => return Response::error(400, "\"trials\" must be a positive integer"),
        }
    }
    if let Some(v) = value.get("seed") {
        match v.as_u64() {
            Some(s) => cfg.seed = s,
            None => return Response::error(400, "\"seed\" must be a u64"),
        }
    }
    let threads = match value.get("threads") {
        None => ctx.default_threads,
        Some(v) => match v.as_u64() {
            Some(t) if t >= 1 => t as usize,
            _ => return Response::error(400, "\"threads\" must be a positive integer"),
        },
    };
    let fault = match value.get("fault") {
        None => FaultPlan::none(),
        Some(v) => match parse_fault(v) {
            Ok(f) => f,
            Err(msg) => return Response::error(400, msg),
        },
    };

    let spec = (kind.spec)(&cfg);
    let hash = config_hash(&spec);
    let journal = ctx.journal_dir.join(format!("{}-{hash:016x}.crnj", kind.kind));
    let job =
        JobSpec { kind: kind.kind.to_string(), cfg, threads, fault, journal: journal.clone() };
    match ctx.store.submit(job, spec.name.clone()) {
        SubmitOutcome::Queued(id) => {
            let view = ctx.store.view(id).expect("just submitted");
            Response::json(201, status_json(&view).render())
        }
        SubmitOutcome::DuplicateActive(id) => Response::error(
            409,
            &format!("an identical campaign is already active as job {id} (same journal)"),
        ),
    }
}

/// `{"kill_after": N}` — the deterministic kill switch the kill/resume
/// tests and CI smoke use. Production submissions omit `fault` entirely.
fn parse_fault(v: &Json) -> Result<FaultPlan, &'static str> {
    let Some(members) = v.as_obj() else {
        return Err("\"fault\" must be an object");
    };
    let mut plan = FaultPlan::none();
    for (key, val) in members {
        match key.as_str() {
            "kill_after" => match val.as_u64() {
                Some(n) => plan.kill_after_trials = Some(n as usize),
                None => return Err("\"fault.kill_after\" must be a u64"),
            },
            _ => return Err("unknown fault field (only \"kill_after\" is supported)"),
        }
    }
    Ok(plan)
}

fn list(ctx: &RouterCtx<'_>) -> Response {
    let jobs = ctx.store.list().iter().map(status_json).collect();
    Response::json(200, Json::Obj(vec![("campaigns".into(), Json::Arr(jobs))]).render())
}

fn status(view: &JobView) -> Response {
    Response::json(200, status_json(view).render())
}

/// The Prometheus text exposition — the one non-JSON payload the server
/// emits, same canonical-bytes discipline as everything else.
fn metrics(ctx: &RouterCtx<'_>) -> Response {
    Response {
        status: 200,
        content_type: EXPOSITION_CONTENT_TYPE,
        body: ctx.metrics.render(ctx.store).into_bytes(),
    }
}

fn results(view: &JobView) -> Response {
    match (view.state, &view.report) {
        (JobState::Completed, Some(report)) => {
            Response::json(200, results_json(&view.kind, &view.campaign, report).render())
        }
        (state, _) if state.terminal() => Response::error(
            409,
            &format!("campaign did not complete (state={}); resubmit to resume", state.token()),
        ),
        _ => Response::error(409, "campaign still in progress"),
    }
}

fn cancel(ctx: &RouterCtx<'_>, id: &str) -> Response {
    let Some(id) = id.parse::<u64>().ok() else {
        return Response::error(404, "no such campaign");
    };
    match ctx.store.cancel(id) {
        CancelOutcome::NotFound => Response::error(404, "no such campaign"),
        CancelOutcome::Accepted => {
            let view = ctx.store.view(id).expect("job exists");
            Response::json(202, status_json(&view).render())
        }
        CancelOutcome::AlreadyRequested => Response::error(409, "cancel already requested"),
        CancelOutcome::AlreadyTerminal => Response::error(409, "campaign already terminal"),
    }
}

// ---------------------------------------------------------------------
// JSON shaping
// ---------------------------------------------------------------------

fn status_json(view: &JobView) -> Json {
    let mut members = vec![
        ("id".into(), Json::num_u64(view.id)),
        ("kind".into(), Json::Str(view.kind.clone())),
        ("campaign".into(), Json::Str(view.campaign.clone())),
        ("state".into(), Json::Str(view.state.token().into())),
    ];
    if let Some(pos) = view.queue_position {
        members.push(("queue_position".into(), Json::num_u64(pos as u64)));
    }
    if let Some(progress) = &view.progress {
        members.push(("progress".into(), progress_json(progress, view.elapsed)));
    }
    if let Some(report) = &view.report {
        members.push(("resumed".into(), Json::Bool(report.resumed)));
        members.push(("recovered_torn_tail".into(), Json::Bool(report.recovered_torn_tail)));
    }
    if let Some(error) = &view.error {
        members.push(("error".into(), Json::Str(error.clone())));
    }
    if let Some(name) = view.journal.file_name() {
        members.push(("journal".into(), Json::Str(name.to_string_lossy().into_owned())));
    }
    Json::Obj(members)
}

/// Progress payload: lifecycle counts straight from the snapshot, plus —
/// when the scheduler has stamped a monotonic `elapsed` — the derived
/// throughput and ETA. Rate math lives in [`ProgressSnapshot`] itself so
/// the monitor and any other client agree with what the server reports.
fn progress_json(p: &ProgressSnapshot, elapsed: Option<std::time::Duration>) -> Json {
    let mut members = vec![
        ("tick".into(), Json::num_u64(p.tick)),
        ("recorded".into(), Json::num_u64(p.recorded as u64)),
        ("total".into(), Json::num_u64(p.total as u64)),
        ("waves".into(), Json::num_u64(p.waves)),
        ("backoff_depth".into(), Json::num_u64(p.backoff_depth as u64)),
        ("resumed".into(), Json::Bool(p.resumed)),
        ("resumed_units".into(), Json::num_u64(p.resumed_units as u64)),
        ("fsync_count".into(), Json::num_u64(p.fsync_count)),
        ("fsync_nanos_last".into(), Json::num_u64(p.fsync_nanos_last)),
    ];
    if let Some(elapsed) = elapsed {
        members.push(("elapsed_secs".into(), Json::num_f64(elapsed.as_secs_f64())));
        members.push(("units_per_sec".into(), Json::num_f64(p.throughput(elapsed))));
        members.push((
            "eta_secs".into(),
            p.eta(elapsed).map_or(Json::Null, |eta| Json::num_f64(eta.as_secs_f64())),
        ));
    }
    members.push(("arms".into(), Json::Arr(p.arms.iter().map(arm_progress_json).collect())));
    Json::Obj(members)
}

fn arm_progress_json(a: &ArmProgress) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(a.name.clone())),
        ("done".into(), Json::num_u64(a.done as u64)),
        ("skipped".into(), Json::num_u64(a.skipped as u64)),
        ("abandoned".into(), Json::num_u64(a.abandoned as u64)),
        ("pending".into(), Json::num_u64(a.pending as u64)),
        ("retries".into(), Json::num_u64(a.retries)),
        ("invocations".into(), Json::num_u64(a.invocations)),
        ("breaker".into(), breaker_json(&a.breaker)),
        ("tripped".into(), Json::Bool(a.tripped)),
    ])
}

fn breaker_json(state: &BreakerState) -> Json {
    match state {
        BreakerState::Closed => Json::Obj(vec![("state".into(), Json::Str("closed".into()))]),
        BreakerState::Open { until_tick } => Json::Obj(vec![
            ("state".into(), Json::Str("open".into())),
            ("until_tick".into(), Json::num_u64(*until_tick)),
        ]),
        BreakerState::HalfOpen => Json::Obj(vec![("state".into(), Json::Str("half_open".into()))]),
    }
}

/// The canonical `/results` payload for a report. Public so the CI smoke
/// binary and the e2e tests can render the batch-mode reference body and
/// compare it byte-for-byte against what came over HTTP.
pub fn results_json(kind: &str, campaign: &str, report: &CampaignReport) -> Json {
    let outcome = match report.outcome {
        CampaignOutcome::Completed => "completed",
        CampaignOutcome::Killed { .. } => "killed",
        CampaignOutcome::Cancelled { .. } => "cancelled",
    };
    let arms = report
        .arms
        .iter()
        .map(|arm| {
            Json::Obj(vec![
                ("name".into(), Json::Str(arm.name.clone())),
                ("invocations".into(), Json::num_u64(arm.invocations)),
                ("retries".into(), Json::num_u64(arm.retries)),
                ("backoff_ticks".into(), Json::num_u64(arm.backoff_ticks)),
                ("breaker_trips".into(), Json::num_u64(arm.breaker_trips as u64)),
                ("tripped".into(), Json::Bool(arm.tripped)),
                ("trials".into(), Json::Arr(arm.trials.iter().map(trial_state_json).collect())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("kind".into(), Json::Str(kind.into())),
        ("campaign".into(), Json::Str(campaign.into())),
        ("outcome".into(), Json::Str(outcome.into())),
        ("ticks".into(), Json::num_u64(report.ticks)),
        ("arms".into(), Json::Arr(arms)),
    ])
}

fn trial_state_json(state: &TrialState) -> Json {
    match state {
        TrialState::Done(t) => Json::Obj(vec![
            ("state".into(), Json::Str("done".into())),
            ("trial".into(), trial_json(t)),
        ]),
        TrialState::Skipped(why) => Json::Obj(vec![
            ("state".into(), Json::Str("skipped".into())),
            ("why".into(), Json::Str(why.clone())),
        ]),
        TrialState::Abandoned { attempts, why } => Json::Obj(vec![
            ("state".into(), Json::Str("abandoned".into())),
            ("attempts".into(), Json::num_u64(*attempts as u64)),
            ("why".into(), Json::Str(format!("{why:?}").to_ascii_lowercase())),
        ]),
        TrialState::Pending => Json::Obj(vec![("state".into(), Json::Str("pending".into()))]),
    }
}

fn trial_json(t: &Trial) -> Json {
    Json::Obj(vec![
        ("seed".into(), Json::num_u64(t.seed)),
        ("completed_at".into(), t.completed_at.map_or(Json::Null, Json::num_u64)),
        ("slots_run".into(), Json::num_u64(t.slots_run)),
        ("counters".into(), counters_json(&t.counters)),
    ])
}

fn counters_json(c: &Counters) -> Json {
    Json::Obj(vec![
        ("slots".into(), Json::num_u64(c.slots)),
        ("broadcasts".into(), Json::num_u64(c.broadcasts)),
        ("listens".into(), Json::num_u64(c.listens)),
        ("sleeps".into(), Json::num_u64(c.sleeps)),
        ("deliveries".into(), Json::num_u64(c.deliveries)),
        ("collisions".into(), Json::num_u64(c.collisions)),
        ("idle_listens".into(), Json::num_u64(c.idle_listens)),
        ("pu_blocked_listens".into(), Json::num_u64(c.pu_blocked_listens)),
        ("pu_blocked_broadcasts".into(), Json::num_u64(c.pu_blocked_broadcasts)),
        ("pu_busy_channel_slots".into(), Json::num_u64(c.pu_busy_channel_slots)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ctx<'a>(store: &'a Store, metrics: &'a ServerMetrics, dir: &'a Path) -> RouterCtx<'a> {
        RouterCtx { store, metrics, journal_dir: dir, default_threads: 1 }
    }

    fn post(target: &str, body: &str) -> Request {
        let mut req = Request::new("POST", target);
        req.body = body.as_bytes().to_vec();
        req
    }

    #[test]
    fn unknown_routes_and_wrong_methods() {
        let store = Store::new();
        let dir = PathBuf::from("/tmp");
        let metrics = ServerMetrics::new();
        let ctx = ctx(&store, &metrics, &dir);
        assert_eq!(handle(&Request::new("GET", "/nope"), &ctx).status, 404);
        assert_eq!(handle(&Request::new("DELETE", "/campaigns"), &ctx).status, 405);
        assert_eq!(handle(&Request::new("GET", "/campaigns/1"), &ctx).status, 404);
        assert_eq!(handle(&Request::new("GET", "/campaigns/zzz"), &ctx).status, 404);
        assert_eq!(handle(&Request::new("GET", "/"), &ctx).status, 200);
        assert_eq!(handle(&post("/metrics", ""), &ctx).status, 405);
        let resp = handle(&Request::new("GET", "/metrics"), &ctx);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type, EXPOSITION_CONTENT_TYPE);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("crn_http_requests_total"), "{text}");
    }

    #[test]
    fn submit_validates_strictly() {
        let store = Store::new();
        let dir = PathBuf::from("/tmp");
        let metrics = ServerMetrics::new();
        let ctx = ctx(&store, &metrics, &dir);
        for (body, why) in [
            ("", "empty body"),
            ("[]", "not an object"),
            ("{}", "missing kind"),
            (r#"{"kind":"nope"}"#, "unknown kind"),
            (r#"{"kind":"e2","trails":3}"#, "typo'd field"),
            (r#"{"kind":"e2","trials":0}"#, "zero trials"),
            (r#"{"kind":"e2","threads":"four"}"#, "non-numeric threads"),
            (r#"{"kind":"e2","fault":{"explode":true}}"#, "unknown fault field"),
        ] {
            let resp = handle(&post("/campaigns", body), &ctx);
            assert_eq!(resp.status, 400, "expected 400 for {why}");
        }
    }

    #[test]
    fn submit_queues_and_duplicate_active_conflicts() {
        let store = Store::new();
        let dir = PathBuf::from("/tmp/crn-router-test");
        let metrics = ServerMetrics::new();
        let ctx = ctx(&store, &metrics, &dir);
        let body = r#"{"kind":"e2","quick":true,"trials":2,"seed":9}"#;
        let resp = handle(&post("/campaigns", body), &ctx);
        assert_eq!(resp.status, 201);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"state\":\"queued\""), "{text}");
        assert!(text.contains("\"journal\":\"e2-"), "{text}");

        assert_eq!(handle(&post("/campaigns", body), &ctx).status, 409);
        // A different seed is a different campaign (different journal).
        let other = r#"{"kind":"e2","quick":true,"trials":2,"seed":10}"#;
        assert_eq!(handle(&post("/campaigns", other), &ctx).status, 201);
    }

    #[test]
    fn results_conflict_until_completed_and_cancel_state_machine() {
        let store = Store::new();
        let dir = PathBuf::from("/tmp/crn-router-test2");
        let metrics = ServerMetrics::new();
        let ctx = ctx(&store, &metrics, &dir);
        let body = r#"{"kind":"e2","quick":true,"trials":1,"seed":11}"#;
        assert_eq!(handle(&post("/campaigns", body), &ctx).status, 201);
        assert_eq!(handle(&Request::new("GET", "/campaigns/1/results"), &ctx).status, 409);
        assert_eq!(handle(&post("/campaigns/1/cancel", ""), &ctx).status, 202);
        assert_eq!(handle(&post("/campaigns/1/cancel", ""), &ctx).status, 409);
        assert_eq!(handle(&post("/campaigns/99/cancel", ""), &ctx).status, 404);
    }
}
