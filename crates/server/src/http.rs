//! An incremental HTTP/1.1 request parser and response writer.
//!
//! Hand-rolled on purpose: the build environment is offline, so the server
//! owns its own wire layer the same way the campaign layer owns its own
//! journal codec. The parser is *incremental* — bytes arrive via
//! [`RequestParser::feed`] in whatever fragments the kernel hands us, and
//! [`RequestParser::try_next`] yields a request exactly when one is fully
//! buffered. The parse result is a pure function of the byte stream, never
//! of how it was fragmented; `tests/tests/server_http_props.rs` enforces
//! this by re-splitting encoded requests at every byte boundary.
//!
//! Resource limits are enforced *while* buffering, not after: an attacker
//! streaming an endless request line is cut off at
//! [`Limits::max_request_line`] without the server ever holding more than
//! that. Limit violations map onto distinct status codes
//! ([`ParseError::status`]): 400 for malformed syntax, 431 for oversized
//! request-line/header sections, 413 for oversized bodies.

use std::collections::VecDeque;

/// Resource limits the parser enforces while buffering.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum request-line length in bytes (431 beyond this).
    pub max_request_line: usize,
    /// Maximum total header-section length in bytes, request line
    /// included (431 beyond this).
    pub max_header_bytes: usize,
    /// Maximum number of header fields (431 beyond this).
    pub max_headers: usize,
    /// Maximum declared `Content-Length` in bytes (413 beyond this).
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_bytes: 32 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// Why a request could not be parsed. Fatal to the connection: the server
/// writes the mapped status and closes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Syntactically malformed request (bad method token, missing version,
    /// bad header line, unsupported transfer encoding, …).
    BadRequest(&'static str),
    /// The request line exceeded [`Limits::max_request_line`].
    RequestLineTooLong,
    /// The header section exceeded [`Limits::max_header_bytes`] or
    /// [`Limits::max_headers`].
    HeadersTooLarge,
    /// The declared body exceeded [`Limits::max_body`].
    BodyTooLarge,
}

impl ParseError {
    /// The HTTP status code this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ParseError::BadRequest(_) => 400,
            ParseError::RequestLineTooLong | ParseError::HeadersTooLarge => 431,
            ParseError::BodyTooLarge => 413,
        }
    }

    /// Human-readable cause, used as the error-response message.
    pub fn message(&self) -> &'static str {
        match self {
            ParseError::BadRequest(why) => why,
            ParseError::RequestLineTooLong => "request line too long",
            ParseError::HeadersTooLarge => "header section too large",
            ParseError::BodyTooLarge => "request body too large",
        }
    }
}

/// A fully-received request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token, as sent (case-sensitive per RFC 7230).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub target: String,
    /// Header fields in arrival order, values trimmed of optional
    /// whitespace. Use [`Request::header`] for case-insensitive lookup.
    pub headers: Vec<(String, String)>,
    /// Body bytes (exactly `Content-Length` of them; empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// A request with no headers and no body (builder for tests/clients).
    pub fn new(method: &str, target: &str) -> Request {
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First value of `name`, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// Serializes the request to wire bytes. A `Content-Length` header is
    /// appended when the body is non-empty and none is present, so the
    /// output always re-parses to an equal request (the property the
    /// round-trip tests check).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(self.method.as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target.as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        for (k, v) in &self.headers {
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !self.body.is_empty() && self.header("content-length").is_none() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Whether the peer asked to keep the connection open (HTTP/1.1
    /// default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Incremental request parser: [`feed`](RequestParser::feed) bytes in,
/// [`try_next`](RequestParser::try_next) requests out. One instance per
/// connection; pipelined requests queue up naturally in the buffer.
#[derive(Debug)]
pub struct RequestParser {
    limits: Limits,
    buf: VecDeque<u8>,
}

impl RequestParser {
    /// A parser enforcing `limits`.
    pub fn new(limits: Limits) -> RequestParser {
        RequestParser { limits, buf: VecDeque::new() }
    }

    /// Appends received bytes to the buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes.iter().copied());
    }

    /// Bytes currently buffered (diagnostics/tests).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to parse one complete request off the front of the buffer.
    ///
    /// * `Ok(Some(req))` — a full request was consumed.
    /// * `Ok(None)` — need more bytes; feed and retry.
    /// * `Err(e)` — the stream is unrecoverable; respond with
    ///   [`ParseError::status`] and close.
    pub fn try_next(&mut self) -> Result<Option<Request>, ParseError> {
        // Work on a contiguous view; VecDeque::make_contiguous is cheap
        // amortized and keeps feed() allocation-free on the happy path.
        let buf = self.buf.make_contiguous();

        // 1. Request line.
        let Some(line_end) = find(buf, b"\r\n", 0) else {
            if buf.len() > self.limits.max_request_line {
                return Err(ParseError::RequestLineTooLong);
            }
            return Ok(None);
        };
        if line_end > self.limits.max_request_line {
            return Err(ParseError::RequestLineTooLong);
        }
        let (method, target) = parse_request_line(&buf[..line_end])?;

        // 2. Header section, terminated by an empty line.
        let mut headers = Vec::new();
        let mut cursor = line_end + 2;
        let head_end = loop {
            let Some(eol) = find(buf, b"\r\n", cursor) else {
                if buf.len() - cursor > self.limits.max_header_bytes {
                    return Err(ParseError::HeadersTooLarge);
                }
                return Ok(None);
            };
            if eol == cursor {
                break eol + 2; // empty line: end of headers
            }
            if eol - line_end > self.limits.max_header_bytes {
                return Err(ParseError::HeadersTooLarge);
            }
            if headers.len() == self.limits.max_headers {
                return Err(ParseError::HeadersTooLarge);
            }
            headers.push(parse_header_line(&buf[cursor..eol])?);
            cursor = eol + 2;
        };

        // 3. Body, sized by Content-Length. Chunked encoding is out of
        // scope for this server's API surface; reject it explicitly.
        if headers
            .iter()
            .any(|(k, _): &(String, String)| k.eq_ignore_ascii_case("transfer-encoding"))
        {
            return Err(ParseError::BadRequest("transfer-encoding not supported"));
        }
        let content_length =
            match headers.iter().find(|(k, _)| k.eq_ignore_ascii_case("content-length")) {
                Some((_, v)) => v
                    .parse::<usize>()
                    .map_err(|_| ParseError::BadRequest("invalid content-length"))?,
                None => 0,
            };
        if content_length > self.limits.max_body {
            return Err(ParseError::BodyTooLarge);
        }
        if buf.len() < head_end + content_length {
            return Ok(None);
        }
        let body = buf[head_end..head_end + content_length].to_vec();
        self.buf.drain(..head_end + content_length);
        Ok(Some(Request { method, target, headers, body }))
    }
}

/// First index of `needle` in `haystack[from..]`, absolute.
fn find(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if haystack.len() < from + needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

/// RFC 7230 `tchar`: the characters legal in a method token or header
/// field name.
fn is_tchar(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn parse_request_line(line: &[u8]) -> Result<(String, String), ParseError> {
    let text =
        std::str::from_utf8(line).map_err(|_| ParseError::BadRequest("request line not utf-8"))?;
    let mut parts = text.split(' ');
    let (Some(method), Some(target), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::BadRequest("request line must be METHOD SP TARGET SP VERSION"));
    };
    if method.is_empty() || !method.bytes().all(is_tchar) {
        return Err(ParseError::BadRequest("malformed method token"));
    }
    if target.is_empty() || target.contains(|c: char| c.is_ascii_control()) {
        return Err(ParseError::BadRequest("malformed request target"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ParseError::BadRequest("unsupported http version"));
    }
    Ok((method.to_string(), target.to_string()))
}

fn parse_header_line(line: &[u8]) -> Result<(String, String), ParseError> {
    // Obsolete line folding (leading whitespace continuation) is a known
    // request-smuggling vector; reject rather than interpret.
    if line.first().is_some_and(|b| *b == b' ' || *b == b'\t') {
        return Err(ParseError::BadRequest("obsolete header folding"));
    }
    let text =
        std::str::from_utf8(line).map_err(|_| ParseError::BadRequest("header line not utf-8"))?;
    let Some((name, value)) = text.split_once(':') else {
        return Err(ParseError::BadRequest("header line missing ':'"));
    };
    if name.is_empty() || !name.bytes().all(is_tchar) {
        return Err(ParseError::BadRequest("malformed header name"));
    }
    let value = value.trim_matches([' ', '\t']);
    if value.contains(|c: char| c.is_ascii_control()) {
        return Err(ParseError::BadRequest("control character in header value"));
    }
    Ok((name.to_string(), value.to_string()))
}

/// A response to serialize back to the peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response { status, content_type: "application/json", body: body.into_bytes() }
    }

    /// A JSON error response: `{"error":"<msg>"}`.
    pub fn error(status: u16, msg: &str) -> Response {
        let body = crate::json::Json::Obj(vec![(
            "error".to_string(),
            crate::json::Json::Str(msg.to_string()),
        )]);
        Response::json(status, body.render())
    }

    /// The standard reason phrase for a status code.
    pub fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Content Too Large",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            _ => "Unknown",
        }
    }

    /// Serializes status line, headers, and body to wire bytes.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status, Response::reason(self.status)).as_bytes(),
        );
        out.extend_from_slice(format!("Content-Type: {}\r\n", self.content_type).as_bytes());
        out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if keep_alive {
            b"Connection: keep-alive\r\n".as_slice()
        } else {
            b"Connection: close\r\n".as_slice()
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<Request>, ParseError> {
        let mut p = RequestParser::new(Limits::default());
        p.feed(bytes);
        p.try_next()
    }

    #[test]
    fn parses_a_simple_get() {
        let req = parse_all(b"GET /campaigns HTTP/1.1\r\nHost: x\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/campaigns");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn parses_a_post_with_body_and_is_incremental() {
        let wire = b"POST /campaigns HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut p = RequestParser::new(Limits::default());
        for &b in &wire[..wire.len() - 1] {
            p.feed(&[b]);
            assert_eq!(p.try_next(), Ok(None));
        }
        p.feed(&wire[wire.len() - 1..]);
        let req = p.try_next().unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let mut p = RequestParser::new(Limits::default());
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        assert_eq!(p.try_next().unwrap().unwrap().target, "/a");
        assert_eq!(p.try_next().unwrap().unwrap().target, "/b");
        assert_eq!(p.try_next(), Ok(None));
    }

    #[test]
    fn limit_violations_map_to_the_right_statuses() {
        let limits =
            Limits { max_request_line: 32, max_header_bytes: 64, max_headers: 2, max_body: 8 };
        let mut p = RequestParser::new(limits);
        p.feed(&[b'A'; 33]);
        assert_eq!(p.try_next().unwrap_err().status(), 431);

        let mut p = RequestParser::new(limits);
        p.feed(b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n");
        assert_eq!(p.try_next().unwrap_err(), ParseError::HeadersTooLarge);

        let mut p = RequestParser::new(limits);
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n");
        assert_eq!(p.try_next().unwrap_err().status(), 413);
    }

    #[test]
    fn malformed_requests_are_400s() {
        for bad in [
            b"G<T / HTTP/1.1\r\n\r\n".as_slice(),
            b"GET / HTTP/2.0\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 x\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            b"GET / HTTP/1.1\r\n bad: fold\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let err = parse_all(bad).unwrap_err();
            assert_eq!(err.status(), 400, "expected 400 for {:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn encode_round_trips() {
        let mut req = Request::new("POST", "/campaigns");
        req.headers.push(("X-Test".to_string(), "a b".to_string()));
        req.body = b"{\"kind\":\"e2\"}".to_vec();
        let parsed = parse_all(&req.encode()).unwrap().unwrap();
        assert_eq!(parsed.method, req.method);
        assert_eq!(parsed.target, req.target);
        assert_eq!(parsed.body, req.body);
        assert_eq!(parsed.header("x-test"), Some("a b"));
        assert_eq!(parsed.header("content-length"), Some("13"));
    }

    #[test]
    fn response_encodes_with_length_and_connection() {
        let resp = Response::error(404, "no such campaign");
        let wire = resp.encode(false);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"no such campaign\"}"));
    }
}
