//! A hand-rolled JSON subset: parse and render, no dependencies.
//!
//! Two deliberate deviations from a general-purpose JSON library, both in
//! service of the server's bit-identity guarantee:
//!
//! * **Numbers are kept as lexemes.** Campaign seeds are `u64`s; routing
//!   them through `f64` would silently corrupt values above 2^53 and break
//!   the "results over HTTP == batch results" acceptance test. [`Json::Num`]
//!   stores the exact source text and converts on access.
//! * **Rendering is canonical.** Object keys keep insertion order, there is
//!   no whitespace, and strings escape exactly `"`, `\`, and control
//!   characters — so a given [`Json`] value renders to exactly one byte
//!   sequence, which is what lets the e2e tests compare response bodies
//!   with `==`.

use std::fmt;

/// Maximum nesting depth [`parse`] accepts. Deep enough for any payload
/// this server produces, shallow enough that a hostile body cannot blow
/// the parser's stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its exact lexeme (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and significant for rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value from a `u64`, with the canonical decimal lexeme.
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number value from an `f64` (used only for derived ratios, never
    /// for identifiers or seeds).
    pub fn num_f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else {
            Json::Null
        }
    }

    /// Member lookup on an object; `None` on other variants or a missing
    /// key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one and fits losslessly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value to its canonical byte sequence (see module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(lex) => out.push_str(lex),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a body failed to parse, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid json at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar; the input is a &str so
                    // boundaries are guaranteed valid.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor past the `u`), handling
    /// surrogate pairs; leaves the cursor after the last consumed digit + 1
    /// is handled by the caller's `continue`.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: a \uXXXX low surrogate must follow.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits();
        if int_digits == 0 {
            return Err(self.err("expected digit"));
        }
        // Leading zeros are invalid JSON ("01"), but a bare "0" is fine.
        let int_lex = &self.bytes[start..self.pos];
        let unsigned = if int_lex[0] == b'-' { &int_lex[1..] } else { int_lex };
        if unsigned.len() > 1 && unsigned[0] == b'0' {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digits() == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        let lex = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Ok(Json::Num(lex.to_string()))
    }

    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        self.pos - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_seeds_round_trip_losslessly() {
        // Above 2^53: an f64 round-trip would corrupt this.
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn objects_arrays_and_escapes_round_trip() {
        let src = r#"{"kind":"e2","n":[1,2.5,-3e2],"s":"a\"b\\c\nd","ok":true,"z":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("e2"));
        assert_eq!(v.get("n").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("a\"b\\c\nd"));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("z"), Some(&Json::Null));
        // Canonical render reproduces the (already-canonical) source.
        assert_eq!(v.render(), src);
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap(), Json::Str("Aé".into()));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), Json::Str("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
        assert!(parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "01",
            "1.",
            "1e",
            "tru",
            "\"abc",
            "{\"a\":}",
            "{\"a\" 1}",
            "1 2",
            "{\"a\":1,}",
            "[1,]",
            "\"\\x\"",
        ] {
            assert!(parse(bad).is_err(), "expected parse error for {bad:?}");
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(parse(&ok).is_ok());
    }
}
