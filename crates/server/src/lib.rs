#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `crn-server`: a threaded HTTP/1.1 front-end for experiment campaigns —
//! simulation-as-a-service on nothing but `std::net`.
//!
//! The build environment is offline, so there is no tokio, no hyper, no
//! serde: the crate hand-rolls the three layers it needs, each small and
//! testable on its own.
//!
//! * [`http`] — an incremental request parser with hard resource limits,
//!   plus a response writer.
//! * [`json`] — a JSON subset codec whose numbers are lexemes (`u64`
//!   seeds survive) and whose rendering is canonical (bodies compare
//!   with `==`).
//! * [`store`] / [`scheduler`] / [`router`] — a FIFO job store, a
//!   single-flight scheduler thread driving
//!   [`run_campaign`](crn_workloads::campaign::run_campaign) with each
//!   job's journal as its write-ahead log, and the route handlers.
//!
//! # Threading model
//!
//! ```text
//!   accept thread ──► connection queue ──► N http workers ──► Store
//!                                                              │ ▲
//!                                              (FIFO + condvar)│ │ snapshots
//!                                                              ▼ │
//!                                                      scheduler thread
//!                                                      (one campaign at
//!                                                       a time, journal
//!                                                       as WAL)
//! ```
//!
//! The accept thread does nothing but hand sockets to a bounded worker
//! set (the `WorkerPool` shape from `crn-sim`, rebuilt on blocking I/O);
//! workers parse requests and take only short, bounded sections of the
//! store lock, so status polls stay responsive while a campaign runs.
//!
//! # Restart safety
//!
//! The server keeps no durable state of its own — the campaign journal
//! *is* the write-ahead log. Kill the process mid-campaign, start a new
//! server on the same `--journal-dir`, resubmit the same campaign, and
//! the run resumes from the last fsynced wave; `GET …/results` then
//! returns bytes identical to an uninterrupted run's (enforced by
//! `tests/tests/server_e2e.rs` and the CI smoke step).

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod router;
pub mod scheduler;
pub mod store;

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use http::{Limits, RequestParser, Response};
use metrics::ServerMetrics;
use router::RouterCtx;
use store::Store;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// HTTP worker threads (bounds concurrent request handling).
    pub workers: usize,
    /// Directory campaign journals are written to (created if absent).
    pub journal_dir: PathBuf,
    /// Parser resource limits.
    pub limits: Limits,
    /// Wave parallelism for submissions that don't specify `threads`.
    pub default_threads: usize,
    /// Per-connection read timeout; an idle keep-alive connection is
    /// dropped after this long so workers can't be pinned forever.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            journal_dir: std::env::temp_dir().join("crn-campaigns"),
            limits: Limits::default(),
            default_threads: std::thread::available_parallelism().map_or(2, usize::from),
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Blocking handoff queue between the accept thread and the workers.
struct ConnQueue {
    inner: Mutex<(VecDeque<TcpStream>, bool)>,
    wake: Condvar,
}

impl ConnQueue {
    fn new() -> ConnQueue {
        ConnQueue { inner: Mutex::new((VecDeque::new(), false)), wake: Condvar::new() }
    }

    fn push(&self, stream: TcpStream) {
        let mut inner = self.inner.lock().unwrap();
        inner.0.push_back(stream);
        self.wake.notify_one();
    }

    /// Blocks for the next connection; `None` once closed *and* drained,
    /// so queued connections still get served during shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(stream) = inner.0.pop_front() {
                return Some(stream);
            }
            if inner.1 {
                return None;
            }
            inner = self.wake.wait(inner).unwrap();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().1 = true;
        self.wake.notify_all();
    }
}

/// A running campaign server. Dropping it shuts it down cleanly.
pub struct Server {
    addr: SocketAddr,
    store: Arc<Store>,
    metrics: Arc<ServerMetrics>,
    conns: Arc<ConnQueue>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the accept/worker/scheduler threads, and returns.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.journal_dir)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let store = Arc::new(Store::new());
        let metrics = Arc::new(ServerMetrics::new());
        let conns = Arc::new(ConnQueue::new());
        let shutdown = Arc::new(AtomicBool::new(false));

        let scheduler = scheduler::spawn(store.clone(), metrics.clone());

        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let conns = conns.clone();
                let store = store.clone();
                let metrics = metrics.clone();
                let cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("crn-http-{i}"))
                    .spawn(move || {
                        while let Some(stream) = conns.pop() {
                            serve_connection(stream, &store, &metrics, &cfg);
                        }
                    })
                    .expect("spawn http worker")
            })
            .collect();

        let accept = {
            let conns = conns.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("crn-accept".to_string())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = stream {
                            conns.push(stream);
                        }
                    }
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            store,
            metrics,
            conns,
            shutdown,
            accept: Some(accept),
            workers,
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared job store (tests poke it directly).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// The shared metric bundle `/metrics` renders.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// Stops accepting, drains queued connections, waits for the
    /// scheduler to finish its current job, and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept thread with a throwaway connection; it
        // re-checks the flag before queueing anything.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.conns.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.store.close();
        if let Some(scheduler) = self.scheduler.take() {
            let _ = scheduler.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Serves one connection until it closes, errors, times out, or sends
/// `Connection: close`. Parse errors get their mapped status and a close —
/// after a framing error the stream position is unknowable, so the
/// connection cannot be reused.
fn serve_connection(
    stream: TcpStream,
    store: &Arc<Store>,
    metrics: &Arc<ServerMetrics>,
    cfg: &ServerConfig,
) {
    metrics.connections.inc();
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut parser = RequestParser::new(cfg.limits);
    let ctx = RouterCtx {
        store,
        metrics,
        journal_dir: &cfg.journal_dir,
        default_threads: cfg.default_threads,
    };
    let mut buf = [0u8; 4096];
    loop {
        match parser.try_next() {
            Ok(Some(req)) => {
                metrics.requests.inc();
                let keep_alive = req.keep_alive();
                let response = router::handle(&req, &ctx);
                metrics.record_response(response.status);
                if stream.write_all(&response.encode(keep_alive)).is_err() || !keep_alive {
                    return;
                }
            }
            Ok(None) => match stream.read(&mut buf) {
                Ok(0) | Err(_) => return,
                Ok(n) => parser.feed(&buf[..n]),
            },
            Err(e) => {
                metrics.parse_errors.inc();
                let response = Response::error(e.status(), e.message());
                metrics.record_response(response.status);
                let _ = stream.write_all(&response.encode(false));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> Server {
        let cfg = ServerConfig {
            journal_dir: std::env::temp_dir()
                .join(format!("crn-server-unit-{}", std::process::id())),
            workers: 2,
            ..ServerConfig::default()
        };
        Server::start(cfg).expect("server starts")
    }

    #[test]
    fn serves_service_info_and_shuts_down() {
        let server = test_server();
        let resp = client::get(server.addr(), "/").expect("request succeeds");
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("crn-campaign-server"), "{text}");
        assert!(text.contains("\"e2\""), "{text}");
        server.shutdown();
    }

    #[test]
    fn oversized_and_malformed_requests_get_mapped_statuses() {
        let server = test_server();
        let addr = server.addr();

        // Malformed method: 400.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"B<D / HTTP/1.1\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 400 "), "{text}");

        // Endless request line: 431 without buffering it all.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&vec![b'A'; Limits::default().max_request_line + 2]).unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 431 "), "{text}");

        server.shutdown();
    }
}
