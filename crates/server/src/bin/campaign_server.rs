//! The campaign server binary.
//!
//! ```text
//! campaign_server [--addr HOST:PORT] [--workers N] [--journal-dir DIR] [--threads N]
//! ```
//!
//! Binds (port 0 = ephemeral), prints the bound address on stdout, and
//! serves until killed. Campaign journals go to `--journal-dir`; restart
//! on the same directory and resubmit to resume interrupted campaigns.

use std::path::PathBuf;
use std::process::ExitCode;

use crn_server::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: campaign_server [--addr HOST:PORT] [--workers N] [--journal-dir DIR] [--threads N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:8080".to_string(),
        journal_dir: PathBuf::from("campaign-journals"),
        ..ServerConfig::default()
    };

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--workers" => match value.parse() {
                Ok(n) if n >= 1 => cfg.workers = n,
                _ => return usage(),
            },
            "--journal-dir" => cfg.journal_dir = PathBuf::from(value),
            "--threads" => match value.parse() {
                Ok(n) if n >= 1 => cfg.default_threads = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    let server = match Server::start(cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("campaign_server: failed to start on {}: {e}", cfg.addr);
            return ExitCode::FAILURE;
        }
    };
    // Parsed by scripts (the CI smoke step): keep this line stable.
    println!("listening on http://{}", server.addr());
    println!("journals in {}", cfg.journal_dir.display());

    // Serve until the process is killed; all state worth keeping is in
    // the journals, so there is nothing to flush on the way out.
    loop {
        std::thread::park();
    }
}
