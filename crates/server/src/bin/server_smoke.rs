//! CI smoke for the campaign server: three runs of the same E2 campaign
//! must produce byte-identical results.
//!
//! 1. **Batch reference** — `campaigns::run_e2` in-process, rendered with
//!    the same canonical JSON shaping the server uses.
//! 2. **Uninterrupted server** — submit over HTTP, poll to completion,
//!    fetch `/results`.
//! 3. **Killed + resumed server** — submit with the fault-plan kill
//!    switch armed, watch the job die mid-campaign, tear the server down
//!    (simulating the crash), start a fresh server on the same journal
//!    directory, resubmit, and fetch `/results` from the resumed run.
//!
//! All three bodies must be equal. Exits non-zero (panic) on any
//! mismatch; temp journal directories are removed by drop guards even on
//! failure.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crn_server::{client, router, Server, ServerConfig};
use crn_workloads::campaign::FaultPlan;
use crn_workloads::experiments::campaigns;
use crn_workloads::experiments::ExpConfig;

/// Removes its directory on drop — including the failure path, so a
/// panicking smoke run doesn't leak journal dirs into the CI workspace.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("crn-smoke-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp journal dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(journal_dir: &TempDir) -> Server {
    Server::start(ServerConfig {
        journal_dir: journal_dir.0.clone(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts")
}

fn submit(addr: SocketAddr, body: &str) -> u64 {
    let resp = client::post(addr, "/campaigns", Some(body)).expect("submit succeeds");
    assert_eq!(resp.status, 201, "submit: {}", resp.text());
    let json = crn_server::json::parse(&resp.text()).expect("submit response is json");
    json.get("id").and_then(crn_server::json::Json::as_u64).expect("submit response has id")
}

/// Polls `/campaigns/{id}` until the job reaches `want`, failing fast on
/// any other terminal state.
fn wait_for_state(addr: SocketAddr, id: u64, want: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let resp = client::get(addr, &format!("/campaigns/{id}")).expect("status poll succeeds");
        assert_eq!(resp.status, 200, "status: {}", resp.text());
        let text = resp.text();
        if text.contains(&format!("\"state\":\"{want}\"")) {
            return;
        }
        for terminal in ["completed", "killed", "cancelled", "failed"] {
            assert!(
                terminal == want || !text.contains(&format!("\"state\":\"{terminal}\"")),
                "job {id} reached {terminal:?} while waiting for {want:?}: {text}"
            );
        }
        assert!(Instant::now() < deadline, "timed out waiting for job {id} to be {want:?}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn fetch_results(addr: SocketAddr, id: u64) -> Vec<u8> {
    let resp = client::get(addr, &format!("/campaigns/{id}/results")).expect("results succeed");
    assert_eq!(resp.status, 200, "results: {}", resp.text());
    resp.body
}

fn main() {
    let cfg = ExpConfig { quick: true, trials: 2, seed: 7 };
    let threads = 2;
    let submit_body = r#"{"kind":"e2","quick":true,"trials":2,"seed":7,"threads":2}"#;
    let kill_body =
        r#"{"kind":"e2","quick":true,"trials":2,"seed":7,"threads":2,"fault":{"kill_after":2}}"#;

    // 1. Batch reference, shaped exactly as the server would.
    let report = campaigns::run_e2(&cfg, threads, None, &FaultPlan::none()).expect("batch e2");
    let spec = campaigns::find_kind("e2").unwrap();
    let name = (spec.spec)(&cfg).name;
    let reference = router::results_json("e2", &name, &report).render().into_bytes();
    println!("batch reference: {} bytes", reference.len());

    // 2. Uninterrupted server run.
    let dir_a = TempDir::new("uninterrupted");
    let server = start(&dir_a);
    let id = submit(server.addr(), submit_body);
    wait_for_state(server.addr(), id, "completed");
    let body_uninterrupted = fetch_results(server.addr(), id);
    server.shutdown();
    assert_eq!(
        body_uninterrupted, reference,
        "uninterrupted server results differ from batch reference"
    );
    println!("uninterrupted server matches batch reference");

    // 3. Killed mid-campaign, then resumed by a fresh server process on
    // the same journal directory.
    let dir_b = TempDir::new("resumed");
    let server = start(&dir_b);
    let addr = server.addr();
    let id = submit(addr, kill_body);
    wait_for_state(addr, id, "killed");
    let resp = client::get(addr, &format!("/campaigns/{id}/results")).expect("results poll");
    assert_eq!(resp.status, 409, "killed job must 409 on /results: {}", resp.text());
    // The "crash": tear the whole server down. Only the journal survives.
    server.shutdown();

    let server = start(&dir_b);
    let addr = server.addr();
    let id = submit(addr, submit_body);
    wait_for_state(addr, id, "completed");
    let status = client::get(addr, &format!("/campaigns/{id}")).expect("status").text();
    assert!(status.contains("\"resumed\":true"), "resumed run must report resumed: {status}");
    let body_resumed = fetch_results(addr, id);
    server.shutdown();
    assert_eq!(
        body_resumed, body_uninterrupted,
        "resumed-server results differ from uninterrupted results"
    );
    println!("killed+resumed server matches uninterrupted run byte-for-byte");
    println!("server smoke OK");
}
