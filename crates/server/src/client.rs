//! A minimal one-shot HTTP client for tests, examples, and the CI smoke
//! binary. One request per connection (`Connection: close`), blocking
//! I/O, no redirects — just enough to talk to [`crate::Server`].

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header fields in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — diagnostics only).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<ClientResponse> {
    request(addr, "GET", path, None)
}

/// `POST path` with an optional JSON body.
pub fn post(addr: SocketAddr, path: &str, body: Option<&str>) -> io::Result<ClientResponse> {
    request(addr, "POST", path, body.map(str::as_bytes))
}

/// Sends one request and reads the response to EOF.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_nodelay(true)?;

    let body = body.unwrap_or(b"");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;

    let mut wire = Vec::new();
    stream.read_to_end(&mut wire)?;
    parse_response(&wire)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed http response: {msg}"))
}

fn parse_response(wire: &[u8]) -> io::Result<ClientResponse> {
    let head_end = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| bad("no header terminator"))?;
    let head =
        std::str::from_utf8(&wire[..head_end]).map_err(|_| bad("header section not utf-8"))?;
    let mut lines = head.split("\r\n");

    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(bad("not an http/1.x status line"));
    }
    let status: u16 =
        parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| bad("bad status code"))?;

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        let (name, value) = line.split_once(':').ok_or_else(|| bad("header missing ':'"))?;
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
        }
        headers.push((name.to_string(), value.to_string()));
    }

    let body_start = head_end + 4;
    let body = match content_length {
        Some(len) => {
            if wire.len() < body_start + len {
                return Err(bad("truncated body"));
            }
            wire[body_start..body_start + len].to_vec()
        }
        // Connection: close with no length — body is the rest.
        None => wire[body_start..].to_vec(),
    };
    Ok(ClientResponse { status, headers, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response_with_content_length() {
        let wire = b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\nContent-Length: 8\r\n\r\n{\"id\":1}extra-ignored";
        let resp = parse_response(wire).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body, b"{\"id\":1}");
        assert_eq!(resp.headers[0].1, "application/json");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
        assert!(parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\nshort").is_err());
    }
}
