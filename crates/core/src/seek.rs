//! CSEEK: two-part randomized neighbor discovery (paper §4.2–4.3), and the
//! reusable schedule core shared by CKSEEK and CGCAST.
//!
//! **Part one** (`Θ((c²/k)·lg n)` steps, each one COUNT long): every step,
//! each node tunes to a uniformly random channel and flips a coin to be
//! broadcaster or listener, then runs [`CountInstance`] on that channel.
//! Listeners accumulate the per-channel density estimates and record any
//! identities heard. By Lemma 2, neighbors overlapping on *uncrowded*
//! channels are discovered here.
//!
//! **Part two** (`Θ((kmax/k)·Δ·lg n)` steps, each `lg Δ` slots): every step,
//! broadcasters pick a uniform channel and run a back-off transmission
//! sweep; listeners pick a channel **proportionally to the density counts
//! from part one** and listen. By Lemma 3, neighbors overlapping on crowded
//! channels are discovered here — the density-weighted choice is the
//! paper's key idea (ablation A1 disables it).
//!
//! [`SeekCore`] exposes the channel/role/timing machinery without fixing
//! the message payload, so CGCAST can reuse full CSEEK executions as its
//! "each pair of neighbors exchanges one message" primitive (paper §5.1).

use crate::count::{CountInstance, Role};
use crate::discovery::{DiscoveryOutput, DiscoveryProtocol};
use crate::params::SeekSchedule;
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Feedback, FeedbackBatch,
    LocalChannel, NodeId, Protocol, SlotCtx,
};
use rand::{Rng, RngCore};
use std::collections::BTreeMap;

/// Which part of the CSEEK schedule is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekPhase {
    /// Density-sampling part (uniform hopping + COUNT).
    PartOne,
    /// Density-weighted part (back-off steps).
    PartTwo,
    /// Schedule exhausted.
    Done,
}

/// What the schedule core wants to do this slot. The caller attaches the
/// message payload (identity, color lists, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeekSlotPlan {
    /// Transmit on `channel` this slot.
    Transmit {
        /// Channel to transmit on.
        channel: LocalChannel,
    },
    /// Broadcaster role but silent this slot (radio idle).
    HoldFire {
        /// Channel the broadcaster is camped on.
        channel: LocalChannel,
    },
    /// Listen on `channel`.
    Listen {
        /// Channel to listen on.
        channel: LocalChannel,
    },
}

impl SeekSlotPlan {
    /// The channel of this plan.
    pub fn channel(&self) -> LocalChannel {
        match *self {
            SeekSlotPlan::Transmit { channel }
            | SeekSlotPlan::HoldFire { channel }
            | SeekSlotPlan::Listen { channel } => channel,
        }
    }
}

/// The CSEEK schedule state machine: channel choices, roles, COUNT
/// embedding, density table and back-off timing — everything except message
/// contents. Drive with one [`SeekCore::plan_slot`] +
/// [`SeekCore::finish_slot`] pair per slot.
#[derive(Debug, Clone)]
pub struct SeekCore {
    sched: SeekSchedule,
    phase: SeekPhase,
    step: u64,
    slot_in_step: u32,
    role: Role,
    channel: LocalChannel,
    count: Option<CountInstance>,
    counts: Vec<u64>,
    counts_sum: u64,
    step_initialized: bool,
}

impl SeekCore {
    /// Creates a fresh core for one execution of `sched`.
    pub fn new(sched: SeekSchedule) -> SeekCore {
        assert!(sched.c >= 1, "need at least one channel");
        SeekCore {
            counts: vec![0; sched.c as usize],
            sched,
            phase: SeekPhase::PartOne,
            step: 0,
            slot_in_step: 0,
            role: Role::Listener,
            channel: LocalChannel(0),
            count: None,
            counts_sum: 0,
            step_initialized: false,
        }
    }

    /// The schedule driving this core.
    pub fn schedule(&self) -> &SeekSchedule {
        &self.sched
    }

    /// Current phase.
    pub fn phase(&self) -> SeekPhase {
        self.phase
    }

    /// `true` once the whole schedule has run.
    pub fn is_done(&self) -> bool {
        self.phase == SeekPhase::Done
    }

    /// The per-channel density estimates accumulated during part one.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current role (meaningful after the step has been initialized).
    pub fn role(&self) -> Role {
        self.role
    }

    /// An exact lower bound on the RNG words [`SeekCore::plan_slot`] will
    /// draw this slot, computable before any drawing: 2 on a step-init slot
    /// (role coin + channel choice; a data-dependent third word follows
    /// when the role comes up broadcaster), 1 for a known broadcaster's
    /// transmission coin, 0 for a known listener or a finished schedule.
    /// This is the [`BatchCtx::buffered`] reserve the batched act paths
    /// pre-fill in one bulk draw.
    pub fn min_draws(&self) -> usize {
        match self.phase {
            SeekPhase::Done => 0,
            _ if !self.step_initialized => 2,
            _ => (self.role == Role::Broadcaster) as usize,
        }
    }

    /// Plans the current slot; returns `None` once the schedule is done.
    ///
    /// Generic over the random source: the scalar path passes the node's
    /// raw RNG, the batched path a pre-filled buffered view of it — both
    /// consume the identical word stream.
    pub fn plan_slot<R: RngCore>(&mut self, rng: &mut R) -> Option<SeekSlotPlan> {
        if self.phase == SeekPhase::Done {
            return None;
        }
        if !self.step_initialized {
            self.init_step(rng);
        }
        let plan = match self.phase {
            SeekPhase::PartOne => match self.role {
                Role::Broadcaster => {
                    let ci = self.count.as_ref().expect("COUNT active in part one");
                    if ci.should_broadcast(rng) {
                        SeekSlotPlan::Transmit { channel: self.channel }
                    } else {
                        SeekSlotPlan::HoldFire { channel: self.channel }
                    }
                }
                Role::Listener => SeekSlotPlan::Listen { channel: self.channel },
            },
            SeekPhase::PartTwo => match self.role {
                Role::Broadcaster => {
                    // Back-off sweep: in slot j (0-based) of an L-slot step,
                    // transmit with probability 1/2^(L−j) — the pseudocode's
                    // `random(1, 2^j) == 1` with j counting down (Figure 1).
                    let l = self.sched.part2_slots_per_step;
                    let exp = (l - self.slot_in_step).min(62);
                    if rng.gen_bool(1.0 / (1u64 << exp) as f64) {
                        SeekSlotPlan::Transmit { channel: self.channel }
                    } else {
                        SeekSlotPlan::HoldFire { channel: self.channel }
                    }
                }
                Role::Listener => SeekSlotPlan::Listen { channel: self.channel },
            },
            SeekPhase::Done => unreachable!(),
        };
        Some(plan)
    }

    /// Feeds the listen result of this slot back into the embedded COUNT
    /// (only meaningful for part-one listeners; no-op otherwise).
    pub fn record_heard(&mut self, heard: bool) {
        if self.phase == SeekPhase::PartOne && self.role == Role::Listener {
            if let Some(ci) = self.count.as_mut() {
                ci.record_listen(heard);
            }
        }
    }

    /// Advances the slot clock; call exactly once per slot after
    /// [`SeekCore::plan_slot`] (and [`SeekCore::record_heard`] for
    /// listeners).
    pub fn finish_slot(&mut self) {
        match self.phase {
            SeekPhase::PartOne => {
                let ci = self.count.as_mut().expect("COUNT active in part one");
                ci.finish_slot();
                if ci.is_done() {
                    if self.role == Role::Listener {
                        let est = ci.estimate();
                        self.counts[self.channel.index()] += est;
                        self.counts_sum += est;
                    }
                    self.count = None;
                    self.step += 1;
                    self.step_initialized = false;
                    if self.step == self.sched.part1_steps {
                        self.phase = SeekPhase::PartTwo;
                        self.step = 0;
                    }
                }
            }
            SeekPhase::PartTwo => {
                self.slot_in_step += 1;
                if self.slot_in_step == self.sched.part2_slots_per_step {
                    self.slot_in_step = 0;
                    self.step += 1;
                    self.step_initialized = false;
                    if self.step == self.sched.part2_steps {
                        self.phase = SeekPhase::Done;
                    }
                }
            }
            SeekPhase::Done => panic!("finish_slot on a finished SeekCore"),
        }
    }

    fn init_step<R: RngCore>(&mut self, rng: &mut R) {
        self.step_initialized = true;
        self.role = if rng.gen_bool(0.5) { Role::Broadcaster } else { Role::Listener };
        match self.phase {
            SeekPhase::PartOne => {
                self.channel = LocalChannel(rng.gen_range(0..self.sched.c));
                self.count = Some(CountInstance::new(self.sched.count, self.role));
            }
            SeekPhase::PartTwo => {
                self.slot_in_step = 0;
                self.channel = match self.role {
                    Role::Broadcaster => LocalChannel(rng.gen_range(0..self.sched.c)),
                    Role::Listener => self.pick_listener_channel(rng),
                };
            }
            SeekPhase::Done => unreachable!(),
        }
    }

    /// Part-two listener channel choice: proportional to part-one densities
    /// (`x_ch / Σ x_ch'`, Figure 1 lines 16–18); uniform when no densities
    /// were collected or in the A1 ablation.
    fn pick_listener_channel<R: RngCore>(&self, rng: &mut R) -> LocalChannel {
        if self.sched.uniform_listener || self.counts_sum == 0 {
            return LocalChannel(rng.gen_range(0..self.sched.c));
        }
        let mut rnd = rng.gen_range(0..self.counts_sum);
        for (ch, &x) in self.counts.iter().enumerate() {
            if rnd < x {
                return LocalChannel(ch as u16);
            }
            rnd -= x;
        }
        unreachable!("weighted choice must land inside the total")
    }

    /// Total slots this core will consume.
    pub fn total_slots(&self) -> u64 {
        self.sched.total_slots()
    }
}

/// The CSEEK neighbor-discovery protocol (Theorem 4). Also runs CKSEEK when
/// constructed with [`crate::params::SeekParams::kseek_schedule`]
/// (Theorem 6) — the state machine is identical, only the schedule lengths
/// differ (paper §4.4).
#[derive(Debug, Clone)]
pub struct CSeek {
    id: NodeId,
    core: SeekCore,
    /// neighbor id -> first slot heard.
    heard: BTreeMap<NodeId, u64>,
    history: Option<Vec<LocalChannel>>,
}

impl CSeek {
    /// Creates a CSEEK instance for node `id`. When `record_history` is
    /// set, the node remembers which local channel it was tuned to in every
    /// slot (CGCAST needs this for the dedicated-channel agreement).
    pub fn new(id: NodeId, sched: SeekSchedule, record_history: bool) -> CSeek {
        let capacity = if record_history { sched.total_slots() as usize } else { 0 };
        CSeek {
            id,
            core: SeekCore::new(sched),
            heard: BTreeMap::new(),
            history: record_history.then(|| Vec::with_capacity(capacity)),
        }
    }

    /// Identities heard so far with their first-heard slots.
    pub fn heard(&self) -> &BTreeMap<NodeId, u64> {
        &self.heard
    }

    /// The underlying schedule core (densities, phase, …).
    pub fn core(&self) -> &SeekCore {
        &self.core
    }

    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation (and therefore one draw
    /// sequence).
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<NodeId> {
        match self.core.plan_slot(ctx.rng) {
            None => Action::Sleep,
            Some(plan) => {
                if let Some(h) = self.history.as_mut() {
                    h.push(plan.channel());
                }
                match plan {
                    SeekSlotPlan::Transmit { channel } => {
                        Action::Broadcast { channel, message: self.id }
                    }
                    SeekSlotPlan::HoldFire { .. } => Action::Sleep,
                    SeekSlotPlan::Listen { channel } => Action::Listen { channel },
                }
            }
        }
    }

    /// The feedback body, generic over the random source so the scalar and
    /// batched delivery paths share one implementation (it draws nothing).
    fn feedback_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>, fb: Feedback<'_, NodeId>) {
        if self.core.is_done() {
            return;
        }
        match fb {
            Feedback::Heard(id) => {
                self.heard.entry(*id).or_insert(ctx.slot.0);
                self.core.record_heard(true);
            }
            Feedback::Silence => self.core.record_heard(false),
            Feedback::Sent | Feedback::Slept => {}
        }
        self.core.finish_slot();
    }
}

impl Protocol for CSeek {
    type Message = NodeId;
    type Output = DiscoveryOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<NodeId> {
        self.act_any(ctx)
    }

    /// Batched act: per node, the exact guaranteed draw count is pre-filled
    /// in one bulk `fill_u64s` ([`SeekCore::min_draws`]); the data-dependent
    /// transmission coin of a freshly-drawn broadcaster role falls through
    /// to the raw stream. Bit-identical to the scalar path by construction.
    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<NodeId>>) {
        act_batch_buffered(batch, ctx, out, |p| p.core.min_draws(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, NodeId>) {
        self.feedback_any(ctx, fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, NodeId>) {
        // Reserve 0 exactly: the feedback body never draws.
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, sctx, f| p.feedback_any(sctx, f));
    }

    fn is_complete(&self) -> bool {
        self.core.is_done()
    }

    fn into_output(self) -> DiscoveryOutput {
        DiscoveryOutput {
            id: self.id,
            neighbors: self.heard.keys().copied().collect(),
            first_heard: self.heard.iter().map(|(&v, &t)| (v, t)).collect(),
            counts: self.core.counts.clone(),
            history: self.history,
        }
    }
}

impl DiscoveryProtocol for CSeek {
    fn discovered_count(&self) -> usize {
        self.heard.len()
    }

    fn has_discovered(&self, v: NodeId) -> bool {
        self.heard.contains_key(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{outputs_complete, outputs_sound};
    use crate::params::{ModelInfo, SeekParams};
    use crn_sim::channels::{shuffle_local_labels, ChannelModel};
    use crn_sim::rng::stream_rng;
    use crn_sim::topology::Topology;
    use crn_sim::{Engine, Network};

    fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
        let mut rng = stream_rng(seed, 999);
        let n = topo.num_nodes();
        let mut sets = model.assign(n, &mut rng);
        shuffle_local_labels(&mut sets, &mut rng);
        let mut b = Network::builder(n);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        b.build().unwrap()
    }

    fn run_cseek(net: &Network, seed: u64) -> Vec<DiscoveryOutput> {
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(net, seed, |ctx| CSeek::new(ctx.id, sched, false));
        let out = eng.run_to_completion(sched.total_slots() + 1);
        assert!(out.all_protocols_done, "fixed schedule must finish");
        assert_eq!(out.slots_run, sched.total_slots(), "lockstep schedule length");
        eng.into_outputs()
    }

    #[test]
    fn two_nodes_discover_each_other() {
        let net =
            build_net(&Topology::Path { n: 2 }, &ChannelModel::SharedCore { c: 4, core: 2 }, 3);
        let outs = run_cseek(&net, 17);
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
        assert_eq!(outs[0].neighbors, vec![NodeId(1)]);
        assert_eq!(outs[1].neighbors, vec![NodeId(0)]);
    }

    #[test]
    fn path_discovery_is_complete() {
        let net =
            build_net(&Topology::Path { n: 8 }, &ChannelModel::SharedCore { c: 4, core: 2 }, 5);
        let outs = run_cseek(&net, 11);
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
    }

    #[test]
    fn star_with_identical_channels_is_complete() {
        // Identical channels = max contention; part two must resolve it.
        let net = build_net(&Topology::Star { leaves: 8 }, &ChannelModel::Identical { c: 3 }, 7);
        let outs = run_cseek(&net, 23);
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
    }

    #[test]
    fn grouped_overlap_discovery_is_complete() {
        let net = build_net(
            &Topology::Grid { rows: 3, cols: 3 },
            &ChannelModel::GroupOverlay { c: 6, k: 2, kmax: 4, groups: 3 },
            9,
        );
        assert_eq!(net.stats().k, 2);
        assert_eq!(net.stats().kmax, 4);
        let outs = run_cseek(&net, 31);
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
    }

    #[test]
    fn label_shuffles_do_not_change_completeness() {
        for seed in 0..3 {
            let net = build_net(
                &Topology::Cycle { n: 6 },
                &ChannelModel::SharedCore { c: 5, core: 2 },
                100 + seed,
            );
            let outs = run_cseek(&net, 41 + seed);
            assert!(outputs_complete(&net, &outs), "seed {seed}");
        }
    }

    #[test]
    fn first_heard_slots_are_consistent() {
        let net =
            build_net(&Topology::Path { n: 4 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 13);
        let outs = run_cseek(&net, 53);
        for o in &outs {
            assert_eq!(o.first_heard.len(), o.neighbors.len());
            for (v, t) in &o.first_heard {
                assert!(o.neighbors.contains(v));
                assert!(
                    *t < SeekParams::default()
                        .schedule(&ModelInfo::from_stats(&net.stats()))
                        .total_slots()
                );
            }
        }
    }

    #[test]
    fn history_has_one_entry_per_slot() {
        let net = build_net(&Topology::Path { n: 2 }, &ChannelModel::Identical { c: 2 }, 3);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 2, |ctx| CSeek::new(ctx.id, sched, true));
        eng.run_to_completion(sched.total_slots());
        let outs = eng.into_outputs();
        for o in outs {
            assert_eq!(o.history.unwrap().len() as u64, sched.total_slots());
        }
    }

    #[test]
    fn core_density_counts_reflect_crowding() {
        // Star with one globally shared ("hot") channel and spread cold
        // channels: the hub's densest channel must be the hot one.
        let net = build_net(
            &Topology::Star { leaves: 12 },
            &ChannelModel::CrowdedSplit { c: 4, k: 2, hot: 1, k_hot: 1 },
            21,
        );
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 77, |ctx| CSeek::new(ctx.id, sched, false));
        eng.run_to_completion(sched.total_slots());
        // Find the hub's local label for global channel 0 (the hot one).
        let hot_local = net.global_to_local(NodeId(0), crn_sim::GlobalChannel(0)).unwrap();
        let counts = eng.protocol(NodeId(0)).core().counts().to_vec();
        let max_idx = counts.iter().enumerate().max_by_key(|&(_, &x)| x).map(|(i, _)| i).unwrap();
        assert_eq!(
            max_idx,
            hot_local.index(),
            "hub's densest channel should be the hot channel; counts={counts:?}"
        );
    }

    #[test]
    fn weighted_choice_falls_back_to_uniform_when_empty() {
        let m = ModelInfo { n: 8, c: 4, delta: 2, k: 1, kmax: 1 };
        let sched = SeekParams::default().schedule(&m);
        let mut core = SeekCore::new(sched);
        // Force part two with zero counts.
        core.phase = SeekPhase::PartTwo;
        let mut rng = stream_rng(0, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(core.pick_listener_channel(&mut rng).0);
        }
        assert_eq!(seen.len(), 4, "uniform fallback should cover all channels");
    }

    #[test]
    fn weighted_choice_respects_density() {
        let m = ModelInfo { n: 8, c: 3, delta: 2, k: 1, kmax: 1 };
        let sched = SeekParams::default().schedule(&m);
        let mut core = SeekCore::new(sched);
        core.phase = SeekPhase::PartTwo;
        core.counts = vec![0, 100, 0];
        core.counts_sum = 100;
        let mut rng = stream_rng(1, 0);
        for _ in 0..32 {
            assert_eq!(core.pick_listener_channel(&mut rng), LocalChannel(1));
        }
    }

    #[test]
    fn schedule_slot_count_matches_actual_run() {
        let m = ModelInfo { n: 8, c: 2, delta: 2, k: 1, kmax: 1 };
        let sched = SeekParams::default().schedule(&m);
        let mut core = SeekCore::new(sched);
        let mut rng = stream_rng(2, 0);
        let mut slots = 0u64;
        while core.plan_slot(&mut rng).is_some() {
            core.record_heard(false);
            core.finish_slot();
            slots += 1;
        }
        assert_eq!(slots, sched.total_slots());
        assert!(core.is_done());
    }
}
