//! Pairwise neighbor exchange via a CSEEK execution (paper §5.1).
//!
//! The key observation behind CGCAST: "if we can solve neighbor discovery
//! in `T` time, then we can use the same algorithm to allow each pair of
//! neighbors to exchange one message in `T` time". [`Exchange`] packages
//! that primitive: every node enters a CSEEK run with a fixed payload, and
//! by the end of the schedule each node has (w.h.p.) received the payload
//! of every neighbor. CGCAST uses four of these back to back per coloring
//! phase; other protocols can build on it directly.

use crate::params::SeekSchedule;
use crate::seek::{SeekCore, SeekSlotPlan};
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Feedback, FeedbackBatch, NodeId,
    Protocol, SlotCtx,
};
use rand::RngCore;
use std::collections::BTreeMap;

/// A message carrying the sender's identity plus an arbitrary payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sender identity.
    pub from: NodeId,
    /// Application payload.
    pub payload: T,
}

/// One-shot all-neighbor exchange: broadcast `payload` to every neighbor
/// and collect every neighbor's payload, within one CSEEK schedule.
#[derive(Debug, Clone)]
pub struct Exchange<T: Clone> {
    id: NodeId,
    core: SeekCore,
    outgoing: T,
    received: BTreeMap<NodeId, T>,
}

/// Result of an [`Exchange`] run at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeOutput<T> {
    /// This node.
    pub id: NodeId,
    /// Payloads received, keyed by sender.
    pub received: BTreeMap<NodeId, T>,
}

impl<T: Clone> Exchange<T> {
    /// Creates an exchange participant with the payload to distribute.
    pub fn new(id: NodeId, sched: SeekSchedule, payload: T) -> Exchange<T> {
        Exchange { id, core: SeekCore::new(sched), outgoing: payload, received: BTreeMap::new() }
    }

    /// Payloads received so far.
    pub fn received(&self) -> &BTreeMap<NodeId, T> {
        &self.received
    }

    /// Number of distinct senders heard so far.
    pub fn received_count(&self) -> usize {
        self.received.len()
    }

    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<Envelope<T>> {
        match self.core.plan_slot(ctx.rng) {
            None => Action::Sleep,
            Some(SeekSlotPlan::Transmit { channel }) => Action::Broadcast {
                channel,
                message: Envelope { from: self.id, payload: self.outgoing.clone() },
            },
            Some(SeekSlotPlan::HoldFire { .. }) => Action::Sleep,
            Some(SeekSlotPlan::Listen { channel }) => Action::Listen { channel },
        }
    }

    /// The feedback body — RNG-free and slot-free, shared by the scalar
    /// and batched delivery paths.
    fn feedback_any(&mut self, fb: Feedback<'_, Envelope<T>>) {
        if self.core.is_done() {
            return;
        }
        match fb {
            Feedback::Heard(env) => {
                // Single clone on actual delivery; the engine itself never
                // clones payloads.
                self.received.entry(env.from).or_insert_with(|| env.payload.clone());
                self.core.record_heard(true);
            }
            Feedback::Silence => self.core.record_heard(false),
            Feedback::Sent | Feedback::Slept => {}
        }
        self.core.finish_slot();
    }
}

impl<T: Clone> Protocol for Exchange<T> {
    type Message = Envelope<T>;
    type Output = ExchangeOutput<T>;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<Envelope<T>> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<Envelope<T>>>) {
        act_batch_buffered(batch, ctx, out, |p| p.core.min_draws(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, Envelope<T>>) {
        self.feedback_any(fb);
    }

    fn feedback_batch(
        batch: &mut [Self],
        ctx: &mut BatchCtx<'_>,
        fb: FeedbackBatch<'_, Envelope<T>>,
    ) {
        // Reserve 0 exactly: the feedback body never draws (nor reads the
        // slot clock — the seek core keeps its own position).
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, _sctx, f| p.feedback_any(f));
    }

    fn is_complete(&self) -> bool {
        self.core.is_done()
    }

    fn into_output(self) -> ExchangeOutput<T> {
        ExchangeOutput { id: self.id, received: self.received }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ModelInfo, SeekParams};
    use crn_sim::channels::ChannelModel;
    use crn_sim::rng::stream_rng;
    use crn_sim::topology::Topology;
    use crn_sim::{Engine, Network};

    fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
        let mut rng = stream_rng(seed, 999);
        let n = topo.num_nodes();
        let sets = model.assign(n, &mut rng);
        let mut b = Network::builder(n);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        b.build().unwrap()
    }

    #[test]
    fn every_pair_of_neighbors_exchanges_one_message() {
        // The §5.1 claim, directly: after one CSEEK-schedule exchange, each
        // node holds each neighbor's payload.
        let net = build_net(
            &Topology::Grid { rows: 3, cols: 3 },
            &ChannelModel::SharedCore { c: 4, core: 2 },
            1,
        );
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 17, |ctx| Exchange::new(ctx.id, sched, ctx.id.0 * 100));
        let outcome = eng.run_to_completion(sched.total_slots());
        assert!(outcome.all_protocols_done);
        for out in eng.into_outputs() {
            for w in net.neighbors(out.id) {
                assert_eq!(
                    out.received.get(&w),
                    Some(&(w.0 * 100)),
                    "{} missing payload of neighbor {w}",
                    out.id
                );
            }
        }
    }

    #[test]
    fn exchange_carries_structured_payloads() {
        let net = build_net(&Topology::Path { n: 3 }, &ChannelModel::Identical { c: 2 }, 2);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 23, |ctx| Exchange::new(ctx.id, sched, vec![ctx.id.0; 3]));
        eng.run_to_completion(sched.total_slots());
        let outs = eng.into_outputs();
        assert_eq!(outs[1].received.get(&NodeId(0)), Some(&vec![0, 0, 0]));
        assert_eq!(outs[1].received.get(&NodeId(2)), Some(&vec![2, 2, 2]));
    }

    #[test]
    fn exchange_receives_nothing_without_neighbors() {
        // A connected pair plus... a singleton network is degenerate: use a
        // two-node net and check only neighbors appear.
        let net = build_net(&Topology::Path { n: 2 }, &ChannelModel::Identical { c: 2 }, 3);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 29, |ctx| Exchange::new(ctx.id, sched, ctx.id.0));
        eng.run_to_completion(sched.total_slots());
        for out in eng.into_outputs() {
            assert!(out.received.keys().all(|&w| net.are_neighbors(out.id, w)));
        }
    }
}
