//! Protocol parameters and schedule derivation.
//!
//! The paper specifies schedules asymptotically (`Θ((c²/k)·lg n)` steps,
//! `Θ(lg n)`-slot rounds, …). A runnable implementation must pick the hidden
//! constants. All of them live here, are documented, and are configurable —
//! the experiment harness sweeps several of them (ablation A2) to show how
//! the guarantees depend on them.
//!
//! Every schedule derived here is a deterministic function of the *globally
//! known* model parameters (`n`, `c`, `Δ`, `k`, `kmax`), so all nodes compute
//! identical schedules and stay in lockstep, exactly as the paper assumes.

/// Globally-known model parameters (common knowledge at every node, as
/// assumed throughout the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelInfo {
    /// Number of nodes `n` (or a polynomial upper bound).
    pub n: usize,
    /// Channels per node `c`.
    pub c: usize,
    /// Maximum degree `Δ`.
    pub delta: usize,
    /// Minimum pairwise overlap `k ≥ 1`.
    pub k: usize,
    /// Maximum pairwise overlap `kmax ≤ c`.
    pub kmax: usize,
}

impl ModelInfo {
    /// The paper's `lg n` factor, floored at `log₂ 32 = 5`.
    ///
    /// The floor encodes the usual "w.h.p. in `n`" small-print: for tiny
    /// networks a guarantee of `1 − 1/n` is vacuous, so we size schedules
    /// as if `n ≥ 32`, giving every run a failure probability of roughly
    /// `n⁻¹`-at-`n=32` or better regardless of the actual `n`.
    pub fn lg_n(&self) -> f64 {
        ((self.n.max(32)) as f64).log2()
    }

    /// `⌈log₂ Δ⌉`, at least 1 — the paper's `lg Δ` factor (length of
    /// back-off sequences and number of COUNT rounds).
    pub fn lg_delta(&self) -> u32 {
        let d = self.delta.max(2);
        (usize::BITS - (d - 1).leading_zeros()).max(1)
    }

    /// Validates internal consistency (`1 ≤ k ≤ kmax ≤ c`, `n ≥ 1`).
    ///
    /// # Panics
    /// Panics with a descriptive message when inconsistent.
    pub fn validate(&self) {
        assert!(self.n >= 1, "n must be positive");
        assert!(self.c >= 1, "c must be positive");
        assert!(self.k >= 1, "k must be at least 1 (neighbors share a channel)");
        assert!(self.k <= self.kmax, "k must not exceed kmax");
        assert!(self.kmax <= self.c, "kmax cannot exceed c");
        assert!(self.delta >= 1, "delta must be at least 1");
    }

    /// Constructs a `ModelInfo` from measured network statistics.
    pub fn from_stats(stats: &crn_sim::NetworkStats) -> ModelInfo {
        ModelInfo { n: stats.n, c: stats.c, delta: stats.delta, k: stats.k, kmax: stats.kmax }
    }
}

/// Constants of the COUNT procedure (paper §4.1 and Appendix A).
///
/// COUNT runs `lg Δ` rounds of `round_len` slots. In round `i` (1-based)
/// each broadcaster transmits with probability `1/2^(i−1)`; the listener
/// adopts estimate `2^(i+1)` at the first round whose heard-fraction exceeds
/// `threshold`.
///
/// **Constant calibration.** The paper uses threshold `(1+δ)·8e⁻⁷ ≈ 0.0074`
/// with round length `a·lg n` for a large constant `a`, chosen to make the
/// Chernoff bounds in Appendix A go through for *every* `n`. For a runnable
/// system that is needlessly conservative: the real separation is between a
/// noise fraction of `≤ 8·exp(−8) ≈ 0.0027` (estimate ≤ m/8) and a signal
/// fraction of `≥ 2·exp(−2) ≈ 0.27` (estimate ∈ [m/2, m]). We place the
/// threshold between them (default 0.08) which lets `a` be small. Experiment
/// A2 sweeps `round_len_factor` to show the resulting accuracy/cost
/// trade-off; E1 verifies the `[m, 4m]` guarantee at the defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountParams {
    /// Round length is `max(min_round_len, ⌈round_len_factor · lg n⌉)`.
    pub round_len_factor: f64,
    /// Floor on the round length in slots.
    pub min_round_len: u32,
    /// Fraction of heard slots in a round that triggers the estimate.
    pub threshold: f64,
}

impl Default for CountParams {
    fn default() -> Self {
        CountParams { round_len_factor: 4.0, min_round_len: 24, threshold: 0.08 }
    }
}

impl CountParams {
    /// Concrete COUNT schedule for model `m`.
    pub fn schedule(&self, m: &ModelInfo) -> CountSchedule {
        assert!(self.threshold > 0.0 && self.threshold < 1.0, "threshold must be in (0,1)");
        let round_len =
            ((self.round_len_factor * m.lg_n()).ceil() as u32).max(self.min_round_len).max(1);
        CountSchedule {
            rounds: m.lg_delta(),
            round_len,
            threshold_count: ((self.threshold * round_len as f64).ceil() as u32).max(1),
        }
    }
}

/// A concrete COUNT schedule (identical at every node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountSchedule {
    /// Number of doubling rounds (`⌈lg Δ⌉`).
    pub rounds: u32,
    /// Slots per round (`Θ(lg n)`).
    pub round_len: u32,
    /// A round triggers when strictly more than this many messages are
    /// heard in it.
    pub threshold_count: u32,
}

impl CountSchedule {
    /// Total slots of one COUNT execution: `rounds · round_len`
    /// (= `O(lg² n)`, Lemma 1).
    pub fn total_slots(&self) -> u64 {
        self.rounds as u64 * self.round_len as u64
    }
}

/// Constants of the CSEEK neighbor-discovery algorithm (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekParams {
    /// Part one runs `⌈part1_factor · (c²/k) · lg n⌉` steps (each a COUNT).
    pub part1_factor: f64,
    /// Part two runs `⌈part2_factor · (kmax/k) · Δ · lg n⌉` steps (each
    /// `lg Δ` slots).
    pub part2_factor: f64,
    /// COUNT constants used inside part-one steps.
    pub count: CountParams,
    /// Ablation A1: when `true`, part-two listeners pick channels uniformly
    /// instead of density-weighted — removing the paper's key idea.
    pub uniform_listener: bool,
}

impl Default for SeekParams {
    fn default() -> Self {
        SeekParams {
            part1_factor: 6.0,
            part2_factor: 6.0,
            count: CountParams::default(),
            uniform_listener: false,
        }
    }
}

impl SeekParams {
    /// Concrete CSEEK schedule for model `m` (Theorem 4 shape).
    pub fn schedule(&self, m: &ModelInfo) -> SeekSchedule {
        m.validate();
        let c = m.c as f64;
        let part1 = (self.part1_factor * c * c / m.k as f64 * m.lg_n()).ceil() as u64;
        let part2 = (self.part2_factor * (m.kmax as f64 / m.k as f64) * m.delta as f64 * m.lg_n())
            .ceil() as u64;
        SeekSchedule {
            c: m.c as u16,
            part1_steps: part1.max(1),
            part2_steps: part2.max(1),
            count: self.count.schedule(m),
            part2_slots_per_step: m.lg_delta(),
            uniform_listener: self.uniform_listener,
        }
    }

    /// Concrete CKSEEK schedule for the k̂-neighbor-discovery problem
    /// (Theorem 6). `delta_khat` is the bound `Δ_k̂` on good-neighbor
    /// degree; pass `None` when no estimate is available, which lengthens
    /// part two to `Θ(((kmax/k̂)·Δ + c)·lg n)` steps as the paper suggests.
    pub fn kseek_schedule(
        &self,
        m: &ModelInfo,
        khat: usize,
        delta_khat: Option<usize>,
    ) -> SeekSchedule {
        m.validate();
        assert!(khat >= m.k, "khat must be at least k");
        assert!(khat <= m.kmax, "khat above kmax finds no one");
        let c = m.c as f64;
        let kh = khat as f64;
        let part1 = (self.part1_factor * c * c / kh * m.lg_n()).ceil() as u64;
        let ratio = m.kmax as f64 / kh;
        let inner = match delta_khat {
            Some(dk) => ratio * dk as f64 + m.delta as f64 + c,
            None => ratio * m.delta as f64 + c,
        };
        let part2 = (self.part2_factor * inner * m.lg_n()).ceil() as u64;
        SeekSchedule {
            c: m.c as u16,
            part1_steps: part1.max(1),
            part2_steps: part2.max(1),
            count: self.count.schedule(m),
            part2_slots_per_step: m.lg_delta(),
            uniform_listener: self.uniform_listener,
        }
    }
}

/// A concrete CSEEK/CKSEEK schedule: identical at every node, so the
/// network stays slot-synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeekSchedule {
    /// Channels per node.
    pub c: u16,
    /// Steps in part one (each one COUNT execution long).
    pub part1_steps: u64,
    /// Steps in part two.
    pub part2_steps: u64,
    /// The COUNT schedule run within each part-one step.
    pub count: CountSchedule,
    /// Slots per part-two step (`lg Δ`, the back-off sequence length).
    pub part2_slots_per_step: u32,
    /// Ablation: uniform instead of density-weighted listener channels in
    /// part two.
    pub uniform_listener: bool,
}

impl SeekSchedule {
    /// Total slots of one full CSEEK execution
    /// (`O((c²/k)·lg³n + (kmax/k)·Δ·lg²n)`, Theorem 4).
    pub fn total_slots(&self) -> u64 {
        self.part1_steps * self.count.total_slots()
            + self.part2_steps * self.part2_slots_per_step as u64
    }
}

/// Constants of the CGCAST global-broadcast algorithm (paper §5).
#[derive(Debug, Clone, PartialEq)]
pub struct GcastParams {
    /// Parameters of the embedded CSEEK runs (discovery and all message
    /// exchanges).
    pub seek: SeekParams,
    /// The node-coloring procedure runs `⌈coloring_phase_factor·lg n⌉`
    /// phases (paper: `Θ(lg n)`).
    pub coloring_phase_factor: f64,
    /// Each dissemination step runs `⌈dissem_round_factor·lg n⌉` back-off
    /// rounds (paper: `Θ(lg n)`).
    pub dissem_round_factor: f64,
    /// Number of dissemination phases — the paper uses the diameter `D`
    /// (assumed known; `n − 1` is always a safe upper bound).
    pub dissemination_phases: u64,
}

impl Default for GcastParams {
    fn default() -> Self {
        GcastParams {
            seek: SeekParams::default(),
            coloring_phase_factor: 3.0,
            dissem_round_factor: 2.0,
            dissemination_phases: 1,
        }
    }
}

impl GcastParams {
    /// Concrete CGCAST schedule for model `m`.
    pub fn schedule(&self, m: &ModelInfo) -> GcastSchedule {
        let seek = self.seek.schedule(m);
        let coloring_phases = ((self.coloring_phase_factor * m.lg_n()).ceil() as u64).max(1);
        let dissem_rounds = ((self.dissem_round_factor * m.lg_n()).ceil() as u64).max(1);
        GcastSchedule {
            seek,
            coloring_phases,
            palette: 2 * m.delta.max(1) as u32,
            dissem_phases: self.dissemination_phases.max(1),
            dissem_rounds,
            dissem_slots_per_round: m.lg_delta(),
        }
    }
}

/// A concrete CGCAST schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcastSchedule {
    /// Schedule of every embedded CSEEK run.
    pub seek: SeekSchedule,
    /// Number of coloring phases (`Θ(lg n)`).
    pub coloring_phases: u64,
    /// Color palette size (`2Δ`, Lemma 8 / Fact 7).
    pub palette: u32,
    /// Dissemination phases (the paper's `D`).
    pub dissem_phases: u64,
    /// Back-off rounds per dissemination step (`Θ(lg n)`).
    pub dissem_rounds: u64,
    /// Slots per back-off round (`lg Δ`).
    pub dissem_slots_per_round: u32,
}

impl GcastSchedule {
    /// Slots of one embedded CSEEK run.
    pub fn seek_slots(&self) -> u64 {
        self.seek.total_slots()
    }

    /// Slots of the whole coloring stage: `phases · 2 steps · 2 seek runs`.
    pub fn coloring_slots(&self) -> u64 {
        self.coloring_phases * 2 * 2 * self.seek_slots()
    }

    /// Slots of one dissemination step.
    pub fn dissem_step_slots(&self) -> u64 {
        self.dissem_rounds * self.dissem_slots_per_round as u64
    }

    /// Slots of the dissemination stage: `D · 2Δ steps · step length`
    /// (= `O(D·Δ·lg²n)`, paper §5.2).
    pub fn dissemination_slots(&self) -> u64 {
        self.dissem_phases * self.palette as u64 * self.dissem_step_slots()
    }

    /// Total CGCAST length: discovery + meta exchange + coloring + final
    /// color-inform run + dissemination (Theorem 9 shape).
    pub fn total_slots(&self) -> u64 {
        2 * self.seek_slots()
            + self.coloring_slots()
            + self.seek_slots()
            + self.dissemination_slots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ModelInfo {
        ModelInfo { n: 64, c: 8, delta: 8, k: 2, kmax: 4 }
    }

    #[test]
    fn lg_helpers() {
        let m = model();
        assert_eq!(m.lg_n(), 6.0);
        assert_eq!(m.lg_delta(), 3);
        let m1 = ModelInfo { n: 1, c: 1, delta: 1, k: 1, kmax: 1 };
        assert_eq!(m1.lg_n(), 5.0, "lg n floored at log2(32)");
        assert_eq!(m1.lg_delta(), 1);
    }

    #[test]
    fn count_schedule_dimensions() {
        let m = model();
        let s = CountParams::default().schedule(&m);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.round_len, 24); // max(min 24, 4·6)
        assert_eq!(s.total_slots(), 72);
        assert!(s.threshold_count >= 1);
    }

    #[test]
    fn seek_schedule_scales_with_c_squared_over_k() {
        let p = SeekParams::default();
        let base = p.schedule(&model());
        let double_c = p.schedule(&ModelInfo { c: 16, kmax: 4, ..model() });
        // part1 steps should scale by 4 when c doubles.
        assert_eq!(double_c.part1_steps, base.part1_steps * 4);
        let double_k = p.schedule(&ModelInfo { k: 4, ..model() });
        assert_eq!(double_k.part1_steps, base.part1_steps / 2);
    }

    #[test]
    fn seek_part2_scales_with_delta_and_kmax_ratio() {
        let p = SeekParams::default();
        let base = p.schedule(&model());
        let double_delta = p.schedule(&ModelInfo { delta: 16, ..model() });
        assert_eq!(double_delta.part2_steps, base.part2_steps * 2);
        let double_kmax = p.schedule(&ModelInfo { kmax: 8, ..model() });
        assert_eq!(double_kmax.part2_steps, base.part2_steps * 2);
    }

    #[test]
    fn kseek_is_shorter_for_larger_khat() {
        let p = SeekParams::default();
        let m = model();
        let s_k = p.kseek_schedule(&m, 2, None);
        let s_khat = p.kseek_schedule(&m, 4, Some(2));
        assert!(s_khat.part1_steps < s_k.part1_steps);
        assert!(s_khat.total_slots() < s_k.total_slots());
    }

    #[test]
    #[should_panic(expected = "khat must be at least k")]
    fn kseek_rejects_small_khat() {
        let _ = SeekParams::default().kseek_schedule(&model(), 1, None);
    }

    #[test]
    fn gcast_schedule_composition() {
        let m = model();
        let g = GcastParams { dissemination_phases: 5, ..Default::default() }.schedule(&m);
        assert_eq!(g.palette, 16);
        assert_eq!(g.coloring_phases, 18);
        assert_eq!(
            g.total_slots(),
            3 * g.seek_slots() + g.coloring_slots() + g.dissemination_slots()
        );
        assert_eq!(g.dissemination_slots(), 5 * 16 * g.dissem_step_slots());
    }

    #[test]
    #[should_panic(expected = "kmax cannot exceed c")]
    fn model_validation_catches_bad_kmax() {
        ModelInfo { n: 4, c: 2, delta: 2, k: 1, kmax: 3 }.validate();
    }

    #[test]
    fn schedules_are_deterministic_across_nodes() {
        // Two "nodes" computing the schedule from the same public info must
        // agree exactly — this is what keeps the network in lockstep.
        let a = SeekParams::default().schedule(&model());
        let b = SeekParams::default().schedule(&model());
        assert_eq!(a, b);
    }
}
