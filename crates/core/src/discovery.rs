//! The neighbor-discovery problem (paper §1): shared output/probe types
//! and ground-truth checkers.
//!
//! Discovery is the paper's central primitive — "each node wants to learn
//! the identities of its neighbors" — and three implementations compete on
//! it: [`CSeek`](crate::seek::CSeek) (Theorem 4),
//! [`NaiveDiscovery`](crate::baselines::NaiveDiscovery) (§1's strawman),
//! and [`FixedRateDiscovery`](crate::baselines::FixedRateDiscovery) (the
//! §2 related-work bound). They all produce a [`DiscoveryOutput`] and
//! implement [`DiscoveryProtocol`], so harnesses can probe progress
//! mid-run and validate completion against the network's ground truth
//! ([`all_discovered`], [`all_good_discovered`] — the latter for the
//! k̂-neighbor variant of §4.4, where only neighbors sharing ≥ k̂ channels
//! must be found).

use crn_sim::{Engine, LocalChannel, Network, NodeId, Protocol};

/// Result of running a neighbor-discovery protocol at one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryOutput {
    /// The node that produced this output.
    pub id: NodeId,
    /// Discovered neighbor identities, sorted.
    pub neighbors: Vec<NodeId>,
    /// For each discovered neighbor, the slot in which it was heard first.
    /// Sorted by neighbor id. (CGCAST uses these to agree on dedicated
    /// channels, paper §5.2.)
    pub first_heard: Vec<(NodeId, u64)>,
    /// Accumulated density estimates per local channel (CSEEK part one).
    /// Empty for protocols that do not sample densities.
    pub counts: Vec<u64>,
    /// The local channel this node was tuned to in every slot, when history
    /// recording was requested (needed by CGCAST's dedicated-channel rule).
    pub history: Option<Vec<LocalChannel>>,
}

/// Implemented by discovery protocols so generic probes and harnesses can
/// observe progress mid-run.
pub trait DiscoveryProtocol: Protocol {
    /// How many distinct neighbors have been heard so far.
    fn discovered_count(&self) -> usize;
    /// Whether `v` has been heard so far.
    fn has_discovered(&self, v: NodeId) -> bool;
}

/// Ground truth: `true` when every node has discovered *all* of its
/// neighbors (the neighbor-discovery success condition, §1).
pub fn all_discovered<P: DiscoveryProtocol>(net: &Network, eng: &Engine<'_, P>) -> bool {
    let mut ok = true;
    eng.for_each_protocol(|v, p| {
        if p.discovered_count() < net.degree(v) {
            ok = false;
        }
    });
    ok
}

/// Ground truth for k̂-neighbor discovery: `true` when every node has
/// discovered at least all neighbors sharing ≥ `khat` channels with it
/// (the k̂-neighbor-discovery success condition, §4.4).
pub fn all_good_discovered<P: DiscoveryProtocol>(
    net: &Network,
    eng: &Engine<'_, P>,
    khat: usize,
) -> bool {
    let mut ok = true;
    eng.for_each_protocol(|v, p| {
        if !ok {
            return;
        }
        for w in net.good_neighbors(v, khat) {
            if !p.has_discovered(w) {
                ok = false;
                return;
            }
        }
    });
    ok
}

/// Soundness check on final outputs: every reported neighbor really is a
/// neighbor. The model makes this automatic (only neighbors are audible),
/// so a violation indicates a simulator bug.
pub fn outputs_sound(net: &Network, outputs: &[DiscoveryOutput]) -> bool {
    outputs.iter().all(|o| {
        o.neighbors.iter().all(|&w| net.are_neighbors(o.id, w))
            && o.neighbors.windows(2).all(|w| w[0] < w[1])
    })
}

/// Completeness check on final outputs: every true neighbor was reported.
pub fn outputs_complete(net: &Network, outputs: &[DiscoveryOutput]) -> bool {
    outputs.iter().all(|o| net.neighbors(o.id).all(|w| o.neighbors.binary_search(&w).is_ok()))
}

/// Completeness restricted to `khat`-good neighbors.
pub fn outputs_khat_complete(net: &Network, outputs: &[DiscoveryOutput], khat: usize) -> bool {
    outputs.iter().all(|o| {
        net.good_neighbors(o.id, khat).iter().all(|w| o.neighbors.binary_search(w).is_ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::GlobalChannel;

    fn tiny_net() -> Network {
        let mut b = Network::builder(3);
        b.set_channels(NodeId(0), vec![GlobalChannel(0), GlobalChannel(1)]);
        b.set_channels(NodeId(1), vec![GlobalChannel(0), GlobalChannel(1)]);
        b.set_channels(NodeId(2), vec![GlobalChannel(0), GlobalChannel(9)]);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.build().unwrap()
    }

    fn out(id: u32, neighbors: &[u32]) -> DiscoveryOutput {
        DiscoveryOutput {
            id: NodeId(id),
            neighbors: neighbors.iter().map(|&v| NodeId(v)).collect(),
            first_heard: Vec::new(),
            counts: Vec::new(),
            history: None,
        }
    }

    #[test]
    fn soundness_accepts_true_neighbors() {
        let net = tiny_net();
        let outs = vec![out(0, &[1, 2]), out(1, &[0]), out(2, &[0])];
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
    }

    #[test]
    fn soundness_rejects_non_neighbors() {
        let net = tiny_net();
        let outs = vec![out(1, &[2])]; // 1 and 2 are not neighbors
        assert!(!outputs_sound(&net, &outs));
    }

    #[test]
    fn completeness_detects_missing() {
        let net = tiny_net();
        let outs = vec![out(0, &[1]), out(1, &[0]), out(2, &[0])];
        assert!(!outputs_complete(&net, &outs));
    }

    #[test]
    fn khat_completeness_only_requires_good_neighbors() {
        let net = tiny_net();
        // Node 0 shares 2 channels with node 1 but only 1 with node 2.
        let outs = vec![out(0, &[1]), out(1, &[0]), out(2, &[])];
        assert!(outputs_khat_complete(&net, &outs, 2));
        assert!(!outputs_khat_complete(&net, &outs, 1));
    }
}
