//! COUNT: the guess-and-verify contention-estimation procedure (paper §4.1,
//! Appendix A).
//!
//! On one channel there is a listener and an unknown number `m ≤ Δ` of
//! broadcasters. COUNT runs `lg Δ` rounds of `Θ(lg n)` slots. In round `i`
//! (1-based) the current guess is `2^(i−1)` and every broadcaster transmits
//! with probability `1/2^(i−1)` per slot. When the guess is near `m`, the
//! per-slot success probability spikes (≈ `e⁻¹`), so the first round whose
//! heard-fraction exceeds a threshold reveals `m` up to a factor of 4:
//! the listener adopts `2^(i+1)`, which lies in `[m, 4m]` w.h.p. (Lemma 1).
//!
//! [`CountInstance`] is the embeddable state machine used inside CSEEK's
//! part-one steps (drive it with `should_broadcast`/`record_listen` +
//! `finish_slot` once per slot); [`CountProtocol`] wraps it as a standalone [`Protocol`]
//! for direct evaluation (experiment E1).

use crate::params::CountSchedule;
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Feedback, FeedbackBatch,
    LocalChannel, NodeId, Protocol, SlotCtx,
};
use rand::{Rng, RngCore};

/// The role a node plays in one COUNT execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Transmits according to the doubling schedule.
    Broadcaster,
    /// Listens and estimates the number of broadcasters.
    Listener,
}

/// One in-flight COUNT execution. Broadcasters call
/// [`CountInstance::should_broadcast`] and listeners
/// [`CountInstance::record_listen`] each slot, followed by
/// [`CountInstance::finish_slot`], until [`CountInstance::is_done`].
#[derive(Debug, Clone)]
pub struct CountInstance {
    schedule: CountSchedule,
    role: Role,
    round: u32,
    slot_in_round: u32,
    heard_in_round: u32,
    /// First round (0-based) whose heard count crossed the threshold.
    triggered_round: Option<u32>,
    done: bool,
}

impl CountInstance {
    /// Starts a COUNT execution with the given role.
    pub fn new(schedule: CountSchedule, role: Role) -> CountInstance {
        assert!(schedule.rounds >= 1 && schedule.round_len >= 1, "degenerate COUNT schedule");
        CountInstance {
            schedule,
            role,
            round: 0,
            slot_in_round: 0,
            heard_in_round: 0,
            triggered_round: None,
            done: false,
        }
    }

    /// The role this instance plays.
    pub fn role(&self) -> Role {
        self.role
    }

    /// `true` once all rounds have run.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Per-slot transmission probability in the current round:
    /// `1/2^round` (round 0-based, i.e. the paper's `1/2^(i−1)`).
    pub fn broadcast_probability(&self) -> f64 {
        1.0 / (1u64 << self.round.min(62)) as f64
    }

    /// For broadcasters: decide whether to transmit this slot. Generic
    /// over the random source (scalar RNG or a buffered view — identical
    /// streams).
    ///
    /// # Panics
    /// Panics if called on a listener or a finished instance.
    pub fn should_broadcast<R: RngCore>(&self, rng: &mut R) -> bool {
        assert_eq!(self.role, Role::Broadcaster, "only broadcasters transmit in COUNT");
        assert!(!self.done, "COUNT already finished");
        rng.gen_bool(self.broadcast_probability())
    }

    /// For listeners: record whether a message was heard this slot.
    ///
    /// # Panics
    /// Panics if called on a broadcaster or a finished instance.
    pub fn record_listen(&mut self, heard: bool) {
        assert_eq!(self.role, Role::Listener, "only listeners record in COUNT");
        assert!(!self.done, "COUNT already finished");
        if heard {
            self.heard_in_round += 1;
        }
    }

    /// Advances the slot clock; call exactly once per slot after
    /// acting/recording. Handles round boundaries and trigger detection.
    pub fn finish_slot(&mut self) {
        assert!(!self.done, "COUNT already finished");
        self.slot_in_round += 1;
        if self.slot_in_round == self.schedule.round_len {
            if self.role == Role::Listener
                && self.triggered_round.is_none()
                && self.heard_in_round > self.schedule.threshold_count
            {
                self.triggered_round = Some(self.round);
            }
            self.heard_in_round = 0;
            self.slot_in_round = 0;
            self.round += 1;
            if self.round == self.schedule.rounds {
                self.done = true;
            }
        }
    }

    /// The estimate: `2^(i+1)` for the first triggering round `i` (1-based),
    /// or 0 if no round triggered (meaning: no broadcaster was audible).
    /// Valid any time; final once [`CountInstance::is_done`].
    pub fn estimate(&self) -> u64 {
        match self.triggered_round {
            // round is 0-based here: paper's i = round+1, estimate 2^(i+1).
            Some(round) => 1u64 << (round + 2).min(62),
            None => 0,
        }
    }
}

/// Standalone COUNT as a [`Protocol`]: node 0 listens, all other nodes
/// broadcast their identity. Used by experiment E1 and the `count` bench to
/// reproduce Lemma 1 directly.
#[derive(Debug, Clone)]
pub struct CountProtocol {
    instance: CountInstance,
    id: NodeId,
    channel: LocalChannel,
    heard_ids: Vec<NodeId>,
}

/// Output of [`CountProtocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountOutput {
    /// The node's role during the run.
    pub role: Role,
    /// The estimate (listeners only; 0 for broadcasters and silent runs).
    pub estimate: u64,
    /// Identities heard while listening.
    pub heard_ids: Vec<NodeId>,
}

impl CountProtocol {
    /// Creates a COUNT participant on local channel `channel`.
    pub fn new(id: NodeId, role: Role, schedule: CountSchedule, channel: LocalChannel) -> Self {
        CountProtocol {
            instance: CountInstance::new(schedule, role),
            id,
            channel,
            heard_ids: Vec::new(),
        }
    }

    /// The listener's current estimate.
    pub fn estimate(&self) -> u64 {
        self.instance.estimate()
    }

    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<NodeId> {
        match self.instance.role() {
            Role::Broadcaster => {
                if self.instance.should_broadcast(ctx.rng) {
                    Action::Broadcast { channel: self.channel, message: self.id }
                } else {
                    Action::Sleep
                }
            }
            Role::Listener => Action::Listen { channel: self.channel },
        }
    }

    /// Exact word count [`CountProtocol::act_any`] draws this slot: one
    /// transmission coin for a live broadcaster, none for a listener.
    fn draws_this_slot(&self) -> usize {
        (self.instance.role() == Role::Broadcaster && !self.instance.is_done()) as usize
    }

    /// The feedback body — RNG-free and slot-free, shared by the scalar
    /// and batched delivery paths.
    fn feedback_any(&mut self, fb: Feedback<'_, NodeId>) {
        if self.instance.role() == Role::Listener {
            match fb {
                Feedback::Heard(id) => {
                    self.heard_ids.push(*id);
                    self.instance.record_listen(true);
                }
                _ => self.instance.record_listen(false),
            }
        }
        self.instance.finish_slot();
    }
}

impl Protocol for CountProtocol {
    type Message = NodeId;
    type Output = CountOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<NodeId> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<NodeId>>) {
        act_batch_buffered(batch, ctx, out, |p| p.draws_this_slot(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, fb: Feedback<'_, NodeId>) {
        self.feedback_any(fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, NodeId>) {
        // Reserve 0 exactly: the feedback body never draws (nor reads the
        // slot clock — the schedule core keeps its own position).
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, _sctx, f| p.feedback_any(f));
    }

    fn is_complete(&self) -> bool {
        self.instance.is_done()
    }

    fn into_output(self) -> CountOutput {
        CountOutput {
            role: self.instance.role(),
            estimate: self.instance.estimate(),
            heard_ids: self.heard_ids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{CountParams, ModelInfo};
    use crn_sim::{Engine, GlobalChannel, Network};

    fn schedule(n: usize, delta: usize) -> CountSchedule {
        CountParams::default().schedule(&ModelInfo { n, c: 1, delta, k: 1, kmax: 1 })
    }

    /// Clique where everyone shares one channel; node 0 listens, `m` others
    /// broadcast.
    fn run_count(m: usize, seed: u64) -> u64 {
        let n = m + 1;
        let mut b = Network::builder(n);
        for v in 0..n {
            b.set_channels(NodeId(v as u32), vec![GlobalChannel(0)]);
        }
        for a in 0..n as u32 {
            for bb in (a + 1)..n as u32 {
                b.add_edge(NodeId(a), NodeId(bb));
            }
        }
        let net = b.build().unwrap();
        let sched = schedule(64, 64);
        let mut eng = Engine::new(&net, seed, |ctx| {
            let role = if ctx.id == NodeId(0) { Role::Listener } else { Role::Broadcaster };
            CountProtocol::new(ctx.id, role, sched, LocalChannel(0))
        });
        eng.run_to_completion(sched.total_slots() + 1);
        eng.into_outputs().remove(0).estimate
    }

    #[test]
    fn estimate_in_m_to_4m_for_small_counts() {
        for m in [1usize, 2, 3, 5, 8] {
            let mut ok = 0;
            let trials = 20;
            for seed in 0..trials {
                let est = run_count(m, 1000 + seed);
                if est as usize >= m && est as usize <= 4 * m {
                    ok += 1;
                }
            }
            assert!(ok >= trials * 9 / 10, "m={m}: only {ok}/{trials} runs inside [m, 4m]");
        }
    }

    #[test]
    fn estimate_in_m_to_4m_for_larger_counts() {
        for m in [16usize, 31, 48] {
            let mut ok = 0;
            let trials = 10;
            for seed in 0..trials {
                let est = run_count(m, 2000 + seed);
                if est as usize >= m && est as usize <= 4 * m {
                    ok += 1;
                }
            }
            assert!(ok >= trials * 8 / 10, "m={m}: only {ok}/{trials} inside [m, 4m]");
        }
    }

    #[test]
    fn zero_broadcasters_estimate_zero() {
        assert_eq!(run_count(0, 7), 0);
    }

    #[test]
    fn instance_slot_accounting() {
        let sched = CountSchedule { rounds: 2, round_len: 3, threshold_count: 1 };
        let mut ci = CountInstance::new(sched, Role::Listener);
        assert!(!ci.is_done());
        for _ in 0..5 {
            ci.record_listen(false);
            ci.finish_slot();
        }
        assert!(!ci.is_done());
        ci.record_listen(false);
        ci.finish_slot();
        assert!(ci.is_done());
        assert_eq!(ci.estimate(), 0);
    }

    #[test]
    fn trigger_produces_power_of_two_estimate() {
        let sched = CountSchedule { rounds: 3, round_len: 4, threshold_count: 1 };
        let mut ci = CountInstance::new(sched, Role::Listener);
        // Round 1 (round index 0): hear 2 messages > threshold 1 -> trigger.
        for s in 0..4 {
            ci.record_listen(s < 2);
            ci.finish_slot();
        }
        assert_eq!(ci.estimate(), 4, "trigger in paper-round 1 gives 2^(1+1)");
        // Later rounds do not change the first trigger.
        for _ in 0..8 {
            ci.record_listen(true);
            ci.finish_slot();
        }
        assert!(ci.is_done());
        assert_eq!(ci.estimate(), 4);
    }

    #[test]
    fn broadcast_probability_halves_per_round() {
        let sched = CountSchedule { rounds: 3, round_len: 1, threshold_count: 1 };
        let mut ci = CountInstance::new(sched, Role::Broadcaster);
        assert_eq!(ci.broadcast_probability(), 1.0);
        ci.finish_slot();
        assert_eq!(ci.broadcast_probability(), 0.5);
        ci.finish_slot();
        assert_eq!(ci.broadcast_probability(), 0.25);
    }

    #[test]
    #[should_panic(expected = "only broadcasters")]
    fn listener_cannot_broadcast() {
        let sched = CountSchedule { rounds: 1, round_len: 1, threshold_count: 1 };
        let ci = CountInstance::new(sched, Role::Listener);
        let mut rng = crn_sim::rng::stream_rng(0, 0);
        let _ = ci.should_broadcast(&mut rng);
    }

    #[test]
    #[should_panic(expected = "only listeners")]
    fn broadcaster_cannot_record() {
        let sched = CountSchedule { rounds: 1, round_len: 1, threshold_count: 1 };
        let mut ci = CountInstance::new(sched, Role::Broadcaster);
        ci.record_listen(true);
    }
}
