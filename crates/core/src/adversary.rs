//! Adversarial nodes: jammers.
//!
//! The paper motivates cognitive radio by "interference (e.g., from
//! disruptive devices or from prioritized users)" (§1) but analyzes a clean
//! model. This module is an *extension*: it lets experiments measure how
//! gracefully the primitives degrade when some in-range nodes jam instead
//! of cooperating. A jammer transmits every slot, so any listener on its
//! channel within range hears a collision (or the jammer's garbage when it
//! is the lone transmitter).
//!
//! [`NodeRole`] wraps an honest protocol and a jammer into one engine type
//! so mixed populations run in a single simulation.

use crn_sim::{Action, Feedback, LocalChannel, Protocol, SlotCtx};
use rand::Rng;

/// How a jammer picks its channel each slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JamStrategy {
    /// Camp on one local channel forever.
    Fixed(LocalChannel),
    /// Sweep channels round-robin, one per slot.
    Sweep,
    /// Uniformly random channel each slot.
    Random,
}

/// A jammer node: broadcasts `noise` every slot on a channel chosen by its
/// strategy.
#[derive(Debug, Clone)]
pub struct Jammer<M> {
    c: u16,
    strategy: JamStrategy,
    noise: M,
}

impl<M: Clone> Jammer<M> {
    /// Creates a jammer over `c` channels transmitting `noise`.
    pub fn new(c: u16, strategy: JamStrategy, noise: M) -> Jammer<M> {
        assert!(c >= 1, "jammer needs at least one channel");
        Jammer { c, strategy, noise }
    }

    fn pick(&mut self, ctx: &mut SlotCtx<'_>) -> LocalChannel {
        match self.strategy {
            JamStrategy::Fixed(ch) => ch,
            // Derived from the engine's slot clock, not an internal
            // counter: a jammer cloned from a used instance, or one driven
            // inside an `Engine::reset` trial loop, stays aligned with the
            // global schedule by construction.
            JamStrategy::Sweep => LocalChannel((ctx.slot.0 % self.c as u64) as u16),
            JamStrategy::Random => LocalChannel(ctx.rng.gen_range(0..self.c)),
        }
    }
}

impl<M: Clone> Protocol for Jammer<M> {
    type Message = M;
    type Output = ();

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<M> {
        let channel = self.pick(ctx);
        Action::Broadcast { channel, message: self.noise.clone() }
    }

    fn feedback(&mut self, _ctx: &mut SlotCtx<'_>, _fb: Feedback<'_, M>) {}

    fn is_complete(&self) -> bool {
        // A jammer never finishes on its own; the honest nodes' schedule
        // (or the engine's slot cap) ends the run.
        true
    }

    fn into_output(self) {}
}

/// A node that is either honest (running `P`) or a jammer with the same
/// message type — lets the engine run mixed populations.
#[derive(Debug, Clone)]
pub enum NodeRole<P: Protocol> {
    /// A cooperative node running the protocol under test.
    Honest(P),
    /// A disruptive node.
    Adversary(Jammer<P::Message>),
}

impl<P: Protocol> NodeRole<P> {
    /// Access the honest protocol, if this node is honest.
    pub fn honest(&self) -> Option<&P> {
        match self {
            NodeRole::Honest(p) => Some(p),
            NodeRole::Adversary(_) => None,
        }
    }
}

// The jammer re-broadcasts its owned `noise` every slot, so mixed
// populations need clonable messages (the engine itself never clones).
impl<P: Protocol> Protocol for NodeRole<P>
where
    P::Message: Clone,
{
    type Message = P::Message;
    type Output = Option<P::Output>;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<P::Message> {
        match self {
            NodeRole::Honest(p) => p.act(ctx),
            NodeRole::Adversary(j) => j.act(ctx),
        }
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, P::Message>) {
        match self {
            NodeRole::Honest(p) => p.feedback(ctx, fb),
            NodeRole::Adversary(j) => j.feedback(ctx, fb),
        }
    }

    fn is_complete(&self) -> bool {
        match self {
            NodeRole::Honest(p) => p.is_complete(),
            NodeRole::Adversary(j) => j.is_complete(),
        }
    }

    fn into_output(self) -> Option<P::Output> {
        match self {
            NodeRole::Honest(p) => Some(p.into_output()),
            NodeRole::Adversary(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{ModelInfo, SeekParams};
    use crate::seek::CSeek;
    use crn_sim::channels::ChannelModel;
    use crn_sim::rng::stream_rng;
    use crn_sim::topology::Topology;
    use crn_sim::{Engine, Network, NodeId};

    fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
        let mut rng = stream_rng(seed, 999);
        let n = topo.num_nodes();
        let sets = model.assign(n, &mut rng);
        let mut b = Network::builder(n);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        b.build().unwrap()
    }

    #[test]
    fn fixed_jammer_blocks_its_channel_for_adjacent_listeners() {
        // Two honest nodes + one jammer, all mutually adjacent, single
        // shared channel: the jammer transmits every slot, so the honest
        // pair can never hear each other (every slot has >= 2 transmitters
        // or the jammer alone).
        let net = build_net(&Topology::Complete { n: 3 }, &ChannelModel::Identical { c: 1 }, 1);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 5, |ctx| {
            if ctx.id == NodeId(2) {
                NodeRole::Adversary(Jammer::new(1, JamStrategy::Fixed(LocalChannel(0)), NodeId(2)))
            } else {
                NodeRole::Honest(CSeek::new(ctx.id, sched, false))
            }
        });
        eng.run_to_completion(sched.total_slots());
        let outs = eng.into_outputs();
        let n0 = outs[0].as_ref().unwrap();
        // Node 0 can hear the jammer when the jammer transmits alone, but
        // never node 1 (node 1's transmissions always collide with the
        // jammer's).
        assert!(
            !n0.neighbors.contains(&NodeId(1)),
            "jammed channel must never deliver the honest peer"
        );
    }

    #[test]
    fn discovery_survives_jamming_with_spare_channels() {
        // c = 4 shared channels, one jammed: CSEEK still completes between
        // honest nodes using the other three.
        let net = build_net(&Topology::Complete { n: 4 }, &ChannelModel::Identical { c: 4 }, 2);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = SeekParams::default().schedule(&m);
        let mut eng = Engine::new(&net, 7, |ctx| {
            if ctx.id == NodeId(3) {
                NodeRole::Adversary(Jammer::new(4, JamStrategy::Fixed(LocalChannel(0)), NodeId(3)))
            } else {
                NodeRole::Honest(CSeek::new(ctx.id, sched, false))
            }
        });
        eng.run_to_completion(sched.total_slots());
        let outs = eng.into_outputs();
        for (v, out) in outs.iter().enumerate().take(3) {
            let out = out.as_ref().unwrap();
            for w in 0..3u32 {
                if w as usize != v {
                    assert!(
                        out.neighbors.contains(&NodeId(w)),
                        "honest {v} should still find honest {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn jammer_strategies_cover_channels_as_documented() {
        let mut fixed = Jammer::new(4, JamStrategy::Fixed(LocalChannel(2)), 0u8);
        let mut sweep = Jammer::new(4, JamStrategy::Sweep, 0u8);
        let mut rng = stream_rng(0, 0);
        let mut seen_sweep = Vec::new();
        for slot in 0..8 {
            let mut ctx = SlotCtx { slot: crn_sim::Slot(slot), rng: &mut rng };
            match fixed.act(&mut ctx) {
                Action::Broadcast { channel, .. } => assert_eq!(channel, LocalChannel(2)),
                _ => panic!("jammer always broadcasts"),
            }
            let mut ctx = SlotCtx { slot: crn_sim::Slot(slot), rng: &mut rng };
            if let Action::Broadcast { channel, .. } = sweep.act(&mut ctx) {
                seen_sweep.push(channel.0);
            }
        }
        assert_eq!(seen_sweep, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn sweep_jammer_tracks_the_slot_clock_not_call_history() {
        // The sweep channel is a function of the engine's slot clock: a
        // jammer that missed slots (or was cloned from a used instance)
        // must not drift. Feed non-contiguous slots and check alignment.
        let mut sweep = Jammer::new(4, JamStrategy::Sweep, 0u8);
        let mut rng = stream_rng(0, 0);
        for slot in [5u64, 6, 100, 3] {
            let mut ctx = SlotCtx { slot: crn_sim::Slot(slot), rng: &mut rng };
            match sweep.act(&mut ctx) {
                Action::Broadcast { channel, .. } => {
                    assert_eq!(channel, LocalChannel((slot % 4) as u16), "slot {slot}")
                }
                _ => panic!("jammer always broadcasts"),
            }
        }
        // A clone of the used jammer behaves identically at any slot.
        let mut cloned = sweep.clone();
        let mut ctx = SlotCtx { slot: crn_sim::Slot(7), rng: &mut rng };
        assert!(matches!(cloned.act(&mut ctx), Action::Broadcast { channel: LocalChannel(3), .. }));
    }
}
