//! CGCAST: global broadcast for cognitive radio networks (paper §5,
//! Theorem 9).
//!
//! The protocol is a fixed-length composition of stages; because every
//! stage length is a function of globally-known parameters, all nodes move
//! through the stages in lockstep:
//!
//! 1. **Discover** — one full CSEEK run with identity messages; each node
//!    records, per neighbor, the first slot it heard them and remembers the
//!    channel it was camped on in every slot.
//! 2. **Meta** — a second CSEEK run; messages carry the first-heard slot
//!    table. Each pair of neighbors then agrees on a *dedicated channel*:
//!    the channel used in slot `min{t_{u,v}, t_{v,u}}` (both nodes were on
//!    that same physical channel in that slot, and both can compute the
//!    minimum — paper §5.2).
//! 3. **Coloring** — `Θ(lg n)` phases of the Luby-style node coloring of
//!    the line graph. The virtual node for edge `(u,v)` is simulated by
//!    `min(u,v)`. Each phase has two steps (propose/resolve, then strike),
//!    and each step runs CSEEK **twice**: once to exchange, once to relay,
//!    since adjacent virtual nodes may be simulated by physical nodes two
//!    hops apart.
//! 4. **Inform** — one more CSEEK run in which each simulator tells the
//!    other endpoint the color of their edge.
//! 5. **Disseminate** — `D` phases × `2Δ` steps (one per color) ×
//!    `Θ(lg n)` back-off rounds of `lg Δ` slots. In the step of color `K`,
//!    the endpoints of each `K`-colored edge meet on their dedicated
//!    channel; informed endpoints run a back-off broadcast, uninformed ones
//!    listen. The message advances at least one hop per phase w.h.p.

mod message;
mod output;
pub mod uncolored;

pub use message::GcastMsg;
pub use output::GcastOutput;
pub use uncolored::UncoloredGcast;

use crate::coloring::luby::LubyNodeState;
use crate::count::Role;
use crate::params::GcastSchedule;
use crate::seek::{SeekCore, SeekSlotPlan};
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Edge, Feedback, FeedbackBatch,
    LocalChannel, NodeId, Protocol, SlotCtx,
};
use rand::{Rng, RngCore};
use std::collections::BTreeMap;

/// Which top-level stage of CGCAST is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Discover,
    Meta,
    /// `run` 0 = exchange, 1 = relay.
    Coloring {
        phase: u64,
        step: u8,
        run: u8,
    },
    Inform,
    Disseminate,
    Done,
}

/// A virtual line-graph node simulated by this physical node (we are the
/// smaller endpoint of `edge`).
#[derive(Debug, Clone)]
struct Virtual {
    edge: Edge,
    peer: NodeId,
    luby: LubyNodeState,
}

/// Position inside the dissemination schedule.
#[derive(Debug, Clone, Copy, Default)]
struct DissemPos {
    phase: u64,
    step: u32,
    round: u64,
    slot: u32,
}

/// The CGCAST protocol state machine for one node.
#[derive(Debug, Clone)]
pub struct CGCast {
    id: NodeId,
    sched: GcastSchedule,
    stage: Stage,
    seek: Option<SeekCore>,
    outgoing: GcastMsg,

    // Discover artifacts.
    heard_first: BTreeMap<NodeId, u64>,
    history: Vec<LocalChannel>,

    // Meta artifacts.
    peer_meta: BTreeMap<NodeId, Vec<(NodeId, u64)>>,
    dedicated: BTreeMap<NodeId, LocalChannel>,

    // Coloring artifacts.
    virtuals: Vec<Virtual>,
    exchange_heard: BTreeMap<Edge, u32>,
    edge_colors: BTreeMap<NodeId, u32>,

    // Dissemination.
    payload: Option<u64>,
    informed_at: Option<u64>,
    pos: DissemPos,
    step_edge: Option<NodeId>,
    step_informed: bool,
}

impl CGCast {
    /// Creates a CGCAST participant. `payload` is `Some` only at the
    /// designated source node.
    pub fn new(id: NodeId, sched: GcastSchedule, payload: Option<u64>) -> CGCast {
        CGCast {
            id,
            sched,
            stage: Stage::Discover,
            seek: Some(SeekCore::new(sched.seek)),
            outgoing: GcastMsg::Id(id),
            heard_first: BTreeMap::new(),
            history: Vec::with_capacity(sched.seek.total_slots() as usize),
            peer_meta: BTreeMap::new(),
            dedicated: BTreeMap::new(),
            virtuals: Vec::new(),
            exchange_heard: BTreeMap::new(),
            edge_colors: BTreeMap::new(),
            informed_at: payload.map(|_| 0),
            payload,
            pos: DissemPos::default(),
            step_edge: None,
            step_informed: false,
        }
    }

    /// `true` once this node holds the broadcast payload.
    pub fn is_informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Neighbors discovered in stage 1.
    pub fn discovered(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.heard_first.keys().copied()
    }

    /// Neighbors with an agreed dedicated channel.
    pub fn dedicated_count(&self) -> usize {
        self.dedicated.len()
    }

    /// Colors known for incident edges (own simulated + told by peers).
    pub fn known_colors(&self) -> &BTreeMap<NodeId, u32> {
        &self.edge_colors
    }

    // ------------------------------------------------------------------
    // Stage transitions
    // ------------------------------------------------------------------

    fn advance_after_seek<R: RngCore>(&mut self, rng: &mut R) {
        match self.stage {
            Stage::Discover => {
                self.outgoing = GcastMsg::Meta {
                    from: self.id,
                    first_heard: self.heard_first.iter().map(|(&v, &t)| (v, t)).collect(),
                };
                self.stage = Stage::Meta;
                self.seek = Some(SeekCore::new(self.sched.seek));
            }
            Stage::Meta => {
                self.compute_dedicated();
                self.build_virtuals();
                self.begin_coloring_step(0, 0, rng);
            }
            Stage::Coloring { phase, step, run } => {
                if run == 0 {
                    // Relay run: rebroadcast own entries plus everything
                    // heard during the exchange run.
                    let mut entries: BTreeMap<Edge, u32> = self.exchange_heard.clone();
                    for (e, c) in self.own_entries(step) {
                        entries.insert(e, c);
                    }
                    let entries: Vec<(Edge, u32)> = entries.into_iter().collect();
                    self.outgoing = if step == 0 {
                        GcastMsg::Proposals { entries }
                    } else {
                        GcastMsg::Decisions { entries }
                    };
                    self.stage = Stage::Coloring { phase, step, run: 1 };
                    self.seek = Some(SeekCore::new(self.sched.seek));
                } else if step == 0 {
                    self.resolve_proposals();
                    self.begin_coloring_step(phase, 1, rng);
                } else {
                    self.strike_decided_colors();
                    if phase + 1 < self.sched.coloring_phases {
                        self.begin_coloring_step(phase + 1, 0, rng);
                    } else {
                        self.begin_inform();
                    }
                }
            }
            Stage::Inform => {
                self.stage = Stage::Disseminate;
                self.seek = None;
                self.pos = DissemPos::default();
                self.init_dissem_step();
            }
            Stage::Disseminate | Stage::Done => unreachable!("not seek-driven"),
        }
    }

    fn begin_coloring_step<R: RngCore>(&mut self, phase: u64, step: u8, rng: &mut R) {
        if self.sched.coloring_phases == 0 {
            self.begin_inform();
            return;
        }
        self.exchange_heard.clear();
        if step == 0 {
            // Step 1 opening move: active virtual nodes propose.
            for v in &mut self.virtuals {
                v.luby.propose(rng);
            }
        }
        let entries = self.own_entries(step);
        self.outgoing = if step == 0 {
            GcastMsg::Proposals { entries }
        } else {
            GcastMsg::Decisions { entries }
        };
        self.stage = Stage::Coloring { phase, step, run: 0 };
        self.seek = Some(SeekCore::new(self.sched.seek));
    }

    /// The entries this node contributes in a coloring step: proposals of
    /// its active virtual nodes (step 0) or all colors its virtual nodes
    /// have decided so far (step 1; idempotent to re-announce).
    fn own_entries(&self, step: u8) -> Vec<(Edge, u32)> {
        if step == 0 {
            self.virtuals.iter().filter_map(|v| v.luby.proposal().map(|c| (v.edge, c))).collect()
        } else {
            self.virtuals.iter().filter_map(|v| v.luby.decided().map(|c| (v.edge, c))).collect()
        }
    }

    fn begin_inform(&mut self) {
        // Record the colors of our own simulated edges, then tell peers.
        let mut entries = Vec::new();
        for v in &self.virtuals {
            if let Some(c) = v.luby.decided() {
                self.edge_colors.insert(v.peer, c);
                entries.push((v.edge, c));
            }
        }
        self.outgoing = GcastMsg::EdgeColors { entries };
        self.stage = Stage::Inform;
        self.seek = Some(SeekCore::new(self.sched.seek));
    }

    /// Dedicated-channel agreement (paper §5.2): both endpoints of an edge
    /// were tuned to the same physical channel in slot
    /// `min{t_{u,v}, t_{v,u}}` of the Discover run; each remembers its own
    /// local label for it.
    ///
    /// Each side evaluates the minimum over the *defined* timestamps: its
    /// own first-heard slot (if any) and the peer's (read from the Meta
    /// message — absence of an entry means the peer never heard us, i.e.
    /// `∞`). Both sides see the same pair of options once the Metas are
    /// exchanged, so they agree on the minimum.
    fn compute_dedicated(&mut self) {
        for (&v, list) in &self.peer_meta {
            let t_uv = self.heard_first.get(&v).copied();
            let t_vu = list.iter().find(|(w, _)| *w == self.id).map(|&(_, t)| t);
            let t_star = match (t_uv, t_vu) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => continue,
            } as usize;
            debug_assert!(t_star < self.history.len());
            self.dedicated.insert(v, self.history[t_star]);
        }
    }

    /// We simulate the virtual line-graph node of every usable incident
    /// edge whose smaller endpoint we are.
    fn build_virtuals(&mut self) {
        let palette = self.sched.palette;
        for &peer in self.dedicated.keys() {
            if self.id < peer {
                self.virtuals.push(Virtual {
                    edge: Edge::new(self.id, peer),
                    peer,
                    luby: LubyNodeState::new(palette),
                });
            }
        }
    }

    /// End of a step-0 exchange pair: gather every proposal visible for
    /// each virtual node (radio-heard entries plus the proposals of our own
    /// other virtual nodes) and run the symmetric conflict resolution.
    fn resolve_proposals(&mut self) {
        // Snapshot proposals before any resolve() clears them.
        let mut all: Vec<(Edge, u32)> = self.exchange_heard.iter().map(|(&e, &c)| (e, c)).collect();
        all.extend(self.virtuals.iter().filter_map(|v| v.luby.proposal().map(|c| (v.edge, c))));
        for v in &mut self.virtuals {
            let neigh: Vec<u32> = all
                .iter()
                .filter(|(e, _)| *e != v.edge && e.shares_endpoint(v.edge))
                .map(|&(_, c)| c)
                .collect();
            v.luby.resolve(&neigh);
        }
    }

    /// End of a step-1 exchange pair: strike the colors decided by adjacent
    /// virtual nodes from every active palette.
    fn strike_decided_colors(&mut self) {
        let mut all: Vec<(Edge, u32)> = self.exchange_heard.iter().map(|(&e, &c)| (e, c)).collect();
        all.extend(self.virtuals.iter().filter_map(|v| v.luby.decided().map(|c| (v.edge, c))));
        for v in &mut self.virtuals {
            let decided: Vec<u32> = all
                .iter()
                .filter(|(e, _)| *e != v.edge && e.shares_endpoint(v.edge))
                .map(|&(_, c)| c)
                .collect();
            v.luby.remove_colors(&decided);
        }
    }

    // ------------------------------------------------------------------
    // Message handling
    // ------------------------------------------------------------------

    fn process_message(&mut self, slot: u64, msg: GcastMsg) {
        match (self.stage, msg) {
            (Stage::Discover, GcastMsg::Id(v)) => {
                self.heard_first.entry(v).or_insert(slot);
            }
            (Stage::Meta, GcastMsg::Meta { from, first_heard }) => {
                self.peer_meta.entry(from).or_insert(first_heard);
            }
            (Stage::Coloring { step: 0, .. }, GcastMsg::Proposals { entries })
            | (Stage::Coloring { step: 1, .. }, GcastMsg::Decisions { entries }) => {
                for (e, c) in entries {
                    self.exchange_heard.insert(e, c);
                }
            }
            (Stage::Inform, GcastMsg::EdgeColors { entries }) => {
                for (e, c) in entries {
                    if e.touches(self.id) {
                        self.edge_colors.insert(e.other(self.id), c);
                    }
                }
            }
            // Message type from a mismatched stage: impossible in lockstep
            // executions; ignore defensively.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Dissemination
    // ------------------------------------------------------------------

    /// At a step boundary, bind the step to (at most) one incident edge:
    /// the one whose color equals the step index and whose dedicated
    /// channel is agreed. Also freeze the informed/listening role for the
    /// step (paper: informed nodes broadcast, uninformed listen).
    fn init_dissem_step(&mut self) {
        let color = self.pos.step;
        self.step_edge = self
            .edge_colors
            .iter()
            .find(|&(peer, &c)| c == color && self.dedicated.contains_key(peer))
            .map(|(&peer, _)| peer);
        self.step_informed = self.payload.is_some();
    }

    fn dissem_act<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<GcastMsg> {
        let Some(peer) = self.step_edge else {
            return Action::Sleep;
        };
        let channel = self.dedicated[&peer];
        if self.step_informed {
            let l = self.sched.dissem_slots_per_round;
            let exp = (l - self.pos.slot).min(62);
            if ctx.rng.gen_bool(1.0 / (1u64 << exp) as f64) {
                Action::Broadcast {
                    channel,
                    message: GcastMsg::Data(self.payload.expect("informed step role")),
                }
            } else {
                Action::Sleep
            }
        } else {
            Action::Listen { channel }
        }
    }

    fn dissem_feedback<R: RngCore>(
        &mut self,
        ctx: &mut SlotCtx<'_, R>,
        fb: Feedback<'_, GcastMsg>,
    ) {
        if let Feedback::Heard(GcastMsg::Data(x)) = fb {
            if self.payload.is_none() {
                self.payload = Some(*x);
                self.informed_at = Some(ctx.slot.0);
            }
        }
        // Advance slot -> round -> step -> phase.
        self.pos.slot += 1;
        if self.pos.slot == self.sched.dissem_slots_per_round {
            self.pos.slot = 0;
            self.pos.round += 1;
            if self.pos.round == self.sched.dissem_rounds {
                self.pos.round = 0;
                self.pos.step += 1;
                if self.pos.step as u64 == self.sched.palette as u64 {
                    self.pos.step = 0;
                    self.pos.phase += 1;
                    if self.pos.phase == self.sched.dissem_phases {
                        self.stage = Stage::Done;
                        return;
                    }
                }
                self.init_dissem_step();
            }
        }
    }
}

impl CGCast {
    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<GcastMsg> {
        match self.stage {
            Stage::Done => Action::Sleep,
            Stage::Disseminate => self.dissem_act(ctx),
            _ => {
                let seek = self.seek.as_mut().expect("seek active in seek-driven stage");
                let plan = seek.plan_slot(ctx.rng).expect("seek schedule not exhausted");
                if self.stage == Stage::Discover {
                    self.history.push(plan.channel());
                }
                match plan {
                    SeekSlotPlan::Transmit { channel } => {
                        Action::Broadcast { channel, message: self.outgoing.clone() }
                    }
                    SeekSlotPlan::HoldFire { .. } => Action::Sleep,
                    SeekSlotPlan::Listen { channel } => Action::Listen { channel },
                }
            }
        }
    }

    /// Guaranteed lower bound on this slot's draws: the seek core's bound
    /// in the seek-driven stages; in dissemination, one back-off coin when
    /// this node is the informed endpoint of the step's bound edge (the
    /// role and edge are frozen at the step boundary, so the count is
    /// exact there); nothing otherwise.
    fn min_draws(&self) -> usize {
        match self.stage {
            Stage::Done => 0,
            Stage::Disseminate => (self.step_edge.is_some() && self.step_informed) as usize,
            _ => self.seek.as_ref().map_or(0, SeekCore::min_draws),
        }
    }

    /// The feedback body, generic over the random source so the scalar and
    /// batched delivery paths share one implementation. Draws randomness
    /// only on the data-dependent seek-completion transition
    /// (`advance_after_seek` → Luby proposals), so the batched reserve is 0
    /// and those draws fall through the buffered façade.
    fn feedback_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>, fb: Feedback<'_, GcastMsg>) {
        match self.stage {
            Stage::Done => {}
            Stage::Disseminate => self.dissem_feedback(ctx, fb),
            _ => {
                match fb {
                    Feedback::Heard(msg) => {
                        // Single clone on actual delivery; the engine itself
                        // never clones payloads.
                        self.process_message(ctx.slot.0, msg.clone());
                        self.seek.as_mut().expect("seek active").record_heard(true);
                    }
                    Feedback::Silence => {
                        self.seek.as_mut().expect("seek active").record_heard(false);
                    }
                    Feedback::Sent | Feedback::Slept => {}
                }
                let seek = self.seek.as_mut().expect("seek active");
                seek.finish_slot();
                if seek.is_done() {
                    self.advance_after_seek(ctx.rng);
                }
            }
        }
    }
}

impl Protocol for CGCast {
    type Message = GcastMsg;
    type Output = GcastOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<GcastMsg> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<GcastMsg>>) {
        act_batch_buffered(batch, ctx, out, |p| p.min_draws(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, GcastMsg>) {
        self.feedback_any(ctx, fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, GcastMsg>) {
        // Reserve 0: feedback draws only on the seek-done transition, a
        // data-dependent count that falls through the buffered façade.
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, sctx, f| p.feedback_any(sctx, f));
    }

    fn is_complete(&self) -> bool {
        self.stage == Stage::Done
    }

    fn into_output(self) -> GcastOutput {
        let simulated = self.virtuals.len();
        let colored_simulated = self.virtuals.iter().filter(|v| v.luby.decided().is_some()).count();
        // Local validity: all known incident edge colors pairwise distinct.
        let mut colors: Vec<u32> = self.edge_colors.values().copied().collect();
        let before = colors.len();
        colors.sort_unstable();
        colors.dedup();
        GcastOutput {
            id: self.id,
            payload: self.payload,
            informed_at: self.informed_at,
            discovered: self.heard_first.keys().copied().collect(),
            dedicated_count: self.dedicated.len(),
            known_colors: before,
            simulated_edges: simulated,
            colored_simulated,
            colors_locally_valid: colors.len() == before,
        }
    }
}

// Seek roles are not used directly here but re-exported tests reference
// them; keep the import used.
#[allow(unused)]
fn _role_witness(r: Role) -> Role {
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{GcastParams, ModelInfo};
    use crn_sim::channels::{shuffle_local_labels, ChannelModel};
    use crn_sim::rng::stream_rng;
    use crn_sim::topology::Topology;
    use crn_sim::{Engine, Network};

    fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
        let mut rng = stream_rng(seed, 999);
        let n = topo.num_nodes();
        let mut sets = model.assign(n, &mut rng);
        shuffle_local_labels(&mut sets, &mut rng);
        let mut b = Network::builder(n);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        b.build().unwrap()
    }

    fn run_gcast(net: &Network, seed: u64) -> Vec<GcastOutput> {
        let m = ModelInfo::from_stats(&net.stats());
        let d = net.stats().diameter.expect("connected network");
        let params = GcastParams { dissemination_phases: d.max(1), ..Default::default() };
        let sched = params.schedule(&m);
        let mut eng = Engine::new(net, seed, |ctx| {
            CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(0xfeed))
        });
        let outcome = eng.run_to_completion(sched.total_slots() + 8);
        assert!(outcome.all_protocols_done, "CGCAST schedule must complete");
        assert_eq!(
            outcome.slots_run,
            sched.total_slots(),
            "schedule length accounting must be exact"
        );
        eng.into_outputs()
    }

    #[test]
    fn two_nodes_broadcast() {
        let net =
            build_net(&Topology::Path { n: 2 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 1);
        let outs = run_gcast(&net, 5);
        assert!(outs.iter().all(|o| o.payload == Some(0xfeed)), "{outs:?}");
        assert_eq!(outs[0].informed_at, Some(0));
    }

    #[test]
    fn path_broadcast_reaches_all() {
        let net =
            build_net(&Topology::Path { n: 5 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 2);
        let outs = run_gcast(&net, 7);
        for o in &outs {
            assert_eq!(o.payload, Some(0xfeed), "node {} uninformed", o.id);
            assert!(o.colors_locally_valid, "node {} sees duplicate edge colors", o.id);
        }
    }

    #[test]
    fn star_broadcast_reaches_all() {
        let net = build_net(&Topology::Star { leaves: 6 }, &ChannelModel::Identical { c: 3 }, 3);
        let outs = run_gcast(&net, 11);
        for o in &outs {
            assert_eq!(o.payload, Some(0xfeed), "node {} uninformed", o.id);
        }
        // The hub must have dedicated channels and colors for all leaves.
        assert_eq!(outs[0].dedicated_count, 6);
        assert_eq!(outs[0].known_colors, 6);
    }

    #[test]
    fn cycle_broadcast_with_group_overlay() {
        let net = build_net(
            &Topology::Cycle { n: 6 },
            &ChannelModel::GroupOverlay { c: 5, k: 2, kmax: 3, groups: 2 },
            4,
        );
        let outs = run_gcast(&net, 13);
        for o in &outs {
            assert_eq!(o.payload, Some(0xfeed), "node {} uninformed", o.id);
        }
    }

    #[test]
    fn informed_at_is_monotone_in_hop_distance_on_path() {
        let net =
            build_net(&Topology::Path { n: 4 }, &ChannelModel::SharedCore { c: 2, core: 2 }, 5);
        let outs = run_gcast(&net, 17);
        let t1 = outs[1].informed_at.expect("node 1 informed");
        let t3 = outs[3].informed_at.expect("node 3 informed");
        assert!(t1 <= t3, "closer node informed no later: t1={t1} t3={t3}");
    }

    #[test]
    fn edge_coloring_is_globally_consistent() {
        // Both endpoints of each edge must agree on its color, and the
        // coloring must be proper.
        let net = build_net(
            &Topology::Grid { rows: 2, cols: 3 },
            &ChannelModel::SharedCore { c: 3, core: 2 },
            6,
        );
        let m = ModelInfo::from_stats(&net.stats());
        let d = net.stats().diameter.unwrap();
        let sched = GcastParams { dissemination_phases: d, ..Default::default() }.schedule(&m);
        let mut eng = Engine::new(&net, 19, |ctx| {
            CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(9))
        });
        eng.run_to_completion(sched.total_slots());
        // Collect per-node color maps.
        let mut maps: Vec<BTreeMap<NodeId, u32>> = Vec::new();
        eng.for_each_protocol(|_, p| maps.push(p.known_colors().clone()));
        let mut seen_edges = Vec::new();
        for (v, map) in maps.iter().enumerate() {
            for (&w, &c) in map {
                let back = maps[w.index()].get(&NodeId(v as u32));
                assert_eq!(back, Some(&c), "endpoints disagree on edge ({v},{w}) color");
                seen_edges.push((Edge::new(NodeId(v as u32), w), c));
            }
        }
        // Proper edge coloring among known edges.
        seen_edges.sort_unstable();
        seen_edges.dedup();
        let edges: Vec<Edge> = seen_edges.iter().map(|&(e, _)| e).collect();
        let colors: Vec<Option<u32>> = seen_edges.iter().map(|&(_, c)| Some(c)).collect();
        assert!(crate::coloring::is_proper_edge_coloring(&edges, &colors));
        // All 7 grid edges should have been colored.
        assert_eq!(edges.len(), net.stats().edges);
    }
}
