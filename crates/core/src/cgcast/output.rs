//! Final per-node result of a CGCAST run.

use crn_sim::NodeId;

/// What one node knows when CGCAST's schedule ends. Beyond the payload
/// itself, the output exposes the intermediate artifacts (discovery,
/// dedicated channels, coloring) so experiments can attribute failures to
/// the right stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcastOutput {
    /// This node.
    pub id: NodeId,
    /// The broadcast payload, if it arrived.
    pub payload: Option<u64>,
    /// Global slot at which the payload arrived (0 at the source).
    pub informed_at: Option<u64>,
    /// Neighbors discovered during stage 1.
    pub discovered: Vec<NodeId>,
    /// Incident edges with an agreed dedicated channel.
    pub dedicated_count: usize,
    /// Incident edges whose color this node knows.
    pub known_colors: usize,
    /// Virtual line-graph nodes this node simulated.
    pub simulated_edges: usize,
    /// Of those, how many decided a color within the coloring phases.
    pub colored_simulated: usize,
    /// `true` if the known incident edge colors are pairwise distinct (the
    /// local view of a proper edge coloring).
    pub colors_locally_valid: bool,
}

impl GcastOutput {
    /// `true` if this node received the payload.
    pub fn is_informed(&self) -> bool {
        self.payload.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informed_accessor() {
        let out = GcastOutput {
            id: NodeId(3),
            payload: Some(1),
            informed_at: Some(10),
            discovered: vec![],
            dedicated_count: 0,
            known_colors: 0,
            simulated_edges: 0,
            colored_simulated: 0,
            colors_locally_valid: true,
        };
        assert!(out.is_informed());
        assert!(!GcastOutput { payload: None, ..out }.is_informed());
    }
}
