//! The over-the-air message type of CGCAST.

use crn_sim::{Edge, NodeId};

/// Messages exchanged by CGCAST. Each stage of the protocol uses exactly
/// one variant; since all nodes move through stages in lockstep, a receiver
/// can always interpret what it hears.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcastMsg {
    /// Discover stage: the sender's identity.
    Id(NodeId),
    /// Meta stage: the sender's identity plus its first-heard slot table
    /// from the Discover run (used for dedicated-channel agreement).
    Meta {
        /// Sender identity.
        from: NodeId,
        /// `(neighbor, slot)` pairs: when the sender first heard each
        /// neighbor during Discover.
        first_heard: Vec<(NodeId, u64)>,
    },
    /// Coloring step 1: color proposals of virtual line-graph nodes
    /// (own and relayed).
    Proposals {
        /// `(edge, proposed color)` pairs.
        entries: Vec<(Edge, u32)>,
    },
    /// Coloring step 2: decided colors (own and relayed).
    Decisions {
        /// `(edge, decided color)` pairs.
        entries: Vec<(Edge, u32)>,
    },
    /// Inform stage: final edge colors from each edge's simulator to the
    /// other endpoint.
    EdgeColors {
        /// `(edge, final color)` pairs.
        entries: Vec<(Edge, u32)>,
    },
    /// Dissemination stage: the broadcast payload.
    Data(u64),
}

impl GcastMsg {
    /// Approximate size of this message in "payload words", used by traffic
    /// accounting. (The model itself does not bound message size; the paper
    /// sends `O(Δ)`-entry tables during coloring.)
    pub fn size_words(&self) -> usize {
        match self {
            GcastMsg::Id(_) | GcastMsg::Data(_) => 1,
            GcastMsg::Meta { first_heard, .. } => 1 + 2 * first_heard.len(),
            GcastMsg::Proposals { entries }
            | GcastMsg::Decisions { entries }
            | GcastMsg::EdgeColors { entries } => 3 * entries.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_accounting() {
        assert_eq!(GcastMsg::Id(NodeId(1)).size_words(), 1);
        assert_eq!(GcastMsg::Data(7).size_words(), 1);
        let m =
            GcastMsg::Meta { from: NodeId(0), first_heard: vec![(NodeId(1), 5), (NodeId(2), 9)] };
        assert_eq!(m.size_words(), 5);
        let p = GcastMsg::Proposals { entries: vec![(Edge::new(NodeId(0), NodeId(1)), 3)] };
        assert_eq!(p.size_words(), 3);
    }
}
