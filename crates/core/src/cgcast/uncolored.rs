//! The no-coloring ablation of CGCAST: identical discovery and
//! dedicated-channel stages, but dissemination meets neighbors by *random*
//! edge choice instead of the deterministic color schedule.
//!
//! With coloring, each edge owns a dedicated step per phase, so a meeting
//! is guaranteed and only back-off contention remains. Without it, two
//! endpoints meet in a step only if both happen to pick the same edge —
//! probability `1/(deg(u)·deg(v))` — so high-degree regions stall. A3b
//! measures the gap.

use super::message::GcastMsg;
use super::output::GcastOutput;
use crate::params::GcastSchedule;
use crate::seek::{SeekCore, SeekSlotPlan};
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Feedback, FeedbackBatch,
    LocalChannel, NodeId, Protocol, SlotCtx,
};
use rand::{Rng, RngCore};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Discover,
    Meta,
    Disseminate,
    Done,
}

/// CGCAST with the coloring stage ablated (random-meeting dissemination).
///
/// Runs the same total number of dissemination steps as CGCAST would
/// (phases × 2Δ) so the two protocols get equal slot budgets after setup;
/// only the *coordination* differs.
#[derive(Debug, Clone)]
pub struct UncoloredGcast {
    id: NodeId,
    sched: GcastSchedule,
    stage: Stage,
    seek: Option<SeekCore>,
    outgoing: GcastMsg,
    heard_first: BTreeMap<NodeId, u64>,
    history: Vec<LocalChannel>,
    peer_meta: BTreeMap<NodeId, Vec<(NodeId, u64)>>,
    dedicated: BTreeMap<NodeId, LocalChannel>,
    payload: Option<u64>,
    informed_at: Option<u64>,
    // Dissemination position.
    step: u64,
    round: u64,
    slot: u32,
    step_edge: Option<NodeId>,
    step_informed: bool,
}

impl UncoloredGcast {
    /// Creates a participant; `payload` is `Some` only at the source.
    pub fn new(id: NodeId, sched: GcastSchedule, payload: Option<u64>) -> UncoloredGcast {
        UncoloredGcast {
            id,
            sched,
            stage: Stage::Discover,
            seek: Some(SeekCore::new(sched.seek)),
            outgoing: GcastMsg::Id(id),
            heard_first: BTreeMap::new(),
            history: Vec::with_capacity(sched.seek.total_slots() as usize),
            peer_meta: BTreeMap::new(),
            dedicated: BTreeMap::new(),
            informed_at: payload.map(|_| 0),
            payload,
            step: 0,
            round: 0,
            slot: 0,
            step_edge: None,
            step_informed: false,
        }
    }

    /// `true` once this node holds the payload.
    pub fn is_informed(&self) -> bool {
        self.payload.is_some()
    }

    /// Total dissemination steps (equal to CGCAST's phases × palette).
    fn total_steps(&self) -> u64 {
        self.sched.dissem_phases * self.sched.palette as u64
    }

    fn compute_dedicated(&mut self) {
        for (&v, list) in &self.peer_meta {
            let t_uv = self.heard_first.get(&v).copied();
            let t_vu = list.iter().find(|(w, _)| *w == self.id).map(|&(_, t)| t);
            let t_star = match (t_uv, t_vu) {
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => continue,
            } as usize;
            self.dedicated.insert(v, self.history[t_star]);
        }
    }

    fn init_step<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) {
        self.step_edge = if self.dedicated.is_empty() {
            None
        } else {
            let idx = ctx.rng.gen_range(0..self.dedicated.len());
            self.dedicated.keys().nth(idx).copied()
        };
        self.step_informed = self.payload.is_some();
    }

    /// Exact draw count for a dissemination slot (edge choice at a step
    /// boundary, back-off coin for an informed bound node); the seek
    /// core's guaranteed bound elsewhere.
    fn min_draws(&self) -> usize {
        match self.stage {
            Stage::Done => 0,
            Stage::Disseminate => {
                if self.round == 0 && self.slot == 0 && self.step_edge.is_none() {
                    // Step boundary: the random edge choice happens iff any
                    // dedicated edge exists, and then this node is bound to
                    // an edge, so the informed back-off coin follows.
                    if self.dedicated.is_empty() {
                        0
                    } else {
                        1 + self.payload.is_some() as usize
                    }
                } else {
                    (self.step_edge.is_some() && self.step_informed) as usize
                }
            }
            _ => self.seek.as_ref().map_or(0, SeekCore::min_draws),
        }
    }

    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<GcastMsg> {
        match self.stage {
            Stage::Done => Action::Sleep,
            Stage::Disseminate => {
                if self.round == 0 && self.slot == 0 && self.step_edge.is_none() {
                    self.init_step(ctx);
                }
                let Some(peer) = self.step_edge else { return Action::Sleep };
                let channel = self.dedicated[&peer];
                if self.step_informed {
                    let l = self.sched.dissem_slots_per_round;
                    let exp = (l - self.slot).min(62);
                    if ctx.rng.gen_bool(1.0 / (1u64 << exp) as f64) {
                        Action::Broadcast {
                            channel,
                            message: GcastMsg::Data(self.payload.expect("informed role")),
                        }
                    } else {
                        Action::Sleep
                    }
                } else {
                    Action::Listen { channel }
                }
            }
            _ => {
                let seek = self.seek.as_mut().expect("seek active");
                let plan = seek.plan_slot(ctx.rng).expect("schedule not exhausted");
                if self.stage == Stage::Discover {
                    self.history.push(plan.channel());
                }
                match plan {
                    SeekSlotPlan::Transmit { channel } => {
                        Action::Broadcast { channel, message: self.outgoing.clone() }
                    }
                    SeekSlotPlan::HoldFire { .. } => Action::Sleep,
                    SeekSlotPlan::Listen { channel } => Action::Listen { channel },
                }
            }
        }
    }

    /// The feedback body, generic over the random source so the scalar and
    /// batched delivery paths share one implementation (it draws nothing —
    /// stage transitions here are deterministic).
    fn feedback_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>, fb: Feedback<'_, GcastMsg>) {
        match self.stage {
            Stage::Done => {}
            Stage::Disseminate => {
                if let Feedback::Heard(GcastMsg::Data(x)) = fb {
                    if self.payload.is_none() {
                        self.payload = Some(*x);
                        self.informed_at = Some(ctx.slot.0);
                    }
                }
                self.slot += 1;
                if self.slot == self.sched.dissem_slots_per_round {
                    self.slot = 0;
                    self.round += 1;
                    if self.round == self.sched.dissem_rounds {
                        self.round = 0;
                        self.step += 1;
                        self.step_edge = None;
                        if self.step == self.total_steps() {
                            self.stage = Stage::Done;
                        }
                    }
                }
            }
            _ => {
                match fb {
                    Feedback::Heard(msg) => {
                        match (self.stage, msg) {
                            (Stage::Discover, GcastMsg::Id(v)) => {
                                self.heard_first.entry(*v).or_insert(ctx.slot.0);
                            }
                            (Stage::Meta, GcastMsg::Meta { from, first_heard }) => {
                                // Single clone on actual delivery; the
                                // engine itself never clones payloads.
                                self.peer_meta.entry(*from).or_insert_with(|| first_heard.clone());
                            }
                            _ => {}
                        }
                        self.seek.as_mut().expect("seek").record_heard(true);
                    }
                    Feedback::Silence => {
                        self.seek.as_mut().expect("seek").record_heard(false);
                    }
                    Feedback::Sent | Feedback::Slept => {}
                }
                let seek = self.seek.as_mut().expect("seek");
                seek.finish_slot();
                if seek.is_done() {
                    match self.stage {
                        Stage::Discover => {
                            self.outgoing = GcastMsg::Meta {
                                from: self.id,
                                first_heard: self
                                    .heard_first
                                    .iter()
                                    .map(|(&v, &t)| (v, t))
                                    .collect(),
                            };
                            self.stage = Stage::Meta;
                            self.seek = Some(SeekCore::new(self.sched.seek));
                        }
                        Stage::Meta => {
                            self.compute_dedicated();
                            self.seek = None;
                            self.stage = Stage::Disseminate;
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

impl Protocol for UncoloredGcast {
    type Message = GcastMsg;
    type Output = GcastOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<GcastMsg> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<GcastMsg>>) {
        act_batch_buffered(batch, ctx, out, |p| p.min_draws(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, GcastMsg>) {
        self.feedback_any(ctx, fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, GcastMsg>) {
        // Reserve 0 exactly: the feedback body never draws.
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, sctx, f| p.feedback_any(sctx, f));
    }

    fn is_complete(&self) -> bool {
        self.stage == Stage::Done
    }

    fn into_output(self) -> GcastOutput {
        GcastOutput {
            id: self.id,
            payload: self.payload,
            informed_at: self.informed_at,
            discovered: self.heard_first.keys().copied().collect(),
            dedicated_count: self.dedicated.len(),
            known_colors: 0,
            simulated_edges: 0,
            colored_simulated: 0,
            colors_locally_valid: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{GcastParams, ModelInfo};
    use crn_sim::channels::ChannelModel;
    use crn_sim::rng::stream_rng;
    use crn_sim::topology::Topology;
    use crn_sim::{Engine, Network};

    fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
        let mut rng = stream_rng(seed, 999);
        let n = topo.num_nodes();
        let sets = model.assign(n, &mut rng);
        let mut b = Network::builder(n);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        b.build().unwrap()
    }

    #[test]
    fn uncolored_still_delivers_on_easy_paths() {
        // Degree <= 2: random meetings succeed often enough.
        let net =
            build_net(&Topology::Path { n: 4 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 1);
        let m = ModelInfo::from_stats(&net.stats());
        let d = net.stats().diameter.unwrap();
        let sched = GcastParams { dissemination_phases: 2 * d, ..Default::default() }.schedule(&m);
        let mut eng = Engine::new(&net, 3, |ctx| {
            UncoloredGcast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(9))
        });
        let outcome = eng.run_to_completion(u64::MAX);
        assert!(outcome.all_protocols_done);
        let outs = eng.into_outputs();
        assert!(
            outs.iter().filter(|o| o.is_informed()).count() >= 3,
            "random meetings should cover most of a short path: {outs:?}"
        );
    }

    #[test]
    fn uncolored_schedule_is_shorter_than_colored() {
        // Same GcastSchedule: the uncolored variant skips coloring+inform,
        // so its wall-clock schedule is strictly shorter.
        let net = build_net(&Topology::Path { n: 3 }, &ChannelModel::Identical { c: 2 }, 2);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = GcastParams { dissemination_phases: 2, ..Default::default() }.schedule(&m);
        let mut eng = Engine::new(&net, 3, |ctx| {
            UncoloredGcast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(9))
        });
        let outcome = eng.run_to_completion(u64::MAX);
        let expected = 2 * sched.seek_slots()
            + sched.dissem_phases * sched.palette as u64 * sched.dissem_step_slots();
        assert_eq!(outcome.slots_run, expected);
        assert!(expected < sched.total_slots());
    }
}
