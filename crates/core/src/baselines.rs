//! Baseline algorithms the paper compares against.
//!
//! * [`NaiveDiscovery`] — the "simple and straightforward strategy" of §1:
//!   hop uniformly at random, flip a coin to broadcast or listen, resolve
//!   contention with a back-off sweep. Time `Õ((c²/k)·Δ)`.
//! * [`FixedRateDiscovery`] — a bound-matching stand-in for the algorithm of
//!   Zeng et al. \[25\], which the paper credits with `Õ(c²/k + c·Δ/k)`:
//!   uniform hopping with per-slot transmission probability
//!   `min(1/2, c/(2Δ))`, the rate that balances meeting probability against
//!   contention and provably attains the quoted bound's shape. (The exact
//!   algorithm of \[25\] targets a slightly different model; DESIGN.md
//!   documents this substitution.)
//! * [`NaiveBroadcast`] — the naive global broadcast of §1: informed nodes
//!   hop and transmit, uninformed nodes hop and listen. Time `Õ((c²/k)·D)`.

use crate::discovery::{DiscoveryOutput, DiscoveryProtocol};
use crate::params::ModelInfo;
use crn_sim::{
    act_batch_buffered, feedback_batch_buffered, Action, BatchCtx, Feedback, FeedbackBatch,
    LocalChannel, NodeId, Protocol, SlotCtx,
};
use rand::{Rng, RngCore};
use std::collections::BTreeMap;

/// Schedule for [`NaiveDiscovery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveDiscoverySchedule {
    /// Channels per node.
    pub c: u16,
    /// Number of steps (each `slots_per_step` slots).
    pub steps: u64,
    /// Back-off sweep length per step (`lg Δ`).
    pub slots_per_step: u32,
}

impl NaiveDiscoverySchedule {
    /// Builds the naive schedule: `⌈factor · (c²/k) · Δ · lg n⌉` steps of
    /// `lg Δ` slots — the `Õ((c²/k)·Δ)` bound of §1.
    pub fn new(m: &ModelInfo, factor: f64) -> Self {
        m.validate();
        let c = m.c as f64;
        let steps = (factor * c * c / m.k as f64 * m.delta as f64 * m.lg_n()).ceil() as u64;
        NaiveDiscoverySchedule { c: m.c as u16, steps: steps.max(1), slots_per_step: m.lg_delta() }
    }

    /// Total slots.
    pub fn total_slots(&self) -> u64 {
        self.steps * self.slots_per_step as u64
    }
}

/// Naive random-hopping discovery with back-off (§1's strawman).
#[derive(Debug, Clone)]
pub struct NaiveDiscovery {
    id: NodeId,
    sched: NaiveDiscoverySchedule,
    step: u64,
    slot_in_step: u32,
    broadcaster: bool,
    channel: LocalChannel,
    heard: BTreeMap<NodeId, u64>,
    step_initialized: bool,
}

impl NaiveDiscovery {
    /// Creates a naive-discovery instance for node `id`.
    pub fn new(id: NodeId, sched: NaiveDiscoverySchedule) -> Self {
        NaiveDiscovery {
            id,
            sched,
            step: 0,
            slot_in_step: 0,
            broadcaster: false,
            channel: LocalChannel(0),
            heard: BTreeMap::new(),
            step_initialized: false,
        }
    }
}

impl NaiveDiscovery {
    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<NodeId> {
        if self.step >= self.sched.steps {
            return Action::Sleep;
        }
        if !self.step_initialized {
            self.step_initialized = true;
            self.broadcaster = ctx.rng.gen_bool(0.5);
            self.channel = LocalChannel(ctx.rng.gen_range(0..self.sched.c));
            self.slot_in_step = 0;
        }
        if self.broadcaster {
            let l = self.sched.slots_per_step;
            let exp = (l - self.slot_in_step).min(62);
            if ctx.rng.gen_bool(1.0 / (1u64 << exp) as f64) {
                Action::Broadcast { channel: self.channel, message: self.id }
            } else {
                Action::Sleep
            }
        } else {
            Action::Listen { channel: self.channel }
        }
    }

    /// Guaranteed lower bound on this slot's draws: role coin + channel on
    /// a step-init slot (a freshly-drawn broadcaster draws one more), one
    /// transmission coin for a known broadcaster, none otherwise.
    fn min_draws(&self) -> usize {
        if self.step >= self.sched.steps {
            0
        } else if !self.step_initialized {
            2
        } else {
            self.broadcaster as usize
        }
    }

    /// The feedback body, generic over the random source so the scalar and
    /// batched delivery paths share one implementation (it draws nothing).
    fn feedback_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>, fb: Feedback<'_, NodeId>) {
        if self.step >= self.sched.steps {
            return;
        }
        if let Feedback::Heard(id) = fb {
            self.heard.entry(*id).or_insert(ctx.slot.0);
        }
        self.slot_in_step += 1;
        if self.slot_in_step == self.sched.slots_per_step {
            self.step += 1;
            self.step_initialized = false;
        }
    }
}

impl Protocol for NaiveDiscovery {
    type Message = NodeId;
    type Output = DiscoveryOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<NodeId> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<NodeId>>) {
        act_batch_buffered(batch, ctx, out, |p| p.min_draws(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, NodeId>) {
        self.feedback_any(ctx, fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, NodeId>) {
        // Reserve 0 exactly: the feedback body never draws.
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, sctx, f| p.feedback_any(sctx, f));
    }

    fn is_complete(&self) -> bool {
        self.step >= self.sched.steps
    }

    fn into_output(self) -> DiscoveryOutput {
        DiscoveryOutput {
            id: self.id,
            neighbors: self.heard.keys().copied().collect(),
            first_heard: self.heard.iter().map(|(&v, &t)| (v, t)).collect(),
            counts: Vec::new(),
            history: None,
        }
    }
}

impl DiscoveryProtocol for NaiveDiscovery {
    fn discovered_count(&self) -> usize {
        self.heard.len()
    }
    fn has_discovered(&self, v: NodeId) -> bool {
        self.heard.contains_key(&v)
    }
}

/// Schedule for [`FixedRateDiscovery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedRateSchedule {
    /// Channels per node.
    pub c: u16,
    /// Total slots.
    pub slots: u64,
    /// Per-slot transmission probability when in broadcaster role.
    pub tx_probability: f64,
}

impl FixedRateSchedule {
    /// Builds the fixed-rate schedule: `⌈factor·(c²/k + cΔ/k)·lg n⌉` slots
    /// with transmission probability `min(1, c/Δ)` (halved by the role
    /// coin) — the Zeng-et-al.-class bound of §2.
    pub fn new(m: &ModelInfo, factor: f64) -> Self {
        m.validate();
        let c = m.c as f64;
        let k = m.k as f64;
        let d = m.delta as f64;
        let slots = (factor * (c * c / k + c * d / k) * m.lg_n()).ceil() as u64;
        FixedRateSchedule { c: m.c as u16, slots: slots.max(1), tx_probability: (c / d).min(1.0) }
    }

    /// Total slots.
    pub fn total_slots(&self) -> u64 {
        self.slots
    }
}

/// Fixed-rate uniform-hopping discovery (`Õ(c²/k + cΔ/k)`-class baseline).
#[derive(Debug, Clone)]
pub struct FixedRateDiscovery {
    id: NodeId,
    sched: FixedRateSchedule,
    slot: u64,
    heard: BTreeMap<NodeId, u64>,
}

impl FixedRateDiscovery {
    /// Creates a fixed-rate discovery instance for node `id`.
    pub fn new(id: NodeId, sched: FixedRateSchedule) -> Self {
        FixedRateDiscovery { id, sched, slot: 0, heard: BTreeMap::new() }
    }
}

impl FixedRateDiscovery {
    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<NodeId> {
        if self.slot >= self.sched.slots {
            return Action::Sleep;
        }
        let channel = LocalChannel(ctx.rng.gen_range(0..self.sched.c));
        if ctx.rng.gen_bool(0.5) {
            if ctx.rng.gen_bool(self.sched.tx_probability) {
                Action::Broadcast { channel, message: self.id }
            } else {
                Action::Sleep
            }
        } else {
            Action::Listen { channel }
        }
    }

    /// Guaranteed draws per live slot: channel choice + role coin (the
    /// transmission coin is data-dependent on the role and falls through).
    fn min_draws(&self) -> usize {
        if self.slot >= self.sched.slots {
            0
        } else {
            2
        }
    }

    /// The feedback body, generic over the random source so the scalar and
    /// batched delivery paths share one implementation (it draws nothing).
    fn feedback_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>, fb: Feedback<'_, NodeId>) {
        if let Feedback::Heard(id) = fb {
            self.heard.entry(*id).or_insert(ctx.slot.0);
        }
        self.slot += 1;
    }
}

impl Protocol for FixedRateDiscovery {
    type Message = NodeId;
    type Output = DiscoveryOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<NodeId> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<NodeId>>) {
        act_batch_buffered(batch, ctx, out, |p| p.min_draws(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, NodeId>) {
        self.feedback_any(ctx, fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, NodeId>) {
        // Reserve 0 exactly: the feedback body never draws.
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, sctx, f| p.feedback_any(sctx, f));
    }

    fn is_complete(&self) -> bool {
        self.slot >= self.sched.slots
    }

    fn into_output(self) -> DiscoveryOutput {
        DiscoveryOutput {
            id: self.id,
            neighbors: self.heard.keys().copied().collect(),
            first_heard: self.heard.iter().map(|(&v, &t)| (v, t)).collect(),
            counts: Vec::new(),
            history: None,
        }
    }
}

impl DiscoveryProtocol for FixedRateDiscovery {
    fn discovered_count(&self) -> usize {
        self.heard.len()
    }
    fn has_discovered(&self, v: NodeId) -> bool {
        self.heard.contains_key(&v)
    }
}

/// Output of a global-broadcast protocol at one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastOutput {
    /// The node.
    pub id: NodeId,
    /// The payload, if it arrived.
    pub payload: Option<u64>,
    /// Slot at which the payload arrived (0 for the source).
    pub informed_at: Option<u64>,
}

/// Naive global broadcast (§1's strawman): every slot every node hops to a
/// uniformly random channel; informed nodes transmit the payload with
/// probability 1/2, uninformed nodes listen.
#[derive(Debug, Clone)]
pub struct NaiveBroadcast {
    id: NodeId,
    c: u16,
    slots: u64,
    slot: u64,
    payload: Option<u64>,
    informed_at: Option<u64>,
}

impl NaiveBroadcast {
    /// Creates a participant; `payload` is `Some` only at the source.
    pub fn new(id: NodeId, c: u16, slots: u64, payload: Option<u64>) -> Self {
        NaiveBroadcast { id, c, slots, slot: 0, informed_at: payload.map(|_| 0), payload }
    }

    /// Schedule length for model `m`: `⌈factor·(c²/k)·D·lg n⌉` slots.
    pub fn schedule_slots(m: &ModelInfo, diameter: u64, factor: f64) -> u64 {
        m.validate();
        let c = m.c as f64;
        ((factor * c * c / m.k as f64 * diameter.max(1) as f64 * m.lg_n()).ceil() as u64).max(1)
    }

    /// Whether this node holds the payload.
    pub fn is_informed(&self) -> bool {
        self.payload.is_some()
    }

    /// The act body, generic over the random source so the scalar and
    /// batched paths share one implementation.
    fn act_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>) -> Action<u64> {
        if self.slot >= self.slots {
            return Action::Sleep;
        }
        let channel = LocalChannel(ctx.rng.gen_range(0..self.c));
        match self.payload {
            Some(data) => {
                if ctx.rng.gen_bool(0.5) {
                    Action::Broadcast { channel, message: data }
                } else {
                    Action::Sleep
                }
            }
            None => Action::Listen { channel },
        }
    }

    /// NaiveBroadcast's per-slot draw count is *exact* from state alone:
    /// channel choice plus, when informed, the transmission coin.
    fn draws_this_slot(&self) -> usize {
        if self.slot >= self.slots {
            0
        } else {
            1 + self.payload.is_some() as usize
        }
    }

    /// The feedback body, generic over the random source so the scalar and
    /// batched delivery paths share one implementation (it draws nothing).
    fn feedback_any<R: RngCore>(&mut self, ctx: &mut SlotCtx<'_, R>, fb: Feedback<'_, u64>) {
        if let Feedback::Heard(data) = fb {
            if self.payload.is_none() {
                self.payload = Some(*data);
                self.informed_at = Some(ctx.slot.0 + 1);
            }
        }
        self.slot += 1;
    }
}

impl Protocol for NaiveBroadcast {
    type Message = u64;
    type Output = BroadcastOutput;

    fn act(&mut self, ctx: &mut SlotCtx<'_>) -> Action<u64> {
        self.act_any(ctx)
    }

    fn act_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, out: &mut Vec<Action<u64>>) {
        act_batch_buffered(batch, ctx, out, |p| p.draws_this_slot(), |p, sctx| p.act_any(sctx));
    }

    fn feedback(&mut self, ctx: &mut SlotCtx<'_>, fb: Feedback<'_, u64>) {
        self.feedback_any(ctx, fb);
    }

    fn feedback_batch(batch: &mut [Self], ctx: &mut BatchCtx<'_>, fb: FeedbackBatch<'_, u64>) {
        // Reserve 0 exactly: the feedback body never draws.
        feedback_batch_buffered(batch, ctx, fb, |_| 0, |p, sctx, f| p.feedback_any(sctx, f));
    }

    fn is_complete(&self) -> bool {
        self.slot >= self.slots
    }

    fn into_output(self) -> BroadcastOutput {
        BroadcastOutput { id: self.id, payload: self.payload, informed_at: self.informed_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{outputs_complete, outputs_sound};
    use crn_sim::channels::ChannelModel;
    use crn_sim::rng::stream_rng;
    use crn_sim::topology::Topology;
    use crn_sim::{Engine, Network};

    fn build_net(topo: &Topology, model: &ChannelModel, seed: u64) -> Network {
        let mut rng = stream_rng(seed, 999);
        let n = topo.num_nodes();
        let sets = model.assign(n, &mut rng);
        let mut b = Network::builder(n);
        for (v, set) in sets.into_iter().enumerate() {
            b.set_channels(NodeId(v as u32), set);
        }
        b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
        b.build().unwrap()
    }

    #[test]
    fn naive_discovery_completes_on_small_net() {
        let net =
            build_net(&Topology::Path { n: 5 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 1);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = NaiveDiscoverySchedule::new(&m, 8.0);
        let mut eng = Engine::new(&net, 9, |ctx| NaiveDiscovery::new(ctx.id, sched));
        let out = eng.run_to_completion(sched.total_slots());
        assert!(out.all_protocols_done);
        let outs = eng.into_outputs();
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
    }

    #[test]
    fn fixed_rate_discovery_completes_on_small_net() {
        let net = build_net(&Topology::Star { leaves: 6 }, &ChannelModel::Identical { c: 3 }, 2);
        let m = ModelInfo::from_stats(&net.stats());
        let sched = FixedRateSchedule::new(&m, 6.0);
        let mut eng = Engine::new(&net, 9, |ctx| FixedRateDiscovery::new(ctx.id, sched));
        eng.run_to_completion(sched.total_slots());
        let outs = eng.into_outputs();
        assert!(outputs_sound(&net, &outs));
        assert!(outputs_complete(&net, &outs));
    }

    #[test]
    fn fixed_rate_tx_probability_tracks_c_over_delta() {
        let m = ModelInfo { n: 64, c: 4, delta: 16, k: 2, kmax: 2 };
        let sched = FixedRateSchedule::new(&m, 1.0);
        assert!((sched.tx_probability - 0.25).abs() < 1e-12);
        let m2 = ModelInfo { n: 64, c: 16, delta: 4, k: 2, kmax: 2 };
        assert_eq!(FixedRateSchedule::new(&m2, 1.0).tx_probability, 1.0);
    }

    #[test]
    fn naive_broadcast_reaches_everyone_on_path() {
        let net =
            build_net(&Topology::Path { n: 4 }, &ChannelModel::SharedCore { c: 3, core: 2 }, 3);
        let m = ModelInfo::from_stats(&net.stats());
        let slots = NaiveBroadcast::schedule_slots(&m, 3, 4.0);
        let mut eng = Engine::new(&net, 5, |ctx| {
            NaiveBroadcast::new(ctx.id, m.c as u16, slots, (ctx.id == NodeId(0)).then_some(42))
        });
        eng.run_to_completion(slots);
        let outs = eng.into_outputs();
        for o in &outs {
            assert_eq!(o.payload, Some(42), "node {} missed the payload", o.id);
        }
        // Informed-at times are monotone in hop distance on average; at
        // least the source is first.
        assert_eq!(outs[0].informed_at, Some(0));
        assert!(outs[3].informed_at.unwrap() >= outs[0].informed_at.unwrap());
    }

    #[test]
    fn broadcast_informed_at_is_delivery_slot() {
        let net = build_net(&Topology::Path { n: 2 }, &ChannelModel::Identical { c: 1 }, 4);
        let mut eng = Engine::new(&net, 5, |ctx| {
            NaiveBroadcast::new(ctx.id, 1, 64, (ctx.id == NodeId(0)).then_some(1))
        });
        let mut probe =
            |_s: u64, e: &Engine<'_, NaiveBroadcast>| e.protocol(NodeId(1)).is_informed();
        let out = eng.run(64, Some((1, &mut probe)));
        assert!(out.completed_at.is_some());
        let informed_at = eng.protocol(NodeId(1)).informed_at.unwrap();
        assert_eq!(informed_at, out.completed_at.unwrap());
    }

    #[test]
    fn naive_schedule_scales_with_delta() {
        let m = ModelInfo { n: 64, c: 4, delta: 4, k: 2, kmax: 2 };
        let base = NaiveDiscoverySchedule::new(&m, 1.0);
        let m2 = ModelInfo { delta: 8, ..m };
        let double = NaiveDiscoverySchedule::new(&m2, 1.0);
        assert_eq!(double.steps, base.steps * 2);
    }
}
