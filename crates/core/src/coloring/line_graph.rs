//! Line-graph construction: reduce edge coloring of `G` to node coloring of
//! `G_L` (paper §5.2, Fact 7).
//!
//! Each edge `(u, v)` of `G` becomes a vertex of `G_L`; two vertices of
//! `G_L` are adjacent iff the corresponding edges share an endpoint. A
//! valid node coloring of `G_L` is therefore a valid edge coloring of `G`.
//! In CGCAST the vertex for `(u, v)` is *simulated* by the physical node
//! `min(u, v)`.

use crn_sim::{Edge, NodeId};
use std::collections::HashMap;

/// The line graph `G_L` of a simple graph `G`.
#[derive(Debug, Clone)]
pub struct LineGraph {
    /// The vertices of `G_L` — the edges of `G`, sorted canonically.
    vertices: Vec<Edge>,
    /// Adjacency lists, indices into `vertices`.
    adj: Vec<Vec<u32>>,
    index: HashMap<Edge, u32>,
}

impl LineGraph {
    /// Builds the line graph of the given edge set.
    pub fn of(edges: &[Edge]) -> LineGraph {
        let mut vertices: Vec<Edge> = edges.to_vec();
        vertices.sort_unstable();
        vertices.dedup();
        let index: HashMap<Edge, u32> =
            vertices.iter().enumerate().map(|(i, &e)| (e, i as u32)).collect();

        // Group edge-vertices by endpoint; all edges sharing an endpoint
        // form a clique in G_L.
        let mut by_endpoint: HashMap<NodeId, Vec<u32>> = HashMap::new();
        for (i, e) in vertices.iter().enumerate() {
            by_endpoint.entry(e.lo()).or_default().push(i as u32);
            by_endpoint.entry(e.hi()).or_default().push(i as u32);
        }
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); vertices.len()];
        for group in by_endpoint.values() {
            for (ai, &a) in group.iter().enumerate() {
                for &b in &group[ai + 1..] {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        LineGraph { vertices, adj, index }
    }

    /// Number of vertices of `G_L` (= number of edges of `G`).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` if `G` had no edges.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The edge of `G` corresponding to vertex `i` of `G_L`.
    pub fn edge(&self, i: usize) -> Edge {
        self.vertices[i]
    }

    /// All vertices (edges of `G`) in canonical order.
    pub fn edges(&self) -> &[Edge] {
        &self.vertices
    }

    /// The vertex index of edge `e`, if present.
    pub fn index_of(&self, e: Edge) -> Option<u32> {
        self.index.get(&e).copied()
    }

    /// Adjacency list of vertex `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.adj[i]
    }

    /// Adjacency lists (for generic coloring algorithms).
    pub fn adjacency(&self) -> &[Vec<u32>] {
        &self.adj
    }

    /// Maximum degree of `G_L`. For `G` with maximum degree `Δ` this is at
    /// most `2Δ − 2` (paper, proof of Lemma 8).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// The simulating physical node for vertex `i`: the smaller endpoint
    /// (paper §5.2).
    pub fn simulator(&self, i: usize) -> NodeId {
        self.vertices[i].lo()
    }
}

/// `true` if `colors` is a proper node coloring of the adjacency structure
/// (no two adjacent vertices share a color; uncolored vertices fail).
pub fn is_proper_coloring(adj: &[Vec<u32>], colors: &[Option<u32>]) -> bool {
    if colors.len() != adj.len() {
        return false;
    }
    for (v, list) in adj.iter().enumerate() {
        let Some(cv) = colors[v] else { return false };
        for &w in list {
            if colors[w as usize] == Some(cv) {
                return false;
            }
        }
    }
    true
}

/// `true` if assigning `colors[i]` to edge `edges[i]` is a proper *edge*
/// coloring (edges sharing an endpoint get distinct colors).
pub fn is_proper_edge_coloring(edges: &[Edge], colors: &[Option<u32>]) -> bool {
    let lg = LineGraph::of(edges);
    let mut by_index = vec![None; lg.len()];
    for (e, c) in edges.iter().zip(colors) {
        if let Some(i) = lg.index_of(*e) {
            by_index[i as usize] = *c;
        }
    }
    is_proper_coloring(lg.adjacency(), &by_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn path_line_graph_is_path() {
        // P4: edges (0,1),(1,2),(2,3) -> line graph is a path of 3 vertices.
        let lg = LineGraph::of(&[e(0, 1), e(1, 2), e(2, 3)]);
        assert_eq!(lg.len(), 3);
        assert_eq!(lg.max_degree(), 2);
        let i01 = lg.index_of(e(0, 1)).unwrap() as usize;
        let i12 = lg.index_of(e(1, 2)).unwrap() as usize;
        let i23 = lg.index_of(e(2, 3)).unwrap() as usize;
        assert_eq!(lg.neighbors(i01), &[i12 as u32]);
        assert_eq!(lg.neighbors(i12).len(), 2);
        assert_eq!(lg.neighbors(i23), &[i12 as u32]);
    }

    #[test]
    fn star_line_graph_is_clique() {
        // Star K_{1,4}: all 4 edges share the hub -> K4.
        let edges: Vec<Edge> = (1..=4).map(|l| e(0, l)).collect();
        let lg = LineGraph::of(&edges);
        assert_eq!(lg.len(), 4);
        assert_eq!(lg.max_degree(), 3);
        for i in 0..4 {
            assert_eq!(lg.neighbors(i).len(), 3);
        }
    }

    #[test]
    fn triangle_line_graph_is_triangle() {
        let lg = LineGraph::of(&[e(0, 1), e(1, 2), e(0, 2)]);
        assert_eq!(lg.len(), 3);
        for i in 0..3 {
            assert_eq!(lg.neighbors(i).len(), 2);
        }
    }

    #[test]
    fn line_graph_degree_bound() {
        // For max degree Δ in G, L(G) has max degree <= 2Δ - 2.
        let edges = vec![e(0, 1), e(0, 2), e(0, 3), e(1, 4), e(1, 5)];
        let lg = LineGraph::of(&edges);
        // G max degree = 3 => bound 4; edge (0,1) touches all others.
        assert_eq!(lg.max_degree(), 4);
        let i01 = lg.index_of(e(0, 1)).unwrap() as usize;
        assert_eq!(lg.neighbors(i01).len(), 4);
    }

    #[test]
    fn simulator_is_min_endpoint() {
        let lg = LineGraph::of(&[e(7, 2)]);
        assert_eq!(lg.simulator(0), NodeId(2));
    }

    #[test]
    fn proper_coloring_checks() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        assert!(is_proper_coloring(&adj, &[Some(0), Some(1), Some(0)]));
        assert!(!is_proper_coloring(&adj, &[Some(0), Some(0), Some(1)]));
        assert!(!is_proper_coloring(&adj, &[Some(0), None, Some(1)]), "uncolored fails");
        assert!(!is_proper_coloring(&adj, &[Some(0)]), "length mismatch fails");
    }

    #[test]
    fn proper_edge_coloring_checks() {
        let edges = vec![e(0, 1), e(1, 2), e(2, 3)];
        assert!(is_proper_edge_coloring(&edges, &[Some(0), Some(1), Some(0)]));
        assert!(!is_proper_edge_coloring(&edges, &[Some(0), Some(0), Some(1)]));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let lg = LineGraph::of(&[e(0, 1), e(1, 0)]);
        assert_eq!(lg.len(), 1);
        assert!(lg.neighbors(0).is_empty());
    }
}
