//! Edge coloring via line-graph node coloring (paper §5.2).
//!
//! CGCAST needs a `2Δ` edge coloring of the network graph to build its
//! dissemination schedule. The paper reduces this to node coloring of the
//! line graph ([`line_graph`], Fact 7) and solves that with a Luby-style
//! randomized procedure ([`luby`], Lemma 8). A centralized greedy baseline
//! ([`greedy`]) serves as the ablation comparator.

pub mod greedy;
pub mod line_graph;
pub mod luby;

pub use greedy::{greedy_edge_coloring, palette_size};
pub use line_graph::{is_proper_coloring, is_proper_edge_coloring, LineGraph};
pub use luby::{color_graph, ColoringResult, LubyNodeState};
