//! The randomized node-coloring procedure of paper §5.2, an adaptation of
//! Luby's algorithm \[13\].
//!
//! Each *phase* has two steps. Step 1: every active vertex flips a coin;
//! with probability 1/2 it proposes a uniformly random color from its
//! remaining palette, exchanges proposals with its neighbors, and keeps the
//! color iff no active neighbor proposed the same one (conflicting
//! proposers *both* withdraw). Step 2: vertices that kept a color announce
//! it, become inactive, and their neighbors strike that color from their
//! palettes. Lemma 8: with a `2Δ` palette on the line graph, all vertices
//! decide within `O(lg n)` phases w.h.p.
//!
//! [`LubyNodeState`] holds the per-vertex decision logic. It is shared
//! verbatim between the *pure* graph algorithm here ([`color_graph`], used
//! for tests, the A3 ablation and experiment E7) and the *distributed*
//! in-model execution inside CGCAST — so the two cannot drift apart.

use crn_sim::bitset::BitSet;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

/// Per-vertex state of the coloring procedure.
#[derive(Debug, Clone)]
pub struct LubyNodeState {
    available: BitSet,
    available_count: usize,
    proposal: Option<u32>,
    decided: Option<u32>,
}

impl LubyNodeState {
    /// A fresh active vertex with the full `palette`-color plate.
    pub fn new(palette: u32) -> LubyNodeState {
        assert!(palette >= 1, "palette must be non-empty");
        let mut available = BitSet::new(palette as usize);
        for c in 0..palette as usize {
            available.insert(c);
        }
        LubyNodeState {
            available,
            available_count: palette as usize,
            proposal: None,
            decided: None,
        }
    }

    /// The decided color, once inactive.
    pub fn decided(&self) -> Option<u32> {
        self.decided
    }

    /// `true` while the vertex is still searching for a color.
    pub fn is_active(&self) -> bool {
        self.decided.is_none()
    }

    /// The current (step-1) proposal, if any.
    pub fn proposal(&self) -> Option<u32> {
        self.proposal
    }

    /// Number of palette colors still available.
    pub fn available_count(&self) -> usize {
        self.available_count
    }

    /// Step-1 opening move: with probability 1/2 propose a uniform random
    /// available color. Returns the proposal. No-op (returns `None`) when
    /// already decided.
    ///
    /// # Panics
    /// Panics if an active vertex has run out of colors — impossible with a
    /// `2Δ` palette on a line graph of max degree `2Δ − 2`, so reaching it
    /// indicates a harness bug.
    pub fn propose<R: RngCore>(&mut self, rng: &mut R) -> Option<u32> {
        self.proposal = None;
        if self.decided.is_some() {
            return None;
        }
        assert!(
            self.available_count > 0,
            "active vertex with empty palette: palette too small for this graph"
        );
        if rng.gen_bool(0.5) {
            let target = rng.gen_range(0..self.available_count);
            let color =
                self.available.iter().nth(target).expect("available_count matches set bits") as u32;
            self.proposal = Some(color);
        }
        self.proposal
    }

    /// Step-1 closing move: given all proposals of *adjacent active*
    /// vertices, decide whether to keep the own proposal. Conflicting
    /// proposals are withdrawn (symmetrically — the neighbor does the
    /// same). Returns the decided color if the vertex just became inactive.
    pub fn resolve(&mut self, neighbor_proposals: &[u32]) -> Option<u32> {
        let own = self.proposal.take()?;
        if neighbor_proposals.contains(&own) {
            None
        } else {
            self.decided = Some(own);
            // Once decided the palette is irrelevant.
            Some(own)
        }
    }

    /// Step-2 move: strike the colors decided by adjacent vertices from the
    /// palette. Idempotent.
    pub fn remove_colors(&mut self, decided_neighbor_colors: &[u32]) {
        if self.decided.is_some() {
            return;
        }
        for &c in decided_neighbor_colors {
            if (c as usize) < self.available.len() && self.available.remove(c as usize) {
                self.available_count -= 1;
            }
        }
    }
}

/// Result of [`color_graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColoringResult {
    /// Final color per vertex (`None` = still undecided at the phase cap).
    pub colors: Vec<Option<u32>>,
    /// Phases actually executed until quiescence (or the cap).
    pub phases_used: u64,
    /// `true` if every vertex decided.
    pub complete: bool,
}

/// Runs the §5.2 coloring procedure on an explicit graph with perfect
/// (oracle) message exchange — the pure counterpart of CGCAST's in-model
/// execution. Stops early when all vertices have decided.
pub fn color_graph(
    adj: &[Vec<u32>],
    palette: u32,
    max_phases: u64,
    rng: &mut SmallRng,
) -> ColoringResult {
    let n = adj.len();
    let mut states: Vec<LubyNodeState> = (0..n).map(|_| LubyNodeState::new(palette)).collect();
    let mut phases_used = 0;
    for _phase in 0..max_phases {
        if states.iter().all(|s| !s.is_active()) {
            break;
        }
        phases_used += 1;
        // Step 1: propose.
        let proposals: Vec<Option<u32>> = states.iter_mut().map(|s| s.propose(rng)).collect();
        // Exchange proposals, resolve conflicts.
        let mut newly_decided: Vec<Option<u32>> = vec![None; n];
        for v in 0..n {
            let neigh: Vec<u32> = adj[v].iter().filter_map(|&w| proposals[w as usize]).collect();
            newly_decided[v] = states[v].resolve(&neigh);
        }
        // Step 2: exchange decisions, strike colors.
        for v in 0..n {
            let decided: Vec<u32> =
                adj[v].iter().filter_map(|&w| newly_decided[w as usize]).collect();
            states[v].remove_colors(&decided);
        }
    }
    let colors: Vec<Option<u32>> = states.iter().map(|s| s.decided()).collect();
    let complete = colors.iter().all(Option::is_some);
    ColoringResult { colors, phases_used, complete }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::line_graph::{is_proper_coloring, LineGraph};
    use crn_sim::rng::stream_rng;
    use crn_sim::{Edge, NodeId};

    #[test]
    fn colors_a_path() {
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let mut rng = stream_rng(1, 0);
        let res = color_graph(&adj, 4, 100, &mut rng);
        assert!(res.complete);
        assert!(is_proper_coloring(&adj, &res.colors));
    }

    #[test]
    fn colors_a_clique_with_tight_palette() {
        // K5 needs 5 colors; max degree 4, palette 2Δ = 8 is ample, but even
        // 5 works (slower).
        let n = 5usize;
        let adj: Vec<Vec<u32>> =
            (0..n).map(|v| (0..n as u32).filter(|&w| w as usize != v).collect()).collect();
        let mut rng = stream_rng(2, 0);
        let res = color_graph(&adj, 5, 500, &mut rng);
        assert!(res.complete, "did not finish in 500 phases");
        assert!(is_proper_coloring(&adj, &res.colors));
    }

    #[test]
    fn line_graph_of_star_gets_valid_edge_coloring() {
        let edges: Vec<Edge> = (1..=6).map(|l| Edge::new(NodeId(0), NodeId(l))).collect();
        let lg = LineGraph::of(&edges);
        let palette = 2 * 6; // 2Δ for Δ = 6
        let mut rng = stream_rng(3, 0);
        let res = color_graph(lg.adjacency(), palette as u32, 200, &mut rng);
        assert!(res.complete);
        assert!(is_proper_coloring(lg.adjacency(), &res.colors));
        // Star: all edges adjacent, so all colors distinct.
        let mut cs: Vec<u32> = res.colors.iter().map(|c| c.unwrap()).collect();
        cs.sort_unstable();
        cs.dedup();
        assert_eq!(cs.len(), 6);
    }

    #[test]
    fn phases_grow_logarithmically() {
        // Sanity: coloring a large ring uses far fewer phases than vertices.
        let n = 512usize;
        let adj: Vec<Vec<u32>> =
            (0..n).map(|v| vec![((v + n - 1) % n) as u32, ((v + 1) % n) as u32]).collect();
        let mut rng = stream_rng(4, 0);
        let res = color_graph(&adj, 4, 10_000, &mut rng);
        assert!(res.complete);
        assert!(is_proper_coloring(&adj, &res.colors));
        assert!(res.phases_used <= 60, "expected O(lg n) phases, used {}", res.phases_used);
    }

    #[test]
    fn isolated_vertices_decide_immediately() {
        let adj = vec![vec![], vec![]];
        let mut rng = stream_rng(5, 0);
        let res = color_graph(&adj, 2, 100, &mut rng);
        assert!(res.complete);
        assert!(res.phases_used <= 20);
    }

    #[test]
    fn state_machine_conflict_resolution() {
        let mut rng = stream_rng(6, 0);
        let mut a = LubyNodeState::new(4);
        // Force a proposal by retrying the coin.
        let mut own = None;
        while own.is_none() {
            own = a.propose(&mut rng);
        }
        let own = own.unwrap();
        // Conflicting neighbor proposal: withdraw, stay active.
        assert_eq!(a.resolve(&[own]), None);
        assert!(a.is_active());
        // Non-conflicting: decide.
        let mut own2 = None;
        while own2.is_none() {
            own2 = a.propose(&mut rng);
        }
        let c = a.resolve(&[]).unwrap();
        assert_eq!(a.decided(), Some(c));
        assert!(!a.is_active());
        // Post-decision proposals are no-ops.
        assert_eq!(a.propose(&mut rng), None);
    }

    #[test]
    fn remove_colors_shrinks_palette_idempotently() {
        let mut s = LubyNodeState::new(4);
        s.remove_colors(&[1, 2]);
        assert_eq!(s.available_count(), 2);
        s.remove_colors(&[1, 2]);
        assert_eq!(s.available_count(), 2, "idempotent");
        s.remove_colors(&[99]);
        assert_eq!(s.available_count(), 2, "out-of-palette colors ignored");
    }

    #[test]
    fn deterministic_under_seed() {
        let adj = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let mut r1 = stream_rng(9, 0);
        let mut r2 = stream_rng(9, 0);
        let a = color_graph(&adj, 6, 100, &mut r1);
        let b = color_graph(&adj, 6, 100, &mut r2);
        assert_eq!(a, b);
    }
}
