//! Sequential greedy edge coloring — the centralized baseline for ablation
//! A3. With global knowledge, scanning edges in any order and assigning the
//! smallest color unused by adjacent edges needs at most `2Δ − 1` colors
//! (each edge has at most `2Δ − 2` adjacent edges). The paper's point is
//! that CGCAST achieves a comparable `2Δ` coloring *without* global
//! knowledge; this module quantifies what that convenience costs.

use crn_sim::{Edge, NodeId};
use std::collections::HashMap;

/// Greedily edge-colors `edges`; returns one color per input edge.
/// Deterministic: colors depend only on the input order.
pub fn greedy_edge_coloring(edges: &[Edge]) -> Vec<u32> {
    let mut incident: HashMap<NodeId, Vec<u32>> = HashMap::new();
    let mut colors = Vec::with_capacity(edges.len());
    for e in edges {
        let mut used: Vec<u32> = Vec::new();
        if let Some(cs) = incident.get(&e.lo()) {
            used.extend_from_slice(cs);
        }
        if let Some(cs) = incident.get(&e.hi()) {
            used.extend_from_slice(cs);
        }
        used.sort_unstable();
        used.dedup();
        let mut color = 0u32;
        for &u in &used {
            if u == color {
                color += 1;
            } else if u > color {
                break;
            }
        }
        colors.push(color);
        incident.entry(e.lo()).or_default().push(color);
        incident.entry(e.hi()).or_default().push(color);
    }
    colors
}

/// Number of distinct colors used.
pub fn palette_size(colors: &[u32]) -> usize {
    let mut cs = colors.to_vec();
    cs.sort_unstable();
    cs.dedup();
    cs.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::line_graph::is_proper_edge_coloring;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn colors_star_with_exactly_delta_colors() {
        let edges: Vec<Edge> = (1..=5).map(|l| e(0, l)).collect();
        let colors = greedy_edge_coloring(&edges);
        let opts: Vec<Option<u32>> = colors.iter().map(|&c| Some(c)).collect();
        assert!(is_proper_edge_coloring(&edges, &opts));
        assert_eq!(palette_size(&colors), 5);
    }

    #[test]
    fn colors_path_with_two_colors() {
        let edges: Vec<Edge> = (0..5).map(|i| e(i, i + 1)).collect();
        let colors = greedy_edge_coloring(&edges);
        let opts: Vec<Option<u32>> = colors.iter().map(|&c| Some(c)).collect();
        assert!(is_proper_edge_coloring(&edges, &opts));
        assert_eq!(palette_size(&colors), 2);
    }

    #[test]
    fn respects_two_delta_minus_one_bound() {
        // Complete graph K6: Δ = 5, bound 9 (actual chromatic index 5).
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push(e(a, b));
            }
        }
        let colors = greedy_edge_coloring(&edges);
        let opts: Vec<Option<u32>> = colors.iter().map(|&c| Some(c)).collect();
        assert!(is_proper_edge_coloring(&edges, &opts));
        assert!(palette_size(&colors) < 2 * 5);
    }

    #[test]
    fn empty_input() {
        assert!(greedy_edge_coloring(&[]).is_empty());
        assert_eq!(palette_size(&[]), 0);
    }
}
