//! # crn-core — communication primitives for cognitive radio networks
//!
//! A faithful implementation of the algorithms from *"Communication
//! Primitives in Cognitive Radio Networks"* (Gilbert, Kuhn, Zheng —
//! PODC 2017, arXiv:1703.06130), running on the model simulator from
//! [`crn_sim`]. Each module carries the paper section it reproduces:
//!
//! * [`count`] — COUNT, constant-factor contention estimation
//!   (§4.1, Appendix A, Lemma 1);
//! * [`discovery`] — the neighbor-discovery problem statement (§1):
//!   [`DiscoveryOutput`], the [`DiscoveryProtocol`] probe interface, and
//!   the ground-truth checkers experiments measure against;
//! * [`seek`] — CSEEK, neighbor discovery in `Õ(c²/k + (kmax/k)·Δ)`
//!   (§4.2–4.3, Theorem 4), which doubles as CKSEEK for k̂-neighbor
//!   discovery (§4.4, Theorem 6) via
//!   [`params::SeekParams::kseek_schedule`];
//! * [`exchange`] — the discovery-to-message-exchange reduction of §5.1
//!   ("solve discovery in `T` time and neighbors can exchange a message
//!   in `T` time"), CGCAST's workhorse;
//! * [`coloring`] — line graphs and the Luby-style `2Δ` node coloring the
//!   paper adapts for edge coloring (§5.2, Fact 7, Lemma 8);
//! * [`cgcast`] — CGCAST, global broadcast in
//!   `Õ(c²/k + (kmax/k)·Δ + D·Δ)` (§5, Theorem 9);
//! * [`baselines`] — the naive and fixed-rate comparison algorithms from
//!   §1–2;
//! * [`adversary`] — jamming extensions beyond the paper's clean model
//!   (motivated by §1's "disruptive devices");
//! * [`params`] — every hidden schedule constant behind the paper's
//!   `Θ(·)`s, documented and sweepable.
//!
//! ## Quick start
//!
//! ```
//! use crn_core::params::{ModelInfo, SeekParams};
//! use crn_core::seek::CSeek;
//! use crn_sim::channels::ChannelModel;
//! use crn_sim::rng::stream_rng;
//! use crn_sim::topology::Topology;
//! use crn_sim::{Engine, Network, NodeId};
//!
//! // Build a 6-node cycle where all pairs share a 2-channel core.
//! let mut rng = stream_rng(7, 0);
//! let topo = Topology::Cycle { n: 6 };
//! let sets = ChannelModel::SharedCore { c: 4, core: 2 }.assign(6, &mut rng);
//! let mut b = Network::builder(6);
//! for (v, set) in sets.into_iter().enumerate() {
//!     b.set_channels(NodeId(v as u32), set);
//! }
//! b.add_edges(topo.edges(&mut rng).into_iter().map(|(a, x)| (NodeId(a), NodeId(x))));
//! let net = b.build()?;
//!
//! // Run CSEEK with the default constants.
//! let model = ModelInfo::from_stats(&net.stats());
//! let sched = SeekParams::default().schedule(&model);
//! let mut eng = Engine::new(&net, 1, |ctx| CSeek::new(ctx.id, sched, false));
//! eng.run_to_completion(sched.total_slots());
//! let outputs = eng.into_outputs();
//! assert_eq!(outputs[0].neighbors.len(), 2); // both ring neighbors found
//! # Ok::<(), crn_sim::NetworkError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod baselines;
pub mod cgcast;
pub mod coloring;
pub mod count;
pub mod discovery;
pub mod exchange;
pub mod params;
pub mod seek;

pub use count::{CountInstance, CountProtocol, Role};
pub use discovery::{DiscoveryOutput, DiscoveryProtocol};
pub use exchange::{Exchange, ExchangeOutput};
pub use params::{CountParams, GcastParams, ModelInfo, SeekParams};
pub use seek::{CSeek, SeekCore, SeekPhase};
// Robustness studies combine in-protocol adversaries ([`adversary`]) with
// environment-level primary-user churn; re-export the spectrum types so
// such experiments need only `crn_core`.
pub use crn_sim::spectrum::{SpectrumDynamics, SpectrumState};
