//! E2/E3/E4 — Theorem 4: CSEEK's completion time scales as
//! `c²/k + (kmax/k)·Δ` (up to poly-log factors).
//!
//! Each experiment isolates one variable of the bound:
//! * E2 sweeps `c` on a low-degree ring (the `c²` term dominates; expected
//!   log–log slope ≈ 2);
//! * E3 sweeps `k` at fixed `c` (expected slope ≈ −1);
//! * E4 sweeps `Δ` on crowded stars (the `Δ` term dominates; expected
//!   slope ≈ 1).

use super::ExpConfig;
use crate::runner::{discovery_trials, summarize_trials};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::stats::{fit_linear, fit_loglog};
use crn_sim::topology::Topology;
use crn_sim::StatsMode;

/// The swept `c` values of E2.
pub(super) fn e2_cs(cfg: &ExpConfig) -> &'static [usize] {
    if cfg.quick {
        &[4, 8]
    } else {
        &[4, 6, 8, 12, 16]
    }
}

/// The E2 scenario at one sweep point (ring size follows quick mode) —
/// shared by the table builder, the campaign port and the
/// confidence-interval tests, so all measure exactly the same runs.
pub(super) fn e2_scenario(quick: bool, c: usize, seed: u64) -> Scenario {
    let n = if quick { 12 } else { 24 };
    Scenario::new(
        format!("e2-c{c}"),
        Topology::Cycle { n },
        ChannelModel::SharedCore { c, core: 2 },
        seed,
    )
}

/// The E3 scenario at one sweep point; see [`e2_scenario`].
fn e3_scenario(quick: bool, k: usize, seed: u64) -> Scenario {
    let n = if quick { 12 } else { 24 };
    Scenario::new(
        format!("e3-k{k}"),
        Topology::Cycle { n },
        ChannelModel::SharedCore { c: 12, core: k },
        seed,
    )
}

fn measure(scn: &Scenario, trials: usize, seed: u64) -> (Option<f64>, f64, u64) {
    let built = scn.build().expect("scenario builds");
    let sched = SeekParams::default().schedule(&built.model);
    let results = discovery_trials(
        &built.net,
        |ctx| CSeek::new(ctx.id, sched, false),
        trials,
        seed,
        sched.total_slots(),
    );
    let (mean, frac) = summarize_trials(&results);
    (mean, frac, sched.total_slots())
}

/// Builds the E2 table from a finished campaign report (one arm per
/// swept `c`, as laid out by [`super::campaigns::e2_spec`]).
pub(super) fn e2_table(cfg: &ExpConfig, report: &crate::campaign::CampaignReport) -> Table {
    let mut t = Table::new(
        "E2 (Thm 4): CSEEK completion time vs c  (ring, k = kmax = 2, Δ = 2)",
        &["c", "mean slots", "success", "slots/c^2", "schedule slots"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (a, &c) in e2_cs(cfg).iter().enumerate() {
        let built = e2_scenario(cfg.quick, c, cfg.seed).build().expect("scenario builds");
        let sched = SeekParams::default().schedule(&built.model).total_slots();
        let (mean, frac) = summarize_trials(&report.done_outputs(a));
        if let Some(m) = mean {
            xs.push(c as f64);
            ys.push(m);
            t.push_row(vec![
                c.to_string(),
                fmt_f(m),
                fmt_f(frac),
                fmt_f(m / (c * c) as f64),
                sched.to_string(),
            ]);
        } else {
            t.push_row(vec![c.to_string(), "—".into(), fmt_f(frac), "—".into(), sched.to_string()]);
        }
    }
    if xs.len() >= 2 {
        let fit = fit_loglog(&xs, &ys);
        t.push_note(format!(
            "log-log slope of slots vs c: {:.2} (paper predicts ≈ 2 from the c²/k term; R² = {:.3})",
            fit.slope, fit.r2
        ));
    }
    t
}

/// E2: completion time vs `c` (ring topology, `k = 2` core). Runs as an
/// in-memory campaign (no journal, no faults) — the resumable variant is
/// [`super::campaigns::run_e2`] — with unit outputs bit-identical to the
/// plain [`discovery_trials`] path.
pub fn e2_vs_c(cfg: &ExpConfig) -> Table {
    let report = super::campaigns::run_e2(
        cfg,
        super::campaigns::default_threads(cfg),
        None,
        &crate::campaign::FaultPlan::none(),
    )
    .expect("in-memory campaign cannot fail on journal I/O");
    e2_table(cfg, &report)
}

/// E3: completion time vs `k` (ring topology, fixed `c = 12`).
pub fn e3_vs_k(cfg: &ExpConfig) -> Table {
    let ks: &[usize] = if cfg.quick { &[1, 4] } else { &[1, 2, 3, 4, 6, 8] };
    let mut t = Table::new(
        "E3 (Thm 4): CSEEK completion time vs k  (ring, c = 12, Δ = 2)",
        &["k", "mean slots", "success", "slots*k", "schedule slots"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &k in ks {
        let scn = e3_scenario(cfg.quick, k, cfg.seed);
        let (mean, frac, sched) = measure(&scn, cfg.trials(), cfg.seed ^ 0xE3);
        if let Some(m) = mean {
            xs.push(k as f64);
            ys.push(m);
            t.push_row(vec![
                k.to_string(),
                fmt_f(m),
                fmt_f(frac),
                fmt_f(m * k as f64),
                sched.to_string(),
            ]);
        } else {
            t.push_row(vec![k.to_string(), "—".into(), fmt_f(frac), "—".into(), sched.to_string()]);
        }
    }
    if xs.len() >= 2 {
        let fit = fit_loglog(&xs, &ys);
        t.push_note(format!(
            "log-log slope of slots vs k: {:.2} (paper predicts ≈ −1 from the c²/k term; R² = {:.3})",
            fit.slope, fit.r2
        ));
    }
    t
}

/// E4: completion time vs `Δ` (crowded stars: every leaf shares one hot +
/// one cold channel with the hub).
pub fn e4_vs_delta(cfg: &ExpConfig) -> Table {
    let deltas: &[usize] = if cfg.quick { &[8, 16] } else { &[8, 16, 32, 64, 128] };
    let c = 4;
    let mut t = Table::new(
        "E4 (Thm 4): CSEEK completion time vs Δ  (crowded star, c = 4, k = 2)",
        &["Δ", "mean slots", "success", "slots/Δ", "schedule slots"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &delta in deltas {
        // Approximate stats: the largest sweep point is a 129-node star and
        // this experiment reads only the schedule parameters (n, c, Δ, k,
        // kmax), never `stats().diameter` — so the exact all-source-BFS
        // diameter is pure setup cost (results are bit-identical, see
        // `approximate_stats_build_same_network_same_model`).
        let scn = Scenario::new(
            format!("e4-d{delta}"),
            Topology::Star { leaves: delta },
            ChannelModel::CrowdedSplit { c, k: 2, hot: 1, k_hot: 1 },
            cfg.seed,
        )
        .with_stats(StatsMode::Approximate);
        let (mean, frac, sched) = measure(&scn, cfg.trials(), cfg.seed ^ 0xE4);
        if let Some(m) = mean {
            xs.push(delta as f64);
            ys.push(m);
            t.push_row(vec![
                delta.to_string(),
                fmt_f(m),
                fmt_f(frac),
                fmt_f(m / delta as f64),
                sched.to_string(),
            ]);
        } else {
            t.push_row(vec![
                delta.to_string(),
                fmt_opt(mean),
                fmt_f(frac),
                "—".into(),
                sched.to_string(),
            ]);
        }
    }
    if xs.len() >= 2 {
        // Theorem 4 is an *additive* bound c²/k + (kmax/k)·Δ, so the right
        // model is linear-with-intercept: the intercept absorbs the
        // Δ-independent sampling prefix, the slope is the per-neighbor cost.
        let lin = fit_linear(&xs, &ys);
        let ll = fit_loglog(&xs, &ys);
        t.push_note(format!(
            "linear fit: slots ≈ {:.0} + {:.1}·Δ (R² = {:.3}) — the intercept is \
the c²/k sampling prefix, the slope the (kmax/k) per-neighbor cost. (Raw \
log-log slope {:.2} < 1 reflects that mixture, approaching 1 as Δ grows.)",
            lin.intercept, lin.slope, lin.r2, ll.slope
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::stats::mean_ci95;

    /// Completion-time samples of the successful trials at one scenario
    /// point — the raw data behind one row of E2/E3.
    fn completion_samples(scn: &Scenario, trials: usize, seed: u64) -> Vec<f64> {
        let built = scn.build().expect("scenario builds");
        let sched = SeekParams::default().schedule(&built.model);
        discovery_trials(
            &built.net,
            |ctx| CSeek::new(ctx.id, sched, false),
            trials,
            seed,
            sched.total_slots(),
        )
        .iter()
        .filter_map(|t| t.completed_at)
        .map(|t| t as f64)
        .collect()
    }

    fn mean(xs: &[f64]) -> f64 {
        assert!(!xs.is_empty(), "point produced no successful trials");
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    /// 95%-CI interval of the log-log slope between two sweep points one or
    /// more octaves apart: with means `m ± h`, the admissible slope range is
    /// `[log2((m2-h2)/(m1+h1)), log2((m2+h2)/(m1-h1))] / octaves`.
    fn slope_ci(lo: &[f64], hi: &[f64], octaves: f64) -> (f64, f64) {
        let (m1, h1) = (mean(lo), mean_ci95(lo));
        let (m2, h2) = (mean(hi), mean_ci95(hi));
        assert!(m1 > h1 && m2 > h2, "CI crosses zero — too few trials to say anything");
        (((m2 - h2) / (m1 + h1)).log2() / octaves, ((m2 + h2) / (m1 - h1)).log2() / octaves)
    }

    fn e2_point(c: usize, trials: usize, seed: u64) -> Vec<f64> {
        completion_samples(&e2_scenario(true, c, seed), trials, seed ^ 0xE2)
    }

    #[test]
    fn e2_quick_slope_ci_is_positive_and_spans_quadratic() {
        // The quick-mode sweep points are c ∈ {4, 8} — one octave, so the
        // slope is log2(m8/m4). Instead of a raw threshold on one draw, the
        // check is confidence-interval based: the whole admissible slope
        // interval must sit above zero (growth with c is significant), and
        // the interval must intersect the generous quadratic band (1, 3)
        // Theorem 4's c²/k term predicts.
        let lo = e2_point(4, 8, 5);
        let hi = e2_point(8, 8, 5);
        let (s_lo, s_hi) = slope_ci(&lo, &hi, 1.0);
        assert!(s_lo > 0.0, "slope CI [{s_lo:.2}, {s_hi:.2}] not significantly positive");
        assert!(s_hi > 1.0 && s_lo < 3.0, "slope CI [{s_lo:.2}, {s_hi:.2}] excludes ≈2");
    }

    #[test]
    fn e3_quick_slope_ci_is_negative() {
        // Quick-mode points k ∈ {1, 4} are two octaves apart; the c²/k term
        // predicts slope ≈ −1. The upper end of the CI must stay below zero.
        let point = |k: usize, trials: usize| {
            completion_samples(&e3_scenario(true, k, 5), trials, 5 ^ 0xE3)
        };
        let (s_lo, s_hi) = slope_ci(&point(1, 6), &point(4, 6), 2.0);
        assert!(s_hi < 0.0, "slope CI [{s_lo:.2}, {s_hi:.2}] not significantly negative");
    }

    #[test]
    fn e2_quick_and_full_modes_agree_in_direction() {
        // Regression guard for the quick-mode proxy: the full-mode sweep
        // (c up to 16 on the bigger ring, reduced trial count) must agree
        // with quick mode that completion time *grows* with c.
        let parse_slope = |t: &Table| -> f64 {
            let note = t.notes.first().expect("slope note");
            note.split("slope of slots vs c: ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let quick = e2_vs_c(&ExpConfig { quick: true, trials: 4, seed: 5 });
        let full = e2_vs_c(&ExpConfig { quick: false, trials: 2, seed: 5 });
        let (qs, fs) = (parse_slope(&quick), parse_slope(&full));
        assert!(
            qs > 0.0 && fs > 0.0,
            "quick ({qs:.2}) and full ({fs:.2}) modes must agree: slots grow with c"
        );
    }
}
