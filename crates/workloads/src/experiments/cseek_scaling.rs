//! E2/E3/E4 — Theorem 4: CSEEK's completion time scales as
//! `c²/k + (kmax/k)·Δ` (up to poly-log factors).
//!
//! Each experiment isolates one variable of the bound:
//! * E2 sweeps `c` on a low-degree ring (the `c²` term dominates; expected
//!   log–log slope ≈ 2);
//! * E3 sweeps `k` at fixed `c` (expected slope ≈ −1);
//! * E4 sweeps `Δ` on crowded stars (the `Δ` term dominates; expected
//!   slope ≈ 1).

use super::ExpConfig;
use crate::runner::{discovery_trials, summarize_trials};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::stats::{fit_linear, fit_loglog};
use crn_sim::topology::Topology;

fn measure(scn: &Scenario, trials: usize, seed: u64) -> (Option<f64>, f64, u64) {
    let built = scn.build().expect("scenario builds");
    let sched = SeekParams::default().schedule(&built.model);
    let results = discovery_trials(
        &built.net,
        |ctx| CSeek::new(ctx.id, sched, false),
        trials,
        seed,
        sched.total_slots(),
    );
    let (mean, frac) = summarize_trials(&results);
    (mean, frac, sched.total_slots())
}

/// E2: completion time vs `c` (ring topology, `k = 2` core).
pub fn e2_vs_c(cfg: &ExpConfig) -> Table {
    let cs: &[usize] = if cfg.quick { &[4, 8] } else { &[4, 6, 8, 12, 16] };
    let n = if cfg.quick { 12 } else { 24 };
    let mut t = Table::new(
        "E2 (Thm 4): CSEEK completion time vs c  (ring, k = kmax = 2, Δ = 2)",
        &["c", "mean slots", "success", "slots/c^2", "schedule slots"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &c in cs {
        let scn = Scenario::new(
            format!("e2-c{c}"),
            Topology::Cycle { n },
            ChannelModel::SharedCore { c, core: 2 },
            cfg.seed,
        );
        let (mean, frac, sched) = measure(&scn, cfg.trials(), cfg.seed ^ 0xE2);
        if let Some(m) = mean {
            xs.push(c as f64);
            ys.push(m);
            t.push_row(vec![
                c.to_string(),
                fmt_f(m),
                fmt_f(frac),
                fmt_f(m / (c * c) as f64),
                sched.to_string(),
            ]);
        } else {
            t.push_row(vec![c.to_string(), "—".into(), fmt_f(frac), "—".into(), sched.to_string()]);
        }
    }
    if xs.len() >= 2 {
        let fit = fit_loglog(&xs, &ys);
        t.push_note(format!(
            "log-log slope of slots vs c: {:.2} (paper predicts ≈ 2 from the c²/k term; R² = {:.3})",
            fit.slope, fit.r2
        ));
    }
    t
}

/// E3: completion time vs `k` (ring topology, fixed `c = 12`).
pub fn e3_vs_k(cfg: &ExpConfig) -> Table {
    let ks: &[usize] = if cfg.quick { &[1, 4] } else { &[1, 2, 3, 4, 6, 8] };
    let c = 12;
    let n = if cfg.quick { 12 } else { 24 };
    let mut t = Table::new(
        "E3 (Thm 4): CSEEK completion time vs k  (ring, c = 12, Δ = 2)",
        &["k", "mean slots", "success", "slots*k", "schedule slots"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &k in ks {
        let scn = Scenario::new(
            format!("e3-k{k}"),
            Topology::Cycle { n },
            ChannelModel::SharedCore { c, core: k },
            cfg.seed,
        );
        let (mean, frac, sched) = measure(&scn, cfg.trials(), cfg.seed ^ 0xE3);
        if let Some(m) = mean {
            xs.push(k as f64);
            ys.push(m);
            t.push_row(vec![
                k.to_string(),
                fmt_f(m),
                fmt_f(frac),
                fmt_f(m * k as f64),
                sched.to_string(),
            ]);
        } else {
            t.push_row(vec![k.to_string(), "—".into(), fmt_f(frac), "—".into(), sched.to_string()]);
        }
    }
    if xs.len() >= 2 {
        let fit = fit_loglog(&xs, &ys);
        t.push_note(format!(
            "log-log slope of slots vs k: {:.2} (paper predicts ≈ −1 from the c²/k term; R² = {:.3})",
            fit.slope, fit.r2
        ));
    }
    t
}

/// E4: completion time vs `Δ` (crowded stars: every leaf shares one hot +
/// one cold channel with the hub).
pub fn e4_vs_delta(cfg: &ExpConfig) -> Table {
    let deltas: &[usize] = if cfg.quick { &[8, 16] } else { &[8, 16, 32, 64, 128] };
    let c = 4;
    let mut t = Table::new(
        "E4 (Thm 4): CSEEK completion time vs Δ  (crowded star, c = 4, k = 2)",
        &["Δ", "mean slots", "success", "slots/Δ", "schedule slots"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &delta in deltas {
        let scn = Scenario::new(
            format!("e4-d{delta}"),
            Topology::Star { leaves: delta },
            ChannelModel::CrowdedSplit { c, k: 2, hot: 1, k_hot: 1 },
            cfg.seed,
        );
        let (mean, frac, sched) = measure(&scn, cfg.trials(), cfg.seed ^ 0xE4);
        if let Some(m) = mean {
            xs.push(delta as f64);
            ys.push(m);
            t.push_row(vec![
                delta.to_string(),
                fmt_f(m),
                fmt_f(frac),
                fmt_f(m / delta as f64),
                sched.to_string(),
            ]);
        } else {
            t.push_row(vec![
                delta.to_string(),
                fmt_opt(mean),
                fmt_f(frac),
                "—".into(),
                sched.to_string(),
            ]);
        }
    }
    if xs.len() >= 2 {
        // Theorem 4 is an *additive* bound c²/k + (kmax/k)·Δ, so the right
        // model is linear-with-intercept: the intercept absorbs the
        // Δ-independent sampling prefix, the slope is the per-neighbor cost.
        let lin = fit_linear(&xs, &ys);
        let ll = fit_loglog(&xs, &ys);
        t.push_note(format!(
            "linear fit: slots ≈ {:.0} + {:.1}·Δ (R² = {:.3}) — the intercept is \
the c²/k sampling prefix, the slope the (kmax/k) per-neighbor cost. (Raw \
log-log slope {:.2} < 1 reflects that mixture, approaching 1 as Δ grows.)",
            lin.intercept, lin.slope, lin.r2, ll.slope
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_quick_has_positive_slope_near_two() {
        let t = e2_vs_c(&ExpConfig { quick: true, trials: 8, seed: 5 });
        assert_eq!(t.rows.len(), 2);
        let note = t.notes.first().expect("slope note");
        let slope: f64 = note
            .split("slope of slots vs c: ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(slope > 1.0 && slope < 3.0, "slope {slope} out of range");
    }

    #[test]
    fn e3_quick_has_negative_slope() {
        let t = e3_vs_k(&ExpConfig { quick: true, trials: 3, seed: 5 });
        let note = t.notes.first().expect("slope note");
        let slope: f64 = note
            .split("slope of slots vs k: ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(slope < -0.3, "slope {slope} should be clearly negative");
    }
}
