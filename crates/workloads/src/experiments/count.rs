//! E1 — Lemma 1: COUNT returns an estimate in `[m, 4m]` w.h.p. within
//! `O(lg² n)` slots.
//! A2 — ablation: how the round-length constant trades accuracy for time.

use super::ExpConfig;
use crate::table::{fmt_f, Table};
use crn_core::count::{CountProtocol, Role};
use crn_core::params::{CountParams, ModelInfo};
use crn_sim::{Engine, GlobalChannel, LocalChannel, Network, NodeId};

/// Builds the COUNT arena: node 0 (the listener) adjacent to `m`
/// broadcasters; everyone shares global channel 0 plus one private channel
/// (so `c = 2` and local labels differ). Shared with E12's COUNT arm so
/// the two experiments measure the same arena.
pub(crate) fn count_arena(m: usize) -> Network {
    let n = m + 1;
    let mut b = Network::builder(n);
    for v in 0..n {
        // Alternate label order so local labels are not globally aligned.
        let shared = GlobalChannel(0);
        let private = GlobalChannel(1 + v as u32);
        if v % 2 == 0 {
            b.set_channels(NodeId(v as u32), vec![shared, private]);
        } else {
            b.set_channels(NodeId(v as u32), vec![private, shared]);
        }
    }
    for leaf in 1..n {
        b.add_edge(NodeId(0), NodeId(leaf as u32));
    }
    b.build().expect("count arena is valid")
}

fn run_count_trials(m: usize, params: &CountParams, trials: usize, seed: u64) -> (Vec<u64>, u64) {
    let net = count_arena(m);
    let model = ModelInfo { n: 256, c: 2, delta: 256, k: 1, kmax: 1 };
    let sched = params.schedule(&model);
    let mut estimates = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut eng = Engine::new(&net, seed.wrapping_add(t as u64), |ctx| {
            let role = if ctx.id == NodeId(0) { Role::Listener } else { Role::Broadcaster };
            // The shared channel's local label differs per node.
            let ch = net.global_to_local(ctx.id, GlobalChannel(0)).unwrap_or(LocalChannel(0));
            CountProtocol::new(ctx.id, role, sched, ch)
        });
        eng.run_to_completion(sched.total_slots());
        estimates.push(eng.into_outputs().remove(0).estimate);
    }
    (estimates, sched.total_slots())
}

/// E1: estimate quality across broadcaster counts at default constants.
pub fn e1_count_accuracy(cfg: &ExpConfig) -> Table {
    let ms: &[usize] = if cfg.quick { &[1, 8, 32] } else { &[1, 2, 3, 5, 8, 16, 32, 64, 100] };
    let trials = if cfg.quick { cfg.trials() } else { cfg.trials().max(20) };
    let mut t = Table::new(
        "E1 (Lemma 1): COUNT estimate vs true broadcaster count m",
        &["m", "mean est", "min", "max", "frac in [m,4m]", "slots (O(lg^2 n))"],
    );
    let params = CountParams::default();
    for &m in ms {
        let (est, slots) = run_count_trials(m, &params, trials, cfg.seed);
        let mean = est.iter().sum::<u64>() as f64 / est.len() as f64;
        let min = *est.iter().min().unwrap();
        let max = *est.iter().max().unwrap();
        let in_range = est.iter().filter(|&&e| e as usize >= m && e as usize <= 4 * m).count()
            as f64
            / est.len() as f64;
        t.push_row(vec![
            m.to_string(),
            fmt_f(mean),
            min.to_string(),
            max.to_string(),
            fmt_f(in_range),
            slots.to_string(),
        ]);
    }
    t.push_note("Paper claim: estimate ∈ [m, 4m] w.h.p.; runtime O(lg² n) independent of m.");
    t
}

/// A2: sweep the round-length constant `a` (round length `a·lg n`).
pub fn a2_round_length(cfg: &ExpConfig) -> Table {
    let m = 24usize;
    let factors: &[f64] = if cfg.quick { &[0.5, 4.0] } else { &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0] };
    let trials = if cfg.quick { cfg.trials() } else { cfg.trials().max(20) };
    let mut t = Table::new(
        "A2 (ablation): COUNT round-length constant vs accuracy (m = 24)",
        &["round_len_factor", "round slots", "total slots", "frac in [m,4m]", "mean est"],
    );
    for &a in factors {
        let params = CountParams { round_len_factor: a, min_round_len: 2, threshold: 0.08 };
        let (est, slots) = run_count_trials(m, &params, trials, cfg.seed ^ 0xA2);
        let mean = est.iter().sum::<u64>() as f64 / est.len() as f64;
        let in_range = est.iter().filter(|&&e| e as usize >= m && e as usize <= 4 * m).count()
            as f64
            / est.len() as f64;
        let model = ModelInfo { n: 256, c: 2, delta: 256, k: 1, kmax: 1 };
        let sched = params.schedule(&model);
        t.push_row(vec![
            fmt_f(a),
            sched.round_len.to_string(),
            slots.to_string(),
            fmt_f(in_range),
            fmt_f(mean),
        ]);
    }
    t.push_note(
        "Short rounds make the threshold test noisy (estimates escape [m,4m]); \
         the default factor 4 with a floor of 24 slots restores the guarantee.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_expected_columns() {
        let t = e1_count_accuracy(&ExpConfig { quick: true, trials: 3, seed: 9 });
        assert_eq!(t.columns.len(), 6);
        assert_eq!(t.rows.len(), 3);
        // Accuracy at defaults should be high even with few trials.
        for row in &t.rows {
            let frac: f64 = row[4].parse().unwrap();
            assert!(frac >= 0.67, "row {row:?} has poor accuracy");
        }
    }

    #[test]
    fn a2_shows_accuracy_improves_with_round_length() {
        let t = a2_round_length(&ExpConfig { quick: true, trials: 6, seed: 9 });
        let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last >= first, "longer rounds should not be less accurate");
    }
}
