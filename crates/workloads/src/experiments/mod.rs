//! The experiment suite: one module per paper claim (see DESIGN.md §5).
//!
//! Every experiment is a pure function from an [`ExpConfig`] to one or more
//! [`Table`]s, so the `experiments` binary, the integration tests and the
//! criterion benches all share one implementation.
//!
//! The paper is a theory paper — its "evaluation" is a set of theorems, so
//! each experiment here regenerates the *shape* a theorem claims (slopes of
//! log–log fits, who-beats-whom orderings, crossover locations), not
//! absolute numbers from a testbed.

pub mod ablation;
pub mod campaigns;
pub mod compare;
pub mod count;
pub mod cseek_scaling;
pub mod game;
pub mod gcast;
pub mod kseek;
pub mod pure_coloring;
pub mod rendezvous;
pub mod robustness;
pub mod spectrum;
pub mod tree;

use crate::table::Table;

/// Global experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Quick mode: smaller sweeps and fewer trials (used by CI/tests).
    pub quick: bool,
    /// Trials per configuration point.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig { quick: false, trials: 10, seed: 42 }
    }
}

impl ExpConfig {
    /// Quick-mode preset.
    pub fn quick() -> Self {
        ExpConfig { quick: true, trials: 3, seed: 42 }
    }

    /// Effective trial count.
    pub fn trials(&self) -> usize {
        self.trials.max(1)
    }
}

/// All experiment identifiers, in DESIGN.md order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "a1", "a2", "a3",
    "a3b", "r1",
];

/// Runs one experiment by id. Returns its result tables.
///
/// # Panics
/// Panics on an unknown id (the caller validates against
/// [`ALL_EXPERIMENTS`]).
pub fn run_experiment(id: &str, cfg: &ExpConfig) -> Vec<Table> {
    match id {
        "e1" => vec![count::e1_count_accuracy(cfg)],
        "e2" => vec![cseek_scaling::e2_vs_c(cfg)],
        "e3" => vec![cseek_scaling::e3_vs_k(cfg)],
        "e4" => vec![cseek_scaling::e4_vs_delta(cfg)],
        "e5" => vec![compare::e5_discovery_comparison(cfg), compare::e5b_crowded_headline(cfg)],
        "e6" => vec![kseek::e6_ckseek(cfg)],
        "e7" => vec![pure_coloring::e7_phases_vs_n(cfg)],
        "e8" => gcast::e8_gcast_vs_naive(cfg),
        "e9" => gcast_e9(cfg),
        "e10" => vec![tree::e10_tree_lower_bound(cfg)],
        "e11" => vec![rendezvous::e11_rendezvous_gap(cfg)],
        "e12" => {
            vec![spectrum::e12_pu_churn(cfg), spectrum::e12b_churn_plus_jamming(cfg)]
        }
        "a1" => vec![ablation::a1_uniform_listener(cfg)],
        "a2" => vec![count::a2_round_length(cfg)],
        "a3" => vec![pure_coloring::a3_coloring_comparison(cfg)],
        "a3b" => vec![robustness::a3b_uncolored_dissemination(cfg)],
        "r1" => vec![robustness::r1_jamming(cfg)],
        other => panic!("unknown experiment id {other:?} (known: {ALL_EXPERIMENTS:?})"),
    }
}

fn gcast_e9(cfg: &ExpConfig) -> Vec<Table> {
    vec![game::e9_hitting_game(cfg), game::e9_reduction(cfg)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_resolve() {
        // Just the cheapest experiment, to check the dispatch plumbing.
        let tables = run_experiment("e1", &ExpConfig { quick: true, trials: 2, seed: 1 });
        assert_eq!(tables.len(), 1);
        assert!(!tables[0].rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        let _ = run_experiment("zz", &ExpConfig::quick());
    }
}
