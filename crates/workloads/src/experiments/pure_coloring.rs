//! E7 — Lemma 8: the §5.2 coloring procedure produces a valid 2Δ coloring
//! of the line graph within `O(lg n)` phases.
//! A3 — ablation: Luby (distributed-capable) vs greedy (centralized) edge
//! coloring, and palette-size sensitivity.

use super::ExpConfig;
use crate::table::{fmt_f, Table};
use crn_core::coloring::{
    color_graph, greedy_edge_coloring, is_proper_coloring, palette_size, LineGraph,
};
use crn_sim::graph::Graph;
use crn_sim::rng::stream_rng;
use crn_sim::topology::Topology;
use crn_sim::{Edge, NodeId};

fn line_graph_of(topo: &Topology, seed: u64) -> (LineGraph, usize) {
    let mut rng = stream_rng(seed, 0);
    let edges_raw = topo.edges(&mut rng);
    let g = Graph::from_edges(topo.num_nodes(), &edges_raw);
    let edges: Vec<Edge> =
        g.edges().into_iter().map(|(a, b)| Edge::new(NodeId(a), NodeId(b))).collect();
    (LineGraph::of(&edges), g.max_degree())
}

/// E7: phases to quiescence vs `lg n` across graph sizes.
pub fn e7_phases_vs_n(cfg: &ExpConfig) -> Table {
    let sizes: &[usize] = if cfg.quick { &[32, 128] } else { &[32, 64, 128, 256, 512, 1024] };
    let mut t = Table::new(
        "E7 (Lemma 8): coloring phases to quiescence vs network size (ER graphs, palette 2Δ)",
        &["n", "edges", "Δ", "mean phases", "phases/lg n", "valid colorings"],
    );
    for &n in sizes {
        let topo = Topology::ErdosRenyi { n, p: (6.0 / n as f64).min(1.0) };
        let mut phases_sum = 0.0;
        let mut valid = 0usize;
        let mut edges = 0usize;
        let mut delta = 0usize;
        let trials = cfg.trials();
        for trial in 0..trials {
            let (lg, d) = line_graph_of(&topo, cfg.seed.wrapping_add(trial as u64));
            edges = lg.len();
            delta = d;
            let palette = (2 * d.max(1)) as u32;
            let mut rng = stream_rng(cfg.seed ^ 0xE7, trial as u64);
            let res = color_graph(lg.adjacency(), palette, 10_000, &mut rng);
            phases_sum += res.phases_used as f64;
            if res.complete && is_proper_coloring(lg.adjacency(), &res.colors) {
                valid += 1;
            }
        }
        let mean_phases = phases_sum / trials as f64;
        let lg_n = (n as f64).log2();
        t.push_row(vec![
            n.to_string(),
            edges.to_string(),
            delta.to_string(),
            fmt_f(mean_phases),
            fmt_f(mean_phases / lg_n),
            format!("{valid}/{trials}"),
        ]);
    }
    t.push_note(
        "Paper prediction: all vertices decide within O(lg n) phases w.h.p. — \
         the phases/lg n column should stay bounded as n grows.",
    );
    t
}

/// A3: Luby vs greedy edge coloring; palette sensitivity.
pub fn a3_coloring_comparison(cfg: &ExpConfig) -> Table {
    let topos: Vec<(&str, Topology)> = if cfg.quick {
        vec![("star-32", Topology::Star { leaves: 32 })]
    } else {
        vec![
            ("star-64", Topology::Star { leaves: 64 }),
            ("grid-8x8", Topology::Grid { rows: 8, cols: 8 }),
            ("er-128", Topology::ErdosRenyi { n: 128, p: 0.05 }),
            ("cater-16x4", Topology::Caterpillar { spine: 16, legs: 4 }),
        ]
    };
    let mut t = Table::new(
        "A3 (ablation): edge-coloring quality — Luby-2Δ (distributed) vs greedy (centralized)",
        &[
            "topology",
            "edges",
            "Δ",
            "luby colors≤",
            "luby phases",
            "greedy colors",
            "tight-palette phases",
        ],
    );
    for (name, topo) in topos {
        let (lg, delta) = line_graph_of(&topo, cfg.seed);
        let mut rng = stream_rng(cfg.seed ^ 0xA3, 0);
        let palette = (2 * delta.max(1)) as u32;
        let res = color_graph(lg.adjacency(), palette, 10_000, &mut rng);
        assert!(res.complete, "Luby must finish with a 2Δ palette");
        let used: Vec<u32> = res.colors.iter().map(|c| c.unwrap()).collect();
        let luby_used = palette_size(&used);

        let greedy = greedy_edge_coloring(lg.edges());
        let greedy_used = palette_size(&greedy);

        // Tight palette: Δ(G_L) + 1 colors — always proper-colorable, but
        // convergence slows (less slack for random proposals).
        let tight = (lg.max_degree() + 1).max(1) as u32;
        let mut rng2 = stream_rng(cfg.seed ^ 0xA3, 1);
        let res_tight = color_graph(lg.adjacency(), tight, 50_000, &mut rng2);
        t.push_row(vec![
            name.to_string(),
            lg.len().to_string(),
            delta.to_string(),
            luby_used.to_string(),
            res.phases_used.to_string(),
            greedy_used.to_string(),
            if res_tight.complete { res_tight.phases_used.to_string() } else { "DNF".into() },
        ]);
    }
    t.push_note(
        "The 2Δ palette buys fast (O(lg n)-phase) fully-distributed convergence; \
         greedy uses fewer colors but requires global knowledge — exactly the \
         trade-off CGCAST makes (§5.2 footnote 5).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_all_colorings_valid() {
        let t = e7_phases_vs_n(&ExpConfig { quick: true, trials: 2, seed: 6 });
        for row in &t.rows {
            let parts: Vec<&str> = row[5].split('/').collect();
            assert_eq!(parts[0], parts[1], "all colorings valid in {row:?}");
        }
    }

    #[test]
    fn a3_greedy_uses_no_more_than_2delta_minus_1() {
        let t = a3_coloring_comparison(&ExpConfig { quick: true, trials: 1, seed: 6 });
        for row in &t.rows {
            let delta: usize = row[2].parse().unwrap();
            let greedy: usize = row[5].parse().unwrap();
            assert!(greedy < 2 * delta, "greedy bound violated in {row:?}");
        }
    }
}
