//! E9 — §6: the hitting-game lower bound in action.
//!
//! * E9a: the uniform random player's measured rounds track `c²/k`, always
//!   above the Lemma 10 bound `c²/(αk)` — the bound is tight up to `α`.
//! * E9b: the Lemma 11 reduction — CSEEK simulated on two nodes as a game
//!   player — wins in `Õ(c²/k)` rounds, i.e. within poly-log factors of
//!   the lower bound, confirming Theorem 13's near-tightness.

use super::ExpConfig;
use crate::table::{fmt_f, Table};
use crn_core::params::{ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_lowerbounds::analysis::{hitting_game_lower_bound, uniform_player_expected_rounds};
use crn_lowerbounds::game::HittingGame;
use crn_lowerbounds::players::{play, ReductionPlayer, UniformRandomPlayer};
use crn_sim::rng::stream_rng;
use crn_sim::NodeId;

/// E9a: uniform random player vs the Lemma 10/12 bound.
pub fn e9_hitting_game(cfg: &ExpConfig) -> Table {
    let cases: &[(usize, usize)] = if cfg.quick {
        &[(8, 2), (16, 4)]
    } else {
        &[(8, 1), (8, 2), (8, 8), (16, 2), (16, 4), (32, 4), (32, 8), (32, 32)]
    };
    let trials = if cfg.quick { 50 } else { 400 };
    let mut t = Table::new(
        "E9a (Lemmas 10/12): uniform random player vs the hitting-game lower bound",
        &["c", "k", "mean rounds", "E[rounds] = c²/k", "lower bound c²/(αk)", "mean/LB"],
    );
    for &(c, k) in cases {
        let mut total = 0u64;
        for trial in 0..trials {
            let mut rng = stream_rng(cfg.seed ^ 0xE9, trial as u64 * 1000 + c as u64 + k as u64);
            let mut game = HittingGame::new(c, k, &mut rng);
            let mut player = UniformRandomPlayer::new(c);
            total += play(&mut game, &mut player, &mut rng, 10_000_000).expect("must win");
        }
        let mean = total as f64 / trials as f64;
        let lb = hitting_game_lower_bound(c, k);
        t.push_row(vec![
            c.to_string(),
            k.to_string(),
            fmt_f(mean),
            fmt_f(uniform_player_expected_rounds(c, k)),
            fmt_f(lb),
            fmt_f(mean / lb),
        ]);
    }
    t.push_note(
        "No player may beat the lower bound (with probability ≥ 1/2); the uniform \
         player sits a constant factor α ∈ (2, 8] above it, so both curves share \
         the c²/k shape.",
    );
    t
}

/// E9b: CSEEK as a game player via the Lemma 11 reduction.
pub fn e9_reduction(cfg: &ExpConfig) -> Table {
    let cases: &[(usize, usize)] =
        if cfg.quick { &[(8, 2)] } else { &[(8, 1), (8, 2), (16, 2), (16, 4), (32, 4)] };
    let trials = if cfg.quick { 5 } else { 30 };
    let mut t = Table::new(
        "E9b (Lemma 11 + Thm 13): CSEEK simulated as a hitting-game player",
        &["c", "k", "mean rounds (slots)", "lower bound", "rounds/LB", "CSEEK schedule"],
    );
    for &(c, k) in cases {
        let m = ModelInfo { n: 2, c, delta: 1, k, kmax: k };
        let sched = SeekParams::default().schedule(&m);
        let mut total = 0u64;
        let mut wins = 0u64;
        for trial in 0..trials {
            let mut rng =
                stream_rng(cfg.seed ^ 0x9B, trial as u64 * 7919 + c as u64 * 31 + k as u64);
            let mut game = HittingGame::new(c, k, &mut rng);
            let mut player = ReductionPlayer::new(
                CSeek::new(NodeId(0), sched, false),
                CSeek::new(NodeId(1), sched, false),
                cfg.seed ^ (trial as u64) << 8,
            );
            if let Some(rounds) = play(&mut game, &mut player, &mut rng, sched.total_slots()) {
                total += rounds;
                wins += 1;
            }
        }
        let mean = if wins > 0 { total as f64 / wins as f64 } else { f64::NAN };
        let lb = hitting_game_lower_bound(c, k);
        t.push_row(vec![
            c.to_string(),
            k.to_string(),
            format!("{} ({wins}/{trials} wins)", fmt_f(mean)),
            fmt_f(lb),
            fmt_f(mean / lb),
            sched.total_slots().to_string(),
        ]);
    }
    t.push_note(
        "Every slot of the simulated two-node execution proposes one game edge; \
         rounds-to-win therefore lower-bounds CSEEK's two-node discovery time. \
         The ratio column stays poly-logarithmic, matching near-optimality.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9a_uniform_player_respects_bound() {
        let t = e9_hitting_game(&ExpConfig { quick: true, trials: 2, seed: 11 });
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(ratio >= 1.0, "player cannot beat the LB: {row:?}");
            assert!(ratio <= 12.0, "uniform player within ~α of LB: {row:?}");
        }
    }

    #[test]
    fn e9b_reduction_wins() {
        let t = e9_reduction(&ExpConfig { quick: true, trials: 2, seed: 11 });
        for row in &t.rows {
            assert!(row[2].contains("wins"), "row {row:?}");
            assert!(!row[2].contains("(0/"), "reduction should win: {row:?}");
        }
    }
}
