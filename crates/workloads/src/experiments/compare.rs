//! E5 — §1/§2 comparison: CSEEK vs the naive `Õ((c²/k)·Δ)` strawman and
//! the fixed-rate `Õ(c²/k + cΔ/k)` (Zeng-et-al.-class) baseline.
//!
//! The paper's comparison is in Õ-notation: per extra neighbor, naive pays
//! `Θ(c²/k · polylog)` slots while CSEEK pays `Θ(kmax/k · polylog)`. At
//! small Δ the baselines' *constants* win (CSEEK fronts a `(c²/k)·lg³n`
//! sampling phase and its part-two steps cost `lg Δ` slots where the
//! baselines' cost one). The reproducible claims are therefore:
//! (a) the naive/CSEEK ratio *grows with Δ* (E5a) — the asymptotic ordering
//! asserting itself; and (b) on a large crowded star — the workload CSEEK
//! was designed for — CSEEK beats naive outright at reachable scale (E5b).
//! Against the fixed-rate baseline the predicted `c/kmax` advantage is
//! partially eaten by CSEEK's `lg Δ`-slot back-off steps; the tables report
//! this honestly (the paper's Õ hides exactly these factors).

use super::ExpConfig;
use crate::runner::{discovery_trials, summarize_trials, Trial};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::baselines::{
    FixedRateDiscovery, FixedRateSchedule, NaiveDiscovery, NaiveDiscoverySchedule,
};
use crn_core::params::{CountParams, ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::stats::fit_linear;
use crn_sim::topology::Topology;
use crn_sim::StatsMode;

/// The E5 sweep geometry for a config: the Δ points and channel count.
fn e5_sweep(cfg: &ExpConfig) -> (&'static [usize], usize) {
    if cfg.quick {
        (&[16, 64], 8)
    } else {
        (&[32, 64, 128, 256], 16)
    }
}

/// The lighter COUNT configuration E5 runs CSEEK with (see the methodology
/// notes on [`e5_discovery_comparison`]).
fn e5_seek_params() -> SeekParams {
    SeekParams {
        count: CountParams { round_len_factor: 1.0, min_round_len: 8, threshold: 0.08 },
        ..Default::default()
    }
}

/// Per-algorithm trial results for one Δ point of the E5 sweep — shared by
/// the table builder and the confidence-interval regression tests, so both
/// measure exactly the same runs. `with_fixed: false` skips the fixed-rate
/// baseline (returned empty): the ratio tests only read CSEEK and naive,
/// and a full-mode fixed-rate batch is wall-clock they shouldn't pay.
fn e5_point(
    cfg: &ExpConfig,
    delta: usize,
    with_fixed: bool,
) -> (Vec<Trial>, Vec<Trial>, Vec<Trial>) {
    let (deltas, c) = e5_sweep(cfg);
    let core = 2;
    let pinned = ModelInfo {
        n: deltas.last().unwrap() + 1,
        c,
        delta: *deltas.last().unwrap(),
        k: core,
        kmax: core,
    };
    // Approximate stats: the E5 sweep reaches Δ = 256 (the biggest network
    // the experiment suite builds) and every schedule below derives from
    // the *pinned* ModelInfo, not from measured stats — the diameter is
    // never read, so the exact all-source BFS is pure setup cost (results
    // are bit-identical; see the StatsMode audit note on `Scenario::stats`).
    let scn = Scenario::new(
        format!("e5-d{delta}"),
        Topology::Star { leaves: delta },
        ChannelModel::SharedCore { c, core },
        cfg.seed,
    )
    .with_stats(StatsMode::Approximate);
    let built = scn.build().expect("scenario builds");
    let trials = cfg.trials();

    let sched = e5_seek_params().schedule(&pinned);
    let cseek = discovery_trials(
        &built.net,
        |ctx| CSeek::new(ctx.id, sched, false),
        trials,
        cfg.seed ^ 0xE5,
        sched.total_slots(),
    );

    let nsched = NaiveDiscoverySchedule::new(&pinned, 8.0);
    let naive = discovery_trials(
        &built.net,
        |ctx| NaiveDiscovery::new(ctx.id, nsched),
        trials,
        cfg.seed ^ 0xE5,
        nsched.total_slots(),
    );

    let fixed = if with_fixed {
        let fsched = FixedRateSchedule::new(&pinned, 24.0);
        discovery_trials(
            &built.net,
            |ctx| FixedRateDiscovery::new(ctx.id, fsched),
            trials,
            cfg.seed ^ 0xE5,
            fsched.total_slots(),
        )
    } else {
        Vec::new()
    };
    (cseek, naive, fixed)
}

/// E5: three-way discovery comparison across Δ with fitted per-Δ slopes.
///
/// Methodology notes:
/// * Schedules are derived once from the sweep's *upper bounds* on `n` and
///   `Δ` — the paper's model assumes exactly such global upper bounds — so
///   CSEEK's part-one prefix is identical across the sweep and the fitted
///   slope isolates the Δ-dependence.
/// * CSEEK uses a lighter COUNT configuration (round length `lg n` with a
///   floor of 8 instead of 24). A2 shows the accuracy cost is small; the
///   default COUNT constants would shift the crossover Δ* outward by the
///   same factor without changing the slope ordering.
pub fn e5_discovery_comparison(cfg: &ExpConfig) -> Table {
    let (deltas, c) = e5_sweep(cfg);
    let mut t = Table::new(
        format!(
            "E5 (§1–2): discovery completion time, CSEEK vs naive vs fixed-rate (star, c = {c}, k = 2)"
        ),
        &["Δ", "CSEEK", "naive", "fixed-rate", "naive/CSEEK", "fixed/CSEEK"],
    );
    let mut xs = Vec::new();
    let mut y_cseek = Vec::new();
    let mut y_naive = Vec::new();
    let mut y_fixed = Vec::new();
    for &delta in deltas {
        let (cseek, naive, fixed) = e5_point(cfg, delta, true);
        let (cseek_mean, cseek_frac) = summarize_trials(&cseek);
        let (naive_mean, naive_frac) = summarize_trials(&naive);
        let (fixed_mean, fixed_frac) = summarize_trials(&fixed);

        if let (Some(cm), Some(nm), Some(fm)) = (cseek_mean, naive_mean, fixed_mean) {
            xs.push(delta as f64);
            y_cseek.push(cm);
            y_naive.push(nm);
            y_fixed.push(fm);
        }
        let ratio = |a: Option<f64>, b: Option<f64>| match (a, b) {
            (Some(x), Some(y)) if y > 0.0 => fmt_f(x / y),
            _ => "—".into(),
        };
        t.push_row(vec![
            delta.to_string(),
            format!("{} ({:.0}%)", fmt_opt(cseek_mean), cseek_frac * 100.0),
            format!("{} ({:.0}%)", fmt_opt(naive_mean), naive_frac * 100.0),
            format!("{} ({:.0}%)", fmt_opt(fixed_mean), fixed_frac * 100.0),
            ratio(naive_mean, cseek_mean),
            ratio(fixed_mean, cseek_mean),
        ]);
    }
    if xs.len() >= 2 {
        let f_cseek = fit_linear(&xs, &y_cseek);
        let f_naive = fit_linear(&xs, &y_naive);
        let f_fixed = fit_linear(&xs, &y_fixed);
        t.push_note(format!(
            "Fitted slots-per-neighbor slopes: cseek={:.1} naive={:.1} fixed={:.1} — \
             paper shape: naive slope / CSEEK slope ≈ c²/kmax·(1/polylog) and \
             fixed slope / CSEEK slope ≈ c/kmax.",
            f_cseek.slope, f_naive.slope, f_fixed.slope
        ));
        if f_naive.slope > f_cseek.slope {
            let crossover =
                (f_cseek.intercept - f_naive.intercept) / (f_naive.slope - f_cseek.slope);
            t.push_note(format!(
                "Projected naive/CSEEK crossover at Δ* ≈ {crossover:.0}: CSEEK's \
                 Θ((c²/k)·lg³n) sampling prefix dominates below it — the polylog \
                 gap the paper's Õ-notation hides. Beyond Δ*, CSEEK wins and the \
                 gap grows linearly in Δ."
            ));
        }
    }
    t
}

/// E5b (full mode): the crowded-star headline — every hub–leaf overlap sits
/// on two channels shared by *all* leaves (`n_ch = Δ ≥ 8c`), the regime
/// CSEEK's density-weighted part two targets. At Δ = 512 CSEEK beats the
/// naive hopper outright.
pub fn e5b_crowded_headline(cfg: &ExpConfig) -> Table {
    let mut t = Table::new(
        "E5b (§1): crowded star headline — CSEEK vs naive at Δ = 512 (c = 8, k = 2, all overlap crowded)",
        &["algorithm", "mean slots", "success"],
    );
    if cfg.quick {
        t.push_note("Skipped in quick mode (runs ~512-node simulations); run without --quick.");
        return t;
    }
    let delta = 512;
    let c = 8;
    // Approximate stats: at n = 513 this is the largest network the suite
    // builds, and the schedules below consume only n/c/Δ/k/kmax from
    // `built.model` — the diameter is never read, so Exact's all-source
    // BFS would be pure setup cost.
    let scn = Scenario::new(
        "e5b",
        Topology::Star { leaves: delta },
        ChannelModel::CrowdedSplit { c, k: 2, hot: 2, k_hot: 2 },
        cfg.seed,
    )
    .with_stats(StatsMode::Approximate);
    let built = scn.build().expect("scenario builds");
    let trials = cfg.trials().min(3);
    let seek_params = SeekParams {
        count: CountParams { round_len_factor: 1.0, min_round_len: 8, threshold: 0.08 },
        ..Default::default()
    };
    let sched = seek_params.schedule(&built.model);
    let cseek = discovery_trials(
        &built.net,
        |ctx| CSeek::new(ctx.id, sched, false),
        trials,
        cfg.seed ^ 0xB5,
        sched.total_slots(),
    );
    let (cm, cfrac) = summarize_trials(&cseek);
    t.push_row(vec!["CSEEK".into(), fmt_opt(cm), fmt_f(cfrac)]);
    let nsched = NaiveDiscoverySchedule::new(&built.model, 8.0);
    let naive = discovery_trials(
        &built.net,
        |ctx| NaiveDiscovery::new(ctx.id, nsched),
        trials,
        cfg.seed ^ 0xB5,
        nsched.total_slots(),
    );
    let (nm, nfrac) = summarize_trials(&naive);
    t.push_row(vec!["naive".into(), fmt_opt(nm), fmt_f(nfrac)]);
    if let (Some(a), Some(b)) = (cm, nm) {
        t.push_note(format!(
            "CSEEK/naive speedup: {:.2}x — the (kmax/k)·Δ vs (c²/k)·Δ gap made physical.",
            b / a
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crn_sim::stats::mean_ci95;

    #[test]
    fn e5_reports_slopes_for_all_three_algorithms() {
        let t = e5_discovery_comparison(&ExpConfig { quick: true, trials: 6, seed: 3 });
        let note = t.notes.first().expect("slope note");
        for tag in ["cseek=", "naive=", "fixed="] {
            let v: f64 =
                note.split(tag).nth(1).unwrap().split_whitespace().next().unwrap().parse().unwrap();
            assert!(v > 0.0, "fitted slope for {tag} must be positive");
        }
    }

    /// Completion-time samples of the successful trials.
    fn samples(trials: &[Trial]) -> Vec<f64> {
        trials.iter().filter_map(|t| t.completed_at).map(|t| t as f64).collect()
    }

    /// `naive/CSEEK` mean ratio at one Δ with a propagated 95% half-width
    /// (first-order error propagation: relative variances add).
    fn ratio_with_ci(cfg: &ExpConfig, delta: usize) -> (f64, f64) {
        let (cseek, naive, _) = e5_point(cfg, delta, false);
        let (cs, ns) = (samples(&cseek), samples(&naive));
        assert!(!cs.is_empty() && !ns.is_empty(), "Δ={delta}: trials must succeed");
        let (cm, nm) = (mean(&cs), mean(&ns));
        let ratio = nm / cm;
        let rel = (mean_ci95(&ns) / nm).hypot(mean_ci95(&cs) / cm);
        (ratio, ratio * rel)
    }

    fn mean(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn e5_ratio_improves_with_delta_beyond_ci() {
        // The paper's ordering claim — naive's per-neighbor cost grows
        // faster than CSEEK's — asserted as a *statistically significant*
        // direction: the ratio increase from the smallest to the largest
        // quick-mode Δ must exceed the combined 95% uncertainty of the two
        // ratio estimates, not just be positive on one draw.
        let cfg = ExpConfig { quick: true, trials: 6, seed: 3 };
        let (deltas, _) = e5_sweep(&cfg);
        let (r_lo, h_lo) = ratio_with_ci(&cfg, deltas[0]);
        let (r_hi, h_hi) = ratio_with_ci(&cfg, *deltas.last().unwrap());
        assert!(
            r_hi - r_lo > h_lo.hypot(h_hi),
            "naive/CSEEK ratio growth not significant: {r_lo:.2}±{h_lo:.2} -> {r_hi:.2}±{h_hi:.2}"
        );
    }

    #[test]
    fn e5_quick_and_full_modes_agree_in_direction() {
        // Regression guard for the quick-mode proxy: the full-mode sweep
        // (its real Δ range and c, reduced trial count — the direction
        // claim needs the sweep shape, not the trial count) must order the
        // endpoint ratios the same way quick mode does.
        let quick = ExpConfig { quick: true, trials: 4, seed: 3 };
        let full = ExpConfig { quick: false, trials: 2, seed: 3 };
        for cfg in [quick, full] {
            let (deltas, _) = e5_sweep(&cfg);
            let (r_lo, _) = ratio_with_ci(&cfg, deltas[0]);
            let (r_hi, _) = ratio_with_ci(&cfg, *deltas.last().unwrap());
            assert!(
                r_hi > r_lo,
                "{} mode reverses the naive/CSEEK direction: {r_lo:.2} -> {r_hi:.2}",
                if cfg.quick { "quick" } else { "full" }
            );
        }
    }
}
