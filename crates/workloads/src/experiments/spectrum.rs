//! E12 — extension beyond the paper: primitives under primary-user
//! spectrum churn.
//!
//! The paper's model freezes each node's channel set for the whole
//! execution, but the cognitive-radio premise is that *primary users*
//! reclaim licensed spectrum at will (paper §1). The
//! [`crn_sim::spectrum`] subsystem models this as a per-slot busy mask
//! driven by Markov/Poisson primary-traffic processes; E12 measures how
//! gracefully CSEEK, CGCAST, and COUNT degrade as the PU duty cycle grows,
//! and E12b stacks PU churn on top of an in-network jammer — the
//! worst-case "hostile spectrum" regime.

use super::ExpConfig;
use crate::runner::{summarize_trials, Trial, PROBE_EVERY};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::adversary::{JamStrategy, Jammer, NodeRole};
use crn_core::cgcast::CGCast;
use crn_core::count::{CountProtocol, Role};
use crn_core::params::{CountParams, GcastParams, ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_core::SpectrumDynamics;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, GlobalChannel, LocalChannel, NodeId};

/// Mean primary-user busy sojourn, in slots, for the duty-cycle sweeps.
const MEAN_BUSY: f64 = 4.0;

/// The swept PU duty cycles.
fn duties(cfg: &ExpConfig) -> &'static [f64] {
    // 0.8 is the exact ceiling a per-slot chain with mean busy sojourn 4
    // can realize (p_busy = 1); `markov_with_duty` rejects anything above.
    if cfg.quick {
        &[0.0, 0.5, 0.75]
    } else {
        &[0.0, 0.1, 0.25, 0.5, 0.75, 0.8]
    }
}

/// Installs `dynamics` with per-slot history recording off: the arms read
/// only `Counters` aggregates, so the per-slot busy log would be pure
/// allocation overhead across thousands of trial slots.
fn install_spectrum<P: crn_sim::Protocol>(eng: &mut Engine<'_, P>, dynamics: &SpectrumDynamics) {
    eng.set_spectrum(dynamics.clone());
    if let Some(sp) = eng.spectrum_mut() {
        sp.set_record_history(false);
    }
}

/// Per-(primitive, duty) aggregates.
struct Arm {
    success: f64,
    mean_slots: Option<f64>,
    pu_blocked: u64,
    collisions: u64,
}

fn summarize(results: &[Trial], pu_blocked: u64) -> Arm {
    let (mean_slots, success) = summarize_trials(results);
    let n = results.len().max(1) as u64;
    Arm {
        success,
        mean_slots,
        pu_blocked: pu_blocked / n,
        collisions: results.iter().map(|r| r.counters.collisions).sum::<u64>() / n,
    }
}

fn push_arm(t: &mut Table, primitive: &str, duty: f64, arm: Arm) {
    t.push_row(vec![
        primitive.to_string(),
        fmt_f(duty),
        fmt_f(arm.success),
        fmt_opt(arm.mean_slots),
        arm.pu_blocked.to_string(),
        arm.collisions.to_string(),
    ]);
}

/// CSEEK on a shared-core clique: success = every ordered pair discovered
/// within the fixed schedule.
fn cseek_arm(cfg: &ExpConfig, n: usize, dynamics: &SpectrumDynamics) -> Arm {
    let scn = Scenario::new(
        "e12-cseek",
        Topology::Complete { n },
        ChannelModel::SharedCore { c: 6, core: 3 },
        cfg.seed,
    );
    let built = scn.build().expect("scenario builds");
    let sched = SeekParams::default().schedule(&built.model);
    let mut results = Vec::new();
    let mut pu_blocked = 0u64;
    for trial in 0..cfg.trials() {
        let seed = cfg.seed ^ 0xE12 ^ ((trial as u64) << 16);
        let mut eng = Engine::new(&built.net, seed, |ctx| CSeek::new(ctx.id, sched, false));
        install_spectrum(&mut eng, dynamics);
        let mut probe = |_s: u64, e: &Engine<'_, CSeek>| {
            let mut done = true;
            e.for_each_protocol(|v, p| {
                let found = (0..n)
                    .filter(|&w| w != v.index())
                    .filter(|&w| {
                        crn_core::discovery::DiscoveryProtocol::has_discovered(p, NodeId(w as u32))
                    })
                    .count();
                done &= found == n - 1;
            });
            done
        };
        let outcome = eng.run(sched.total_slots(), Some((PROBE_EVERY, &mut probe)));
        pu_blocked += eng.counters().pu_blocked_listens;
        results.push(Trial {
            seed,
            completed_at: outcome.completed_at,
            slots_run: outcome.slots_run,
            counters: eng.counters(),
        });
    }
    summarize(&results, pu_blocked)
}

/// CGCAST from one source on a shared-core clique: success = every node
/// informed when the schedule ends; completion slot probed on the way.
fn cgcast_arm(cfg: &ExpConfig, n: usize, dynamics: &SpectrumDynamics) -> Arm {
    let scn = Scenario::new(
        "e12-cgcast",
        Topology::Complete { n },
        ChannelModel::SharedCore { c: 6, core: 3 },
        cfg.seed ^ 0x51,
    );
    let built = scn.build().expect("scenario builds");
    let d = built.net.stats().diameter.expect("clique is connected");
    let model = ModelInfo::from_stats(&built.net.stats());
    let sched = GcastParams { dissemination_phases: d, ..Default::default() }.schedule(&model);
    let mut results = Vec::new();
    let mut pu_blocked = 0u64;
    for trial in 0..cfg.trials() {
        let seed = cfg.seed ^ 0xE12B ^ ((trial as u64) << 16);
        let mut eng = Engine::new(&built.net, seed, |ctx| {
            CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(5))
        });
        install_spectrum(&mut eng, dynamics);
        let mut probe = |_s: u64, e: &Engine<'_, CGCast>| {
            let mut done = true;
            e.for_each_protocol(|_, p| done &= p.is_informed());
            done
        };
        let outcome = eng.run(sched.total_slots(), Some((PROBE_EVERY, &mut probe)));
        pu_blocked += eng.counters().pu_blocked_listens;
        results.push(Trial {
            seed,
            completed_at: outcome.completed_at,
            slots_run: outcome.slots_run,
            counters: eng.counters(),
        });
    }
    summarize(&results, pu_blocked)
}

/// The COUNT arena of E1: one listener adjacent to `m` broadcasters on one
/// shared channel (plus private padding). Success = estimate in `[m, 4m]`
/// (Lemma 1's guarantee); COUNT has a fixed schedule, so the slot column
/// reports the schedule length.
fn count_arm(cfg: &ExpConfig, m: usize, dynamics: &SpectrumDynamics) -> Arm {
    let net = super::count::count_arena(m);
    let model = ModelInfo { n: 256, c: 2, delta: 256, k: 1, kmax: 1 };
    let sched = CountParams::default().schedule(&model);
    let mut results = Vec::new();
    let mut pu_blocked = 0u64;
    for trial in 0..cfg.trials() {
        let seed = cfg.seed ^ 0xC0 ^ ((trial as u64) << 16);
        let mut eng = Engine::new(&net, seed, |ctx| {
            let role = if ctx.id == NodeId(0) { Role::Listener } else { Role::Broadcaster };
            // E1's arena alternates label order, so the shared channel's
            // local label differs per node.
            let ch = net.global_to_local(ctx.id, GlobalChannel(0)).unwrap_or(LocalChannel(0));
            CountProtocol::new(ctx.id, role, sched, ch)
        });
        install_spectrum(&mut eng, dynamics);
        eng.run_to_completion(sched.total_slots());
        pu_blocked += eng.counters().pu_blocked_listens;
        let est = eng.counters();
        let estimate = {
            let outs = eng.into_outputs();
            outs[0].estimate as usize
        };
        let ok = estimate >= m && estimate <= 4 * m;
        results.push(Trial {
            seed,
            completed_at: ok.then_some(sched.total_slots()),
            slots_run: sched.total_slots(),
            counters: est,
        });
    }
    summarize(&results, pu_blocked)
}

/// E12: CSEEK / CGCAST / COUNT success and completion slots vs primary-user
/// duty cycle (Markov on/off channels, mean busy sojourn 4 slots).
pub fn e12_pu_churn(cfg: &ExpConfig) -> Table {
    let n_seek = if cfg.quick { 6 } else { 8 };
    let n_gcast = if cfg.quick { 5 } else { 6 };
    let m_count = if cfg.quick { 8 } else { 16 };
    let mut t = Table::new(
        format!(
            "E12 (extension): primitives under primary-user churn — Markov on/off channels, \
             mean busy sojourn {MEAN_BUSY} slots"
        ),
        &[
            "primitive",
            "PU duty cycle",
            "success",
            "mean slots to complete",
            "PU-blocked listens/trial",
            "collisions/trial",
        ],
    );
    for &duty in duties(cfg) {
        let dynamics = SpectrumDynamics::markov_with_duty(duty, MEAN_BUSY);
        push_arm(&mut t, "CSEEK", duty, cseek_arm(cfg, n_seek, &dynamics));
        push_arm(&mut t, "CGCAST", duty, cgcast_arm(cfg, n_gcast, &dynamics));
        push_arm(&mut t, &format!("COUNT (m={m_count})"), duty, count_arm(cfg, m_count, &dynamics));
    }
    t.push_note(
        "Every channel is an on/off PU process; a busy channel swallows broadcasts and \
         turns listens into noise. Schedules are sized for a clean spectrum, so success \
         degrades and completion slides right as the duty cycle grows — channel-set \
         redundancy (c > k) is what keeps the primitives alive at moderate churn.",
    );
    t
}

/// E12b: PU churn stacked on an in-network sweep jammer (the robustness
/// worst case: hostile spectrum *and* a hostile node).
pub fn e12b_churn_plus_jamming(cfg: &ExpConfig) -> Table {
    let honest = if cfg.quick { 5 } else { 7 };
    let c = 6;
    let core = 3;
    let mut t = Table::new(
        "E12b (extension): CSEEK under combined PU churn and sweep jamming".to_string(),
        &["PU duty cycle", "jammers", "success", "mean slots to complete", "collisions/trial"],
    );
    for &duty in duties(cfg) {
        let dynamics = SpectrumDynamics::markov_with_duty(duty, MEAN_BUSY);
        for jammers in [0usize, 1] {
            let n = honest + jammers;
            let scn = Scenario::new(
                format!("e12b-d{duty}-j{jammers}"),
                Topology::Complete { n },
                ChannelModel::SharedCore { c, core },
                cfg.seed ^ 0xB0,
            );
            let built = scn.build().expect("scenario builds");
            let sched = SeekParams::default().schedule(&built.model);
            let mut results = Vec::new();
            for trial in 0..cfg.trials() {
                let seed = cfg.seed ^ 0xB12 ^ ((trial as u64) << 16);
                let mut eng = Engine::new(&built.net, seed, |ctx| {
                    if ctx.id.index() >= honest {
                        NodeRole::Adversary(Jammer::new(c as u16, JamStrategy::Sweep, ctx.id))
                    } else {
                        NodeRole::Honest(CSeek::new(ctx.id, sched, false))
                    }
                });
                install_spectrum(&mut eng, &dynamics);
                let mut probe = |_s: u64, e: &Engine<'_, NodeRole<CSeek>>| {
                    let mut done = true;
                    e.for_each_protocol(|v, p| {
                        if let Some(cs) = p.honest() {
                            let found = (0..honest)
                                .filter(|&w| w != v.index())
                                .filter(|&w| {
                                    crn_core::discovery::DiscoveryProtocol::has_discovered(
                                        cs,
                                        NodeId(w as u32),
                                    )
                                })
                                .count();
                            done &= found == honest - 1;
                        }
                    });
                    done
                };
                let outcome = eng.run(sched.total_slots(), Some((PROBE_EVERY, &mut probe)));
                results.push(Trial {
                    seed,
                    completed_at: outcome.completed_at,
                    slots_run: outcome.slots_run,
                    counters: eng.counters(),
                });
            }
            let (mean, frac) = summarize_trials(&results);
            let collisions =
                results.iter().map(|r| r.counters.collisions).sum::<u64>() / results.len() as u64;
            t.push_row(vec![
                fmt_f(duty),
                jammers.to_string(),
                fmt_f(frac),
                fmt_opt(mean),
                collisions.to_string(),
            ]);
        }
    }
    t.push_note(
        "The jammer attacks from inside the network (always transmitting, sweeping local \
         channels) while the PU process squeezes the spectrum underneath; the two compose — \
         discovery that tolerates either alone can fail under both, which is the regime \
         robustness provisioning must size for.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig { quick: true, trials: 2, seed: 31 }
    }

    #[test]
    fn e12_clean_spectrum_arm_completes() {
        let t = e12_pu_churn(&cfg());
        // Row 0 is CSEEK at duty 0: a clean clique must mostly succeed.
        assert_eq!(t.rows[0][0], "CSEEK");
        let frac: f64 = t.rows[0][2].parse().unwrap();
        assert!(frac > 0.4, "clean-spectrum CSEEK should complete: {:?}", t.rows[0]);
        // And the duty-0 arms must observe zero PU-blocked listens.
        for row in t.rows.iter().take(3) {
            assert_eq!(row[4], "0", "duty 0 cannot block anything: {row:?}");
        }
    }

    #[test]
    fn e12_churn_bites() {
        let t = e12_pu_churn(&cfg());
        // At the top duty (last CSEEK row) either success drops or PU
        // pressure is visibly non-zero.
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last_cseek = &t.rows[t.rows.len() - 3];
        let frac: f64 = last_cseek[2].parse().unwrap();
        let blocked: u64 = last_cseek[4].parse().unwrap();
        assert!(blocked > 0, "a 50% duty cycle must block listens: {last_cseek:?}");
        assert!(frac <= first, "churn should not improve discovery");
    }

    #[test]
    fn e12b_produces_all_arms() {
        let t = e12b_churn_plus_jamming(&cfg());
        assert_eq!(t.rows.len(), duties(&cfg()).len() * 2, "duty × jammer grid");
    }
}
