//! E12 — extension beyond the paper: primitives under primary-user
//! spectrum churn.
//!
//! The paper's model freezes each node's channel set for the whole
//! execution, but the cognitive-radio premise is that *primary users*
//! reclaim licensed spectrum at will (paper §1). The
//! [`crn_sim::spectrum`] subsystem models this as a per-slot busy mask
//! driven by Markov/Poisson primary-traffic processes; E12 measures how
//! gracefully CSEEK, CGCAST, and COUNT degrade as the PU duty cycle grows,
//! and E12b stacks PU churn on top of an in-network jammer — the
//! worst-case "hostile spectrum" regime.
//!
//! Both sweeps run as [`crate::campaign`] campaigns (see
//! [`super::campaigns`]): each `(primitive, duty)` point is an arm, each
//! trial a unit, and the table builders below consume the campaign
//! report. This module owns the physics — scenario setup, per-unit trial
//! execution over a reusable [`EngineCell`], and table presentation.

use super::campaigns;
use super::ExpConfig;
use crate::campaign::FaultPlan;
use crate::runner::{EngineCell, Trial, TrialOpts};
use crate::scenario::{Built, Scenario};
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::adversary::{JamStrategy, Jammer, NodeRole};
use crn_core::cgcast::CGCast;
use crn_core::count::{CountProtocol, Role};
use crn_core::params::{
    CountParams, CountSchedule, GcastParams, GcastSchedule, ModelInfo, SeekParams, SeekSchedule,
};
use crn_core::seek::CSeek;
use crn_core::SpectrumDynamics;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, GlobalChannel, LocalChannel, Network, NodeId, Protocol};

/// Mean primary-user busy sojourn, in slots, for the duty-cycle sweeps.
const MEAN_BUSY: f64 = 4.0;

/// The swept PU duty cycles.
pub(super) fn duties(cfg: &ExpConfig) -> &'static [f64] {
    // 0.8 is the exact ceiling a per-slot chain with mean busy sojourn 4
    // can realize (p_busy = 1); `markov_with_duty` rejects anything above.
    if cfg.quick {
        &[0.0, 0.5, 0.75]
    } else {
        &[0.0, 0.1, 0.25, 0.5, 0.75, 0.8]
    }
}

/// The Markov on/off PU process at one swept duty cycle.
pub(super) fn dynamics_at(duty: f64) -> SpectrumDynamics {
    SpectrumDynamics::markov_with_duty(duty, MEAN_BUSY)
}

/// E12's sweep sizes: `(n_seek, n_gcast, m_count)`.
pub(super) fn e12_sizes(cfg: &ExpConfig) -> (usize, usize, usize) {
    if cfg.quick {
        (6, 5, 8)
    } else {
        (8, 6, 16)
    }
}

/// The CSEEK arena: a shared-core clique of `n` nodes.
pub(super) fn cseek_setup(cfg: &ExpConfig, n: usize) -> (Built, SeekSchedule) {
    let scn = Scenario::new(
        "e12-cseek",
        Topology::Complete { n },
        ChannelModel::SharedCore { c: 6, core: 3 },
        cfg.seed,
    );
    let built = scn.build().expect("scenario builds");
    let sched = SeekParams::default().schedule(&built.model);
    (built, sched)
}

/// The CGCAST arena: a shared-core clique with diameter-sized phases.
pub(super) fn cgcast_setup(cfg: &ExpConfig, n: usize) -> (Built, GcastSchedule) {
    let scn = Scenario::new(
        "e12-cgcast",
        Topology::Complete { n },
        ChannelModel::SharedCore { c: 6, core: 3 },
        cfg.seed ^ 0x51,
    );
    let built = scn.build().expect("scenario builds");
    let d = built.net.stats().diameter.expect("clique is connected");
    let model = ModelInfo::from_stats(&built.net.stats());
    let sched = GcastParams { dissemination_phases: d, ..Default::default() }.schedule(&model);
    (built, sched)
}

/// The COUNT arena of E1: one listener adjacent to `m` broadcasters on one
/// shared channel (plus private padding).
pub(super) fn count_setup(m: usize) -> (Network, CountSchedule) {
    let net = super::count::count_arena(m);
    let model = ModelInfo { n: 256, c: 2, delta: 256, k: 1, kmax: 1 };
    let sched = CountParams::default().schedule(&model);
    (net, sched)
}

/// The E12b arena: `n` nodes total (honest + jammers) on a shared core.
pub(super) fn e12b_setup(cfg: &ExpConfig, n: usize) -> (Built, SeekSchedule) {
    let scn = Scenario::new(
        format!("e12b-n{n}"),
        Topology::Complete { n },
        ChannelModel::SharedCore { c: E12B_C, core: 3 },
        cfg.seed ^ 0xB0,
    );
    let built = scn.build().expect("scenario builds");
    let sched = SeekParams::default().schedule(&built.model);
    (built, sched)
}

/// Channels per node in the E12b arena.
pub(super) const E12B_C: usize = 6;

/// Per-trial engine seeds — one formula per arm family, all preserved
/// from the original hand-rolled loops so results stay bit-identical.
pub(super) fn cseek_seed(cfg: &ExpConfig, trial: usize) -> u64 {
    cfg.seed ^ 0xE12 ^ ((trial as u64) << 16)
}
/// See [`cseek_seed`].
pub(super) fn cgcast_seed(cfg: &ExpConfig, trial: usize) -> u64 {
    cfg.seed ^ 0xE12B ^ ((trial as u64) << 16)
}
/// See [`cseek_seed`].
pub(super) fn count_seed(cfg: &ExpConfig, trial: usize) -> u64 {
    cfg.seed ^ 0xC0 ^ ((trial as u64) << 16)
}
/// See [`cseek_seed`].
pub(super) fn e12b_seed(cfg: &ExpConfig, trial: usize) -> u64 {
    cfg.seed ^ 0xB12 ^ ((trial as u64) << 16)
}

/// One CSEEK trial on `net` (success = every ordered pair discovered
/// within the fixed schedule), over a reusable engine cell.
pub(super) fn cseek_trial<'net>(
    cell: &mut EngineCell<'net, CSeek>,
    net: &'net Network,
    sched: SeekSchedule,
    n: usize,
    seed: u64,
    opts: &TrialOpts,
) -> Trial {
    cell.run_trial(
        net,
        |ctx| CSeek::new(ctx.id, sched, false),
        seed,
        sched.total_slots(),
        opts,
        |_s, e: &Engine<'_, CSeek>| {
            let mut done = true;
            e.for_each_protocol(|v, p| {
                let found = (0..n)
                    .filter(|&w| w != v.index())
                    .filter(|&w| {
                        crn_core::discovery::DiscoveryProtocol::has_discovered(p, NodeId(w as u32))
                    })
                    .count();
                done &= found == n - 1;
            });
            done
        },
    )
}

/// One CGCAST trial from source node 0 (success = every node informed
/// when the schedule ends), over a reusable engine cell.
pub(super) fn cgcast_trial<'net>(
    cell: &mut EngineCell<'net, CGCast>,
    net: &'net Network,
    sched: GcastSchedule,
    seed: u64,
    opts: &TrialOpts,
) -> Trial {
    cell.run_trial(
        net,
        |ctx| CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(5)),
        seed,
        sched.total_slots(),
        opts,
        |_s, e: &Engine<'_, CGCast>| {
            let mut done = true;
            e.for_each_protocol(|_, p| done &= p.is_informed());
            done
        },
    )
}

/// One COUNT trial (success = listener estimate in `[m, 4m]`, Lemma 1's
/// guarantee). COUNT has a fixed schedule and its estimate is only final
/// once all rounds have run, so the probe fires — if at all — at the
/// run's closing probe evaluation; the slot columns are normalized to the
/// schedule length, exactly as the pre-campaign arm reported them.
pub(super) fn count_trial<'net>(
    cell: &mut EngineCell<'net, CountProtocol>,
    net: &'net Network,
    sched: CountSchedule,
    m: usize,
    seed: u64,
    opts: &TrialOpts,
) -> Trial {
    let mut t = cell.run_trial(
        net,
        |ctx| {
            let role = if ctx.id == NodeId(0) { Role::Listener } else { Role::Broadcaster };
            // E1's arena alternates label order, so the shared channel's
            // local label differs per node.
            let ch = net.global_to_local(ctx.id, GlobalChannel(0)).unwrap_or(LocalChannel(0));
            CountProtocol::new(ctx.id, role, sched, ch)
        },
        seed,
        sched.total_slots(),
        opts,
        |_s, e: &Engine<'_, CountProtocol>| {
            let p = e.protocol(NodeId(0));
            if !p.is_complete() {
                return false;
            }
            let est = p.estimate() as usize;
            est >= m && est <= 4 * m
        },
    );
    t.completed_at = t.completed_at.map(|_| sched.total_slots());
    t.slots_run = sched.total_slots();
    t
}

/// One E12b trial: CSEEK among `honest` nodes while the remaining nodes
/// sweep-jam, over a reusable engine cell.
pub(super) fn e12b_trial<'net>(
    cell: &mut EngineCell<'net, NodeRole<CSeek>>,
    net: &'net Network,
    sched: SeekSchedule,
    honest: usize,
    seed: u64,
    opts: &TrialOpts,
) -> Trial {
    cell.run_trial(
        net,
        |ctx| {
            if ctx.id.index() >= honest {
                NodeRole::Adversary(Jammer::new(E12B_C as u16, JamStrategy::Sweep, ctx.id))
            } else {
                NodeRole::Honest(CSeek::new(ctx.id, sched, false))
            }
        },
        seed,
        sched.total_slots(),
        opts,
        |_s, e: &Engine<'_, NodeRole<CSeek>>| {
            let mut done = true;
            e.for_each_protocol(|v, p| {
                if let Some(cs) = p.honest() {
                    let found = (0..honest)
                        .filter(|&w| w != v.index())
                        .filter(|&w| {
                            crn_core::discovery::DiscoveryProtocol::has_discovered(
                                cs,
                                NodeId(w as u32),
                            )
                        })
                        .count();
                    done &= found == honest - 1;
                }
            });
            done
        },
    )
}

/// Per-(primitive, duty) aggregates.
struct Arm {
    success: f64,
    mean_slots: Option<f64>,
    pu_blocked: u64,
    collisions: u64,
}

fn summarize(results: &[Trial]) -> Arm {
    let (mean_slots, success) = crate::runner::summarize_trials(results);
    let n = results.len().max(1) as u64;
    Arm {
        success,
        mean_slots,
        pu_blocked: results.iter().map(|r| r.counters.pu_blocked_listens).sum::<u64>() / n,
        collisions: results.iter().map(|r| r.counters.collisions).sum::<u64>() / n,
    }
}

fn push_arm(t: &mut Table, primitive: &str, duty: f64, arm: Arm) {
    t.push_row(vec![
        primitive.to_string(),
        fmt_f(duty),
        fmt_f(arm.success),
        fmt_opt(arm.mean_slots),
        arm.pu_blocked.to_string(),
        arm.collisions.to_string(),
    ]);
}

/// Builds the E12 table from a finished campaign report (arm order:
/// `[CSEEK, CGCAST, COUNT] × duty`, as laid out by
/// [`campaigns::e12_spec`]).
pub(super) fn e12_table(cfg: &ExpConfig, report: &crate::campaign::CampaignReport) -> Table {
    let (_, _, m_count) = e12_sizes(cfg);
    let mut t = Table::new(
        format!(
            "E12 (extension): primitives under primary-user churn — Markov on/off channels, \
             mean busy sojourn {MEAN_BUSY} slots"
        ),
        &[
            "primitive",
            "PU duty cycle",
            "success",
            "mean slots to complete",
            "PU-blocked listens/trial",
            "collisions/trial",
        ],
    );
    for (d, &duty) in duties(cfg).iter().enumerate() {
        let outputs = |kind: usize| report.done_outputs(d * 3 + kind);
        push_arm(&mut t, "CSEEK", duty, summarize(&outputs(0)));
        push_arm(&mut t, "CGCAST", duty, summarize(&outputs(1)));
        push_arm(&mut t, &format!("COUNT (m={m_count})"), duty, summarize(&outputs(2)));
    }
    t.push_note(
        "Every channel is an on/off PU process; a busy channel swallows broadcasts and \
         turns listens into noise. Schedules are sized for a clean spectrum, so success \
         degrades and completion slides right as the duty cycle grows — channel-set \
         redundancy (c > k) is what keeps the primitives alive at moderate churn.",
    );
    t
}

/// Builds the E12b table from a finished campaign report (arm order:
/// `jammers ∈ {0, 1}` per duty, as laid out by [`campaigns::e12b_spec`]).
pub(super) fn e12b_table(cfg: &ExpConfig, report: &crate::campaign::CampaignReport) -> Table {
    let mut t = Table::new(
        "E12b (extension): CSEEK under combined PU churn and sweep jamming".to_string(),
        &["PU duty cycle", "jammers", "success", "mean slots to complete", "collisions/trial"],
    );
    for (d, &duty) in duties(cfg).iter().enumerate() {
        for jammers in [0usize, 1] {
            let results = report.done_outputs(d * 2 + jammers);
            let (mean, frac) = crate::runner::summarize_trials(&results);
            let collisions = results.iter().map(|r| r.counters.collisions).sum::<u64>()
                / results.len().max(1) as u64;
            t.push_row(vec![
                fmt_f(duty),
                jammers.to_string(),
                fmt_f(frac),
                fmt_opt(mean),
                collisions.to_string(),
            ]);
        }
    }
    t.push_note(
        "The jammer attacks from inside the network (always transmitting, sweeping local \
         channels) while the PU process squeezes the spectrum underneath; the two compose — \
         discovery that tolerates either alone can fail under both, which is the regime \
         robustness provisioning must size for.",
    );
    t
}

/// E12: CSEEK / CGCAST / COUNT success and completion slots vs primary-user
/// duty cycle (Markov on/off channels, mean busy sojourn 4 slots). Runs as
/// an in-memory campaign (no journal, no faults) — the resumable variant
/// is [`campaigns::run_e12`].
pub fn e12_pu_churn(cfg: &ExpConfig) -> Table {
    let report = campaigns::run_e12(cfg, campaigns::default_threads(cfg), None, &FaultPlan::none())
        .expect("in-memory campaign cannot fail on journal I/O");
    e12_table(cfg, &report)
}

/// E12b: PU churn stacked on an in-network sweep jammer (the robustness
/// worst case: hostile spectrum *and* a hostile node). Runs as an
/// in-memory campaign; the resumable variant is [`campaigns::run_e12b`].
pub fn e12b_churn_plus_jamming(cfg: &ExpConfig) -> Table {
    let report =
        campaigns::run_e12b(cfg, campaigns::default_threads(cfg), None, &FaultPlan::none())
            .expect("in-memory campaign cannot fail on journal I/O");
    e12b_table(cfg, &report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExpConfig {
        ExpConfig { quick: true, trials: 2, seed: 31 }
    }

    #[test]
    fn e12_clean_spectrum_arm_completes() {
        let t = e12_pu_churn(&cfg());
        // Row 0 is CSEEK at duty 0: a clean clique must mostly succeed.
        assert_eq!(t.rows[0][0], "CSEEK");
        let frac: f64 = t.rows[0][2].parse().unwrap();
        assert!(frac > 0.4, "clean-spectrum CSEEK should complete: {:?}", t.rows[0]);
        // And the duty-0 arms must observe zero PU-blocked listens.
        for row in t.rows.iter().take(3) {
            assert_eq!(row[4], "0", "duty 0 cannot block anything: {row:?}");
        }
    }

    #[test]
    fn e12_churn_bites() {
        let t = e12_pu_churn(&cfg());
        // At the top duty (last CSEEK row) either success drops or PU
        // pressure is visibly non-zero.
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last_cseek = &t.rows[t.rows.len() - 3];
        let frac: f64 = last_cseek[2].parse().unwrap();
        let blocked: u64 = last_cseek[4].parse().unwrap();
        assert!(blocked > 0, "a 50% duty cycle must block listens: {last_cseek:?}");
        assert!(frac <= first, "churn should not improve discovery");
    }

    #[test]
    fn e12b_produces_all_arms() {
        let t = e12b_churn_plus_jamming(&cfg());
        assert_eq!(t.rows.len(), duties(&cfg()).len() * 2, "duty × jammer grid");
    }
}
