//! Resumable campaign ports of the sweep experiments.
//!
//! Each port expresses one experiment sweep as a [`CampaignSpec`] — one
//! arm per sweep point, one unit per trial — whose units run over
//! per-worker [`EngineCell`]s and emit [`crate::campaign::ArmResult`].
//! That buys the sweeps everything the campaign layer owns: an
//! append-only journal with exact checkpoint/resume, retry/backoff on
//! transient failures, per-arm circuit breakers, and deterministic fault
//! injection for testing — while unit outputs stay bit-identical to the
//! plain runners, because a unit is a pure function of `(arm, trial)`
//! and engine reuse is observationally invisible.
//!
//! The table builders in [`super::spectrum`] / [`super::cseek_scaling`]
//! consume the reports, so `run_experiment("e2"|"e12", ...)` runs through
//! this machinery with `journal = None` and [`FaultPlan::none`].

use super::{cseek_scaling, spectrum, ExpConfig};
use crate::campaign::{
    run_campaign_observed, ArmResult, ArmSpec, CampaignError, CampaignObserver, CampaignReport,
    CampaignSpec, FaultPlan,
};
use crate::runner::{EngineCell, TrialOpts};
use crate::scenario::Built;
use crn_core::adversary::NodeRole;
use crn_core::cgcast::CGCast;
use crn_core::count::CountProtocol;
use crn_core::discovery::all_discovered;
use crn_core::params::{SeekParams, SeekSchedule};
use crn_core::seek::CSeek;
use std::path::Path;

/// Default wave parallelism for the campaign entry points: the machine's
/// available parallelism (never affects results — only wall-clock).
pub fn default_threads(_cfg: &ExpConfig) -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
}

/// The E2 campaign: one arm per swept `c`, `cfg.trials()` units each.
pub fn e2_spec(cfg: &ExpConfig) -> CampaignSpec {
    let arms = cseek_scaling::e2_cs(cfg)
        .iter()
        .map(|c| ArmSpec::new(format!("c={c}"), cfg.trials()))
        .collect();
    CampaignSpec::new("e2-cseek-vs-c", arms, cfg.seed)
}

/// Runs (or resumes, when `journal` names an existing file) the E2 sweep
/// as a campaign. Unit outputs are bit-identical to
/// [`crate::runner::discovery_trials`] on the same scenarios.
pub fn run_e2(
    cfg: &ExpConfig,
    threads: usize,
    journal: Option<&Path>,
    fault: &FaultPlan,
) -> Result<CampaignReport, CampaignError> {
    run_e2_observed(cfg, threads, journal, fault, &())
}

/// [`run_e2`] with a [`CampaignObserver`] attached (progress snapshots +
/// cooperative cancel) — the entry point the campaign server schedules.
pub fn run_e2_observed(
    cfg: &ExpConfig,
    threads: usize,
    journal: Option<&Path>,
    fault: &FaultPlan,
    observer: &dyn CampaignObserver,
) -> Result<CampaignReport, CampaignError> {
    let ctxs: Vec<(Built, SeekSchedule)> = cseek_scaling::e2_cs(cfg)
        .iter()
        .map(|&c| {
            let built = cseek_scaling::e2_scenario(cfg.quick, c, cfg.seed)
                .build()
                .expect("scenario builds");
            let sched = SeekParams::default().schedule(&built.model);
            (built, sched)
        })
        .collect();
    let opts = TrialOpts::default();
    let spec = e2_spec(cfg);
    run_campaign_observed(
        &spec,
        threads,
        journal,
        fault,
        observer,
        || ctxs.iter().map(|_| EngineCell::new()).collect::<Vec<EngineCell<'_, CSeek>>>(),
        |cells, u| {
            let (built, sched) = &ctxs[u.arm];
            let seed = (cfg.seed ^ 0xE2).wrapping_add(u.trial as u64);
            let output = cells[u.arm].run_trial(
                &built.net,
                |ctx| CSeek::new(ctx.id, *sched, false),
                seed,
                sched.total_slots(),
                &opts,
                |_s, e| all_discovered(&built.net, e),
            );
            ArmResult::Done { output }
        },
    )
}

/// The E12 campaign: arms laid out `[CSEEK, CGCAST, COUNT]` per swept
/// duty cycle, `cfg.trials()` units each.
pub fn e12_spec(cfg: &ExpConfig) -> CampaignSpec {
    let (n_seek, n_gcast, m_count) = spectrum::e12_sizes(cfg);
    let arms = spectrum::duties(cfg)
        .iter()
        .flat_map(|&duty| {
            [
                ArmSpec::new(format!("cseek n={n_seek} duty={duty}"), cfg.trials()),
                ArmSpec::new(format!("cgcast n={n_gcast} duty={duty}"), cfg.trials()),
                ArmSpec::new(format!("count m={m_count} duty={duty}"), cfg.trials()),
            ]
        })
        .collect();
    CampaignSpec::new("e12-pu-churn", arms, cfg.seed)
}

/// Runs (or resumes) the E12 sweep as a campaign. Each worker holds one
/// long-lived engine per primitive (three scenario networks), re-armed
/// per unit — the engine-reuse win the discovery sweeps already had,
/// extended to the spectrum experiments.
pub fn run_e12(
    cfg: &ExpConfig,
    threads: usize,
    journal: Option<&Path>,
    fault: &FaultPlan,
) -> Result<CampaignReport, CampaignError> {
    run_e12_observed(cfg, threads, journal, fault, &())
}

/// [`run_e12`] with a [`CampaignObserver`] attached.
pub fn run_e12_observed(
    cfg: &ExpConfig,
    threads: usize,
    journal: Option<&Path>,
    fault: &FaultPlan,
    observer: &dyn CampaignObserver,
) -> Result<CampaignReport, CampaignError> {
    let (n_seek, n_gcast, m_count) = spectrum::e12_sizes(cfg);
    let (seek_built, seek_sched) = spectrum::cseek_setup(cfg, n_seek);
    let (gcast_built, gcast_sched) = spectrum::cgcast_setup(cfg, n_gcast);
    let (count_net, count_sched) = spectrum::count_setup(m_count);
    let opts: Vec<TrialOpts> = spectrum::duties(cfg)
        .iter()
        .map(|&d| TrialOpts::with_spectrum(spectrum::dynamics_at(d)))
        .collect();
    let spec = e12_spec(cfg);

    struct Cells<'net> {
        cseek: EngineCell<'net, CSeek>,
        cgcast: EngineCell<'net, CGCast>,
        count: EngineCell<'net, CountProtocol>,
    }

    run_campaign_observed(
        &spec,
        threads,
        journal,
        fault,
        observer,
        || Cells { cseek: EngineCell::new(), cgcast: EngineCell::new(), count: EngineCell::new() },
        |cells, u| {
            let o = &opts[u.arm / 3];
            let output = match u.arm % 3 {
                0 => spectrum::cseek_trial(
                    &mut cells.cseek,
                    &seek_built.net,
                    seek_sched,
                    n_seek,
                    spectrum::cseek_seed(cfg, u.trial),
                    o,
                ),
                1 => spectrum::cgcast_trial(
                    &mut cells.cgcast,
                    &gcast_built.net,
                    gcast_sched,
                    spectrum::cgcast_seed(cfg, u.trial),
                    o,
                ),
                _ => spectrum::count_trial(
                    &mut cells.count,
                    &count_net,
                    count_sched,
                    m_count,
                    spectrum::count_seed(cfg, u.trial),
                    o,
                ),
            };
            ArmResult::Done { output }
        },
    )
}

/// Honest-node count of the E12b arena.
fn e12b_honest(cfg: &ExpConfig) -> usize {
    if cfg.quick {
        5
    } else {
        7
    }
}

/// The E12b campaign: arms laid out `jammers ∈ {0, 1}` per swept duty
/// cycle, `cfg.trials()` units each.
pub fn e12b_spec(cfg: &ExpConfig) -> CampaignSpec {
    let honest = e12b_honest(cfg);
    let arms = spectrum::duties(cfg)
        .iter()
        .flat_map(|&duty| {
            [0usize, 1].map(|jammers| {
                ArmSpec::new(
                    format!("cseek honest={honest} jammers={jammers} duty={duty}"),
                    cfg.trials(),
                )
            })
        })
        .collect();
    CampaignSpec::new("e12b-churn-plus-jamming", arms, cfg.seed)
}

/// Runs (or resumes) the E12b sweep as a campaign. The two networks (with
/// and without the jammer node) get one engine cell each per worker.
pub fn run_e12b(
    cfg: &ExpConfig,
    threads: usize,
    journal: Option<&Path>,
    fault: &FaultPlan,
) -> Result<CampaignReport, CampaignError> {
    run_e12b_observed(cfg, threads, journal, fault, &())
}

/// [`run_e12b`] with a [`CampaignObserver`] attached.
pub fn run_e12b_observed(
    cfg: &ExpConfig,
    threads: usize,
    journal: Option<&Path>,
    fault: &FaultPlan,
    observer: &dyn CampaignObserver,
) -> Result<CampaignReport, CampaignError> {
    let honest = e12b_honest(cfg);
    let setups = [spectrum::e12b_setup(cfg, honest), spectrum::e12b_setup(cfg, honest + 1)];
    let opts: Vec<TrialOpts> = spectrum::duties(cfg)
        .iter()
        .map(|&d| TrialOpts::with_spectrum(spectrum::dynamics_at(d)))
        .collect();
    let spec = e12b_spec(cfg);
    run_campaign_observed(
        &spec,
        threads,
        journal,
        fault,
        observer,
        || [EngineCell::<'_, NodeRole<CSeek>>::new(), EngineCell::new()],
        |cells, u| {
            let jammers = u.arm % 2;
            let (built, sched) = &setups[jammers];
            let output = spectrum::e12b_trial(
                &mut cells[jammers],
                &built.net,
                *sched,
                honest,
                spectrum::e12b_seed(cfg, u.trial),
                &opts[u.arm / 2],
            );
            ArmResult::Done { output }
        },
    )
}

/// One named campaign kind the server (or any other front-end) can run by
/// name: a spec builder (for config hashing and queue previews) and the
/// observed runner. Both are plain `fn` pointers — a kind carries no
/// state, so the registry is a `'static` table.
pub struct CampaignKind {
    /// Stable submission name (`"e2"`, `"e12"`, `"e12b"`).
    pub kind: &'static str,
    /// One-line description for listings.
    pub describe: &'static str,
    /// Builds the [`CampaignSpec`] a given config produces — the journal's
    /// config hash is derived from this, so equal submissions share a
    /// journal and resume each other.
    pub spec: fn(&ExpConfig) -> CampaignSpec,
    /// Runs (or resumes) the campaign with an observer attached.
    pub run: KindRunFn,
}

/// Signature of a [`CampaignKind`]'s observed runner: config, threads,
/// journal path, fault plan, observer.
pub type KindRunFn = fn(
    &ExpConfig,
    usize,
    Option<&Path>,
    &FaultPlan,
    &dyn CampaignObserver,
) -> Result<CampaignReport, CampaignError>;

/// Every campaign kind that can be submitted by name.
///
/// A `static`, not a `const`: lookups compare table entries by address
/// (`find_kind` + the uniqueness test), so the table must have exactly
/// one instance rather than a fresh inlined copy per use site.
pub static REGISTRY: &[CampaignKind] = &[
    CampaignKind {
        kind: "e2",
        describe: "E2: CSEEK discovery completion time vs channel count",
        spec: e2_spec,
        run: run_e2_observed,
    },
    CampaignKind {
        kind: "e12",
        describe: "E12: CSEEK/CGCAST/COUNT success and slots vs PU duty cycle",
        spec: e12_spec,
        run: run_e12_observed,
    },
    CampaignKind {
        kind: "e12b",
        describe: "E12b: CSEEK under PU churn plus a sweep jammer",
        spec: e12b_spec,
        run: run_e12b_observed,
    },
];

/// Looks a campaign kind up by its submission name.
pub fn find_kind(kind: &str) -> Option<&'static CampaignKind> {
    REGISTRY.iter().find(|k| k.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignOutcome;

    fn cfg() -> ExpConfig {
        ExpConfig { quick: true, trials: 2, seed: 31 }
    }

    #[test]
    fn e2_campaign_matches_plain_discovery_trials() {
        // The headline faithfulness check for the port: campaign units are
        // bit-identical to the pre-campaign runner path on every arm.
        let cfg = cfg();
        let report = run_e2(&cfg, 2, None, &FaultPlan::none()).unwrap();
        assert_eq!(report.outcome, CampaignOutcome::Completed);
        for (a, &c) in cseek_scaling::e2_cs(&cfg).iter().enumerate() {
            let built = cseek_scaling::e2_scenario(cfg.quick, c, cfg.seed).build().unwrap();
            let sched = SeekParams::default().schedule(&built.model);
            let plain = crate::runner::discovery_trials(
                &built.net,
                |ctx| CSeek::new(ctx.id, sched, false),
                cfg.trials(),
                cfg.seed ^ 0xE2,
                sched.total_slots(),
            );
            assert_eq!(report.done_outputs(a), plain, "arm c={c} diverged from plain runner");
        }
    }

    #[test]
    fn e12_campaign_spec_shape() {
        let cfg = cfg();
        let spec = e12_spec(&cfg);
        assert_eq!(spec.arms.len(), spectrum::duties(&cfg).len() * 3);
        assert!(spec.arms.iter().all(|a| a.trials == cfg.trials()));
    }

    #[test]
    fn e12_campaign_threads_do_not_change_report() {
        let cfg = cfg();
        let one = run_e12(&cfg, 1, None, &FaultPlan::none()).unwrap();
        let four = run_e12(&cfg, 4, None, &FaultPlan::none()).unwrap();
        assert_eq!(one, four);
    }

    #[test]
    fn registry_kinds_are_unique_and_resolvable() {
        for k in REGISTRY {
            let found = find_kind(k.kind).expect("every registered kind resolves");
            assert!(std::ptr::eq(found, k), "kind {} must be unique", k.kind);
            assert!(!k.describe.is_empty());
        }
        assert!(find_kind("nope").is_none());
    }

    #[test]
    fn registry_e2_matches_direct_entry_point() {
        let cfg = cfg();
        let kind = find_kind("e2").unwrap();
        assert_eq!((kind.spec)(&cfg), e2_spec(&cfg));
        let via_registry = (kind.run)(&cfg, 2, None, &FaultPlan::none(), &()).unwrap();
        let direct = run_e2(&cfg, 2, None, &FaultPlan::none()).unwrap();
        assert_eq!(via_registry, direct);
    }
}
