//! A1 — ablation of CSEEK's key idea: density-weighted listener channels.
//!
//! Scenario: a star whose every hub–leaf overlap consists of *hot* channels
//! shared by all leaves (crowded: `n_ch = Δ ≥ 8c`). Part one is deliberately
//! shortened (factor 0.5) so it samples densities but rarely completes the
//! hub's discovery; part two must do the work. With density weighting the
//! hub listens almost exclusively on the hot channels (gain ≈ c/k over
//! uniform); the A1 arm removes the weighting and the hub starves.

use super::ExpConfig;
use crate::runner::{discovery_trials, summarize_trials};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::params::SeekParams;
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;

/// A1: CSEEK with vs without density-weighted listening.
pub fn a1_uniform_listener(cfg: &ExpConfig) -> Table {
    let leaves = if cfg.quick { 64 } else { 128 };
    let c = 16;
    let k = 2;
    let scn = Scenario::new(
        "a1",
        Topology::Star { leaves },
        ChannelModel::CrowdedSplit { c, k, hot: 2, k_hot: 2 },
        cfg.seed,
    );
    let built = scn.build().expect("scenario builds");
    assert!(
        leaves >= 8 * c / 2,
        "scenario must be crowded in the paper's sense for the hot channels"
    );
    let mut t = Table::new(
        format!(
            "A1 (ablation): density-weighted vs uniform part-two listening (crowded star, Δ = {leaves}, c = {c}, k = {k})"
        ),
        &["listener policy", "mean slots to complete", "success", "schedule slots"],
    );
    for (name, uniform) in [("density-weighted (paper)", false), ("uniform (ablated)", true)] {
        let params =
            SeekParams { part1_factor: 0.5, uniform_listener: uniform, ..Default::default() };
        let sched = params.schedule(&built.model);
        let trials = discovery_trials(
            &built.net,
            |ctx| CSeek::new(ctx.id, sched, false),
            cfg.trials(),
            cfg.seed ^ 0xA1,
            sched.total_slots(),
        );
        let (mean, frac) = summarize_trials(&trials);
        t.push_row(vec![
            name.to_string(),
            fmt_opt(mean),
            fmt_f(frac),
            sched.total_slots().to_string(),
        ]);
    }
    t.push_note(
        "Both arms run the same schedule; only the part-two listener rule differs. \
         The paper's rule concentrates listening on crowded channels, which is what \
         makes the (kmax/k)·Δ term achievable (Lemma 3).",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a1_weighted_listener_dominates() {
        let t = a1_uniform_listener(&ExpConfig { quick: true, trials: 2, seed: 15 });
        let weighted_success: f64 = t.rows[0][2].parse().unwrap();
        let uniform_success: f64 = t.rows[1][2].parse().unwrap();
        // Either the ablated arm fails outright, or it is slower.
        if uniform_success >= weighted_success && weighted_success > 0.0 {
            let w: f64 = t.rows[0][1].parse().unwrap();
            let u: f64 = t.rows[1][1].parse().unwrap();
            assert!(u > w, "ablated arm should be slower: weighted {w}, uniform {u}");
        } else {
            assert!(
                weighted_success >= uniform_success,
                "weighted arm should succeed at least as often"
            );
        }
    }
}
