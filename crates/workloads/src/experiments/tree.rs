//! E10 — Theorem 14: broadcast on the channel-disjoint complete tree costs
//! `Ω(D·min{c,Δ})`; the omniscient scheduler attains it (ratio ≈ 1) and
//! CGCAST — which must *discover* everything first — sits far above it,
//! bracketing every real algorithm between the two.

use super::ExpConfig;
use crate::runner::summarize_trials;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::params::{GcastParams, ModelInfo};
use crn_lowerbounds::tree::{lower_bound_tree, OracleTreeBroadcast};
use crn_sim::Engine;

/// E10: oracle and CGCAST times on the lower-bound tree.
pub fn e10_tree_lower_bound(cfg: &ExpConfig) -> Table {
    let cases: &[(usize, usize)] = if cfg.quick {
        &[(3, 2), (4, 2)]
    } else {
        &[(3, 2), (3, 4), (4, 2), (4, 3), (6, 2), (6, 3)]
    };
    let mut t = Table::new(
        "E10 (Thm 14): broadcast on the channel-disjoint tree — oracle vs bound vs CGCAST",
        &["c", "depth D", "n", "LB ≈ D·(min{c,Δ}−1)", "oracle worst", "oracle/LB", "CGCAST mean"],
    );
    for &(c, depth) in cases {
        let b = c - 1; // branching factor = min(c, Δ) − 1 with Δ = c
        let net = lower_bound_tree(c, c, depth).expect("tree builds");
        let n = net.len();
        let lb = (depth * b) as f64;
        // Oracle run (deterministic; one run suffices).
        let max_slots = ((depth + 1) * b) as u64 + 16;
        let mut eng = Engine::new(&net, cfg.seed, |ctx| {
            OracleTreeBroadcast::new(&net, ctx.id, b, 0xAB, max_slots)
        });
        eng.run_to_completion(max_slots);
        let outs = eng.into_outputs();
        let oracle_worst = outs.iter().filter_map(|&(_, at)| at).max().unwrap_or(0) as f64;
        let informed = outs.iter().filter(|(_, at)| at.is_some()).count();
        assert_eq!(informed, n, "oracle informs everyone");

        // CGCAST on the same instance (smaller trees only: it is slow on
        // k = 1 instances by design — its setup pays the full c²/k term).
        let cgcast_mean = if n <= 64 {
            let model = ModelInfo::from_stats(&net.stats());
            // StatsMode audit: this builder must stay Exact — the measured
            // diameter sizes CGCAST's dissemination phases below, so an
            // approximate estimate would change the schedule (and results).
            let params = GcastParams {
                dissemination_phases: net.stats().diameter.unwrap_or(depth as u64 * 2),
                ..Default::default()
            };
            let sched = params.schedule(&model);
            let trials =
                crate::runner::cgcast_trials(&net, sched, cfg.trials().min(3), cfg.seed ^ 0xE10);
            summarize_trials(&trials).0
        } else {
            None
        };

        t.push_row(vec![
            c.to_string(),
            depth.to_string(),
            n.to_string(),
            fmt_f(lb),
            fmt_f(oracle_worst),
            fmt_f(oracle_worst / lb),
            fmt_opt(cgcast_mean),
        ]);
    }
    t.push_note(
        "The oracle knows the topology and all channels, so its time is a valid \
         witness that the Ω(D·min{c,Δ}) bound is tight; every real algorithm \
         (CGCAST included) must sit between the LB column and its own setup costs.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_oracle_matches_bound_within_factor_two() {
        let t = e10_tree_lower_bound(&ExpConfig { quick: true, trials: 1, seed: 13 });
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!((0.5..=2.5).contains(&ratio), "oracle should track the bound: {row:?}");
        }
    }
}
