//! R1 — extension beyond the paper: graceful degradation under jamming.
//!
//! The paper's §1 motivates cognitive radio with "interference from
//! disruptive devices" but analyzes a clean model. Here adversarial
//! always-transmit jammers join the network and we measure how CSEEK's
//! completion degrades as the jammed fraction of the spectrum grows —
//! the heterogeneous channel structure is exactly what buys resilience:
//! overlap `k` acts as redundancy against `j < k` jammed channels.
//!
//! A3b — in-model coloring ablation: CGCAST vs the identical protocol with
//! the coloring stage removed (random-meeting dissemination, equal step
//! budget). Quantifies what the deterministic schedule buys on
//! high-degree topologies.

use super::ExpConfig;
use crate::runner::{summarize_trials, Trial, PROBE_EVERY};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};

/// Minimal stand-in so the A3b body can keep using `built.net`.
struct BuiltWrapper {
    net: crn_sim::Network,
}
use crn_core::adversary::{JamStrategy, Jammer, NodeRole};
use crn_core::cgcast::{CGCast, UncoloredGcast};
use crn_core::params::{GcastParams, ModelInfo, SeekParams};
use crn_core::seek::CSeek;
use crn_sim::channels::ChannelModel;
use crn_sim::topology::Topology;
use crn_sim::{Engine, LocalChannel, NodeId};

/// R1: CSEEK completion under `j` fixed-channel jammers camped on the
/// shared core of a clique.
pub fn r1_jamming(cfg: &ExpConfig) -> Table {
    let honest = if cfg.quick { 6 } else { 10 };
    let core = 4;
    let c = 8;
    let jam_counts: &[usize] = if cfg.quick { &[0, 2] } else { &[0, 1, 2, 3, 4] };
    let mut t = Table::new(
        format!(
            "R1 (extension): CSEEK under jamming — {honest} honest nodes, clique, c = {c}, shared core k = {core}"
        ),
        &["jammers (core channels hit)", "mean slots", "success", "deliveries", "collisions"],
    );
    for &j in jam_counts {
        let n = honest + j;
        let scn = Scenario::new(
            format!("r1-j{j}"),
            Topology::Complete { n },
            ChannelModel::SharedCore { c, core },
            cfg.seed,
        );
        let built = scn.build().expect("scenario builds");
        // Honest nodes must still find each other; jammers are excluded
        // from the ground truth (they never identify themselves honestly).
        // The model parameters the honest nodes assume include the jammers
        // (they are in-range transceivers).
        let model = ModelInfo::from_stats(&built.net.stats());
        let sched = SeekParams::default().schedule(&model);
        let mut results = Vec::new();
        for trial in 0..cfg.trials() {
            let seed = cfg.seed ^ 0x21 ^ (trial as u64) << 16;
            let mut eng = Engine::new(&built.net, seed, |ctx| {
                if ctx.id.index() >= honest {
                    // Jammer i camps on core channel i (its local label for
                    // that global channel).
                    let g = crn_sim::GlobalChannel((ctx.id.index() - honest) as u32 % core as u32);
                    let l = built.net.global_to_local(ctx.id, g).unwrap_or(LocalChannel(0));
                    NodeRole::Adversary(Jammer::new(c as u16, JamStrategy::Fixed(l), ctx.id))
                } else {
                    NodeRole::Honest(CSeek::new(ctx.id, sched, false))
                }
            });
            let mut probe = |_s: u64, e: &Engine<'_, NodeRole<CSeek>>| {
                let mut done = true;
                e.for_each_protocol(|v, p| {
                    if let Some(cs) = p.honest() {
                        // Complete when every honest peer is discovered.
                        let found = (0..honest)
                            .filter(|&w| w != v.index())
                            .filter(|&w| {
                                crn_core::discovery::DiscoveryProtocol::has_discovered(
                                    cs,
                                    NodeId(w as u32),
                                )
                            })
                            .count();
                        done &= found == honest - 1;
                    }
                });
                done
            };
            let outcome = eng.run(sched.total_slots(), Some((PROBE_EVERY, &mut probe)));
            results.push(Trial {
                seed,
                completed_at: outcome.completed_at,
                slots_run: outcome.slots_run,
                counters: eng.counters(),
            });
        }
        let (mean, frac) = summarize_trials(&results);
        let deliveries: u64 =
            results.iter().map(|r| r.counters.deliveries).sum::<u64>() / results.len() as u64;
        let collisions: u64 =
            results.iter().map(|r| r.counters.collisions).sum::<u64>() / results.len() as u64;
        t.push_row(vec![
            j.to_string(),
            fmt_opt(mean),
            fmt_f(frac),
            deliveries.to_string(),
            collisions.to_string(),
        ]);
    }
    t.push_note(
        "Each jammer permanently occupies one core channel. Discovery slows as \
         the usable overlap shrinks from k to k − j, and fails within the fixed \
         schedule once the residual overlap is far below the k the schedule was \
         sized for — overlap (k > 1) is itself jamming redundancy, provided \
         schedules are provisioned for the post-jamming overlap.",
    );
    t
}

/// Builds a dumbbell whose every edge overlaps on its *own distinct*
/// channel (hub A = node 0, hub B = node 1, bridge on a private channel,
/// each hub–leaf edge on a private channel; all nodes padded to uniform
/// `c = legs + 1`). With per-edge channels there is no cross-edge
/// overhearing, so dissemination really must coordinate per edge — the
/// regime the Theorem 14 construction also uses.
fn distinct_channel_dumbbell(legs: usize) -> crn_sim::Network {
    use crn_sim::{GlobalChannel, Network};
    let c = legs + 1;
    let n = 2 * (legs + 1);
    let mut next = 0u32;
    let mut fresh = move || {
        let g = GlobalChannel(next);
        next += 1;
        g
    };
    let bridge = fresh();
    let mut b = Network::builder(n);
    b.add_edge(NodeId(0), NodeId(1));
    let mut hub_a = vec![bridge];
    let mut hub_b = vec![bridge];
    for l in 0..legs {
        let leaf_a = NodeId((2 + l) as u32);
        let leaf_b = NodeId((2 + legs + l) as u32);
        let ga = fresh();
        let gb = fresh();
        hub_a.push(ga);
        hub_b.push(gb);
        let mut set_a = vec![ga];
        let mut set_b = vec![gb];
        while set_a.len() < c {
            set_a.push(fresh());
        }
        while set_b.len() < c {
            set_b.push(fresh());
        }
        b.set_channels(leaf_a, set_a);
        b.set_channels(leaf_b, set_b);
        b.add_edge(NodeId(0), leaf_a);
        b.add_edge(NodeId(1), leaf_b);
    }
    b.set_channels(NodeId(0), hub_a);
    b.set_channels(NodeId(1), hub_b);
    b.build().expect("distinct-channel dumbbell is valid")
}

/// A3b: CGCAST vs its uncolored ablation at equal dissemination budgets.
///
/// Topology choice matters: with few shared channels or redundant paths,
/// random meetings spread epidemically (cross-edge overhearing) and can
/// even beat the rigid schedule. The coloring's guarantee pays off on
/// **bottleneck edges between two high-degree nodes with per-edge
/// channels**: the hub–hub bridge of a distinct-channel dumbbell is
/// co-selected by random endpoints with probability only ≈ 1/Δ² per step,
/// while the colored schedule reserves it a dedicated contention-free step
/// every phase.
pub fn a3b_uncolored_dissemination(cfg: &ExpConfig) -> Table {
    let legs = if cfg.quick { 5 } else { 6 };
    let net = distinct_channel_dumbbell(legs);
    // StatsMode audit: stays Exact — the diameter feeds the CGCAST
    // schedule one line down (and the network is tiny anyway).
    let d = net.stats().diameter.expect("connected"); // 3
    let model = ModelInfo::from_stats(&net.stats());
    let sched = GcastParams { dissemination_phases: d, ..Default::default() }.schedule(&model);
    let built = BuiltWrapper { net };
    let mut t = Table::new(
        format!(
            "A3b (ablation): colored vs random-meeting dissemination (distinct-channel dumbbell, Δ = {}, D = {d}, equal step budget)",
            built.net.stats().delta
        ),
        &["dissemination", "informed fraction", "mean informed-at (slots into dissem)"],
    );

    // Colored (full CGCAST).
    let mut informed = 0usize;
    let mut total = 0usize;
    let mut at_sum = 0u64;
    let mut at_n = 0u64;
    let setup = sched.total_slots() - sched.dissemination_slots();
    for trial in 0..cfg.trials() {
        let mut eng = Engine::new(&built.net, cfg.seed ^ 0x3B ^ (trial as u64) << 12, |ctx| {
            CGCast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(5))
        });
        eng.run_to_completion(sched.total_slots());
        for o in eng.into_outputs() {
            total += 1;
            if o.is_informed() {
                informed += 1;
                if let Some(at) = o.informed_at {
                    if at > 0 {
                        at_sum += at.saturating_sub(setup);
                        at_n += 1;
                    }
                }
            }
        }
    }
    t.push_row(vec![
        "colored schedule (CGCAST)".into(),
        fmt_f(informed as f64 / total as f64),
        if at_n > 0 { fmt_f(at_sum as f64 / at_n as f64) } else { "—".into() },
    ]);

    // Uncolored (random meetings), equal dissemination step budget.
    let mut informed = 0usize;
    let mut total = 0usize;
    let mut at_sum = 0u64;
    let mut at_n = 0u64;
    let uncolored_setup = 2 * sched.seek_slots();
    for trial in 0..cfg.trials() {
        let mut eng = Engine::new(&built.net, cfg.seed ^ 0x3B ^ (trial as u64) << 12, |ctx| {
            UncoloredGcast::new(ctx.id, sched, (ctx.id == NodeId(0)).then_some(5))
        });
        eng.run_to_completion(u64::MAX);
        for o in eng.into_outputs() {
            total += 1;
            if o.is_informed() {
                informed += 1;
                if let Some(at) = o.informed_at {
                    if at > 0 {
                        at_sum += at.saturating_sub(uncolored_setup);
                        at_n += 1;
                    }
                }
            }
        }
    }
    t.push_row(vec![
        "random meetings (ablated)".into(),
        fmt_f(informed as f64 / total as f64),
        if at_n > 0 { fmt_f(at_sum as f64 / at_n as f64) } else { "—".into() },
    ]);
    t.push_note(
        "Both arms run discovery + dedicated channels, then the same number of \
         dissemination steps; only edge coordination differs. The source sits \
         on one hub; random meetings rarely co-select the hub–hub bridge \
         (probability ≈ 1/Δ² per step), so the far half starves — the \
         coloring's guaranteed per-edge steps are what make the D·Δ bound \
         hold on every topology, not just well-connected ones.",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_no_jammers_completes() {
        let t = r1_jamming(&ExpConfig { quick: true, trials: 2, seed: 31 });
        let frac0: f64 = t.rows[0][2].parse().unwrap();
        assert!(frac0 > 0.4, "jam-free arm should complete: {:?}", t.rows[0]);
    }

    #[test]
    fn r1_jamming_degrades_or_slows() {
        let t = r1_jamming(&ExpConfig { quick: true, trials: 2, seed: 31 });
        // With 2 of 4 core channels jammed, either success drops or the
        // mean completion time rises.
        let f0: f64 = t.rows[0][2].parse().unwrap();
        let f2: f64 = t.rows[1][2].parse().unwrap();
        if f2 >= f0 && f0 > 0.0 {
            let m0: f64 = t.rows[0][1].parse().unwrap();
            let m2: f64 = t.rows[1][1].parse().unwrap();
            assert!(m2 > m0, "jamming should slow discovery: {m0} -> {m2}");
        }
    }

    #[test]
    fn a3b_colored_dominates() {
        let t = a3b_uncolored_dissemination(&ExpConfig { quick: true, trials: 1, seed: 31 });
        let colored: f64 = t.rows[0][1].parse().unwrap();
        let uncolored: f64 = t.rows[1][1].parse().unwrap();
        assert!(
            colored >= uncolored,
            "colored schedule should inform at least as many nodes ({colored} vs {uncolored})"
        );
    }
}
