//! E8 — Theorem 9: CGCAST's dissemination stage costs `Õ(D·Δ)` and its
//! setup (discovery + coloring) is a `D`-independent prefix; the naive
//! broadcast costs `Õ((c²/k)·D)` per run. Comparing the two fitted lines
//! locates the crossover diameter beyond which CGCAST wins.

use super::ExpConfig;
use crate::runner::{cgcast_trials, naive_broadcast_trials, summarize_trials};
use crate::scenario::Scenario;
use crate::table::{fmt_f, fmt_opt, Table};
use crn_core::baselines::NaiveBroadcast;
use crn_core::params::GcastParams;
use crn_sim::channels::ChannelModel;
use crn_sim::stats::fit_linear;
use crn_sim::topology::Topology;

/// E8: CGCAST vs naive broadcast across path diameters.
pub fn e8_gcast_vs_naive(cfg: &ExpConfig) -> Vec<Table> {
    let diameters: &[usize] = if cfg.quick { &[3, 6] } else { &[4, 8, 16, 32] };
    let c = 8;
    let core = 1;
    let mut t = Table::new(
        "E8 (Thm 9): global broadcast on paths — CGCAST vs naive (c = 8, k = 1, Δ = 2)",
        &["D", "CGCAST total", "CGCAST setup", "CGCAST dissem", "CGCAST ok", "naive", "naive ok"],
    );
    let mut ds = Vec::new();
    let mut dissems = Vec::new();
    let mut naives = Vec::new();
    for &d in diameters {
        let scn = Scenario::new(
            format!("e8-d{d}"),
            Topology::Path { n: d + 1 },
            ChannelModel::SharedCore { c, core },
            cfg.seed,
        );
        let built = scn.build().expect("scenario builds");
        let params = GcastParams { dissemination_phases: d as u64, ..Default::default() };
        let sched = params.schedule(&built.model);
        let setup = sched.total_slots() - sched.dissemination_slots();
        let trials = cgcast_trials(&built.net, sched, cfg.trials(), cfg.seed ^ 0xE8);
        let (mean, frac) = summarize_trials(&trials);
        let dissem = mean.map(|m| (m - setup as f64).max(0.0));

        let naive_slots = NaiveBroadcast::schedule_slots(&built.model, d as u64, 8.0);
        let ntrials = naive_broadcast_trials(
            &built.net,
            c as u16,
            naive_slots,
            cfg.trials(),
            cfg.seed ^ 0xE8,
        );
        let (nmean, nfrac) = summarize_trials(&ntrials);

        if let (Some(di), Some(nm)) = (dissem, nmean) {
            ds.push(d as f64);
            dissems.push(di);
            naives.push(nm);
        }
        t.push_row(vec![
            d.to_string(),
            fmt_opt(mean),
            setup.to_string(),
            fmt_opt(dissem),
            fmt_f(frac),
            fmt_opt(nmean),
            fmt_f(nfrac),
        ]);
    }

    let mut fit_table = Table::new(
        "E8b: fitted per-hop costs and projected crossover",
        &["model", "slots per hop (slope)", "intercept (setup)", "R²"],
    );
    if ds.len() >= 2 {
        let gfit = fit_linear(&ds, &dissems);
        let nfit = fit_linear(&ds, &naives);
        fit_table.push_row(vec![
            "CGCAST dissemination".into(),
            fmt_f(gfit.slope),
            fmt_f(gfit.intercept),
            fmt_f(gfit.r2),
        ]);
        fit_table.push_row(vec![
            "naive broadcast".into(),
            fmt_f(nfit.slope),
            fmt_f(nfit.intercept),
            fmt_f(nfit.r2),
        ]);
        // Setup from the largest-D run (a mild overestimate for smaller D:
        // it grows only logarithmically with n).
        let last_setup = {
            let d = *diameters.last().unwrap();
            let scn = Scenario::new(
                "e8-setup",
                Topology::Path { n: d + 1 },
                ChannelModel::SharedCore { c, core },
                cfg.seed,
            );
            let built = scn.build().unwrap();
            let params = GcastParams { dissemination_phases: d as u64, ..Default::default() };
            let sched = params.schedule(&built.model);
            (sched.total_slots() - sched.dissemination_slots()) as f64
        };
        if nfit.slope > gfit.slope {
            let crossover = last_setup / (nfit.slope - gfit.slope);
            fit_table.push_note(format!(
                "Projected crossover: CGCAST (setup ≈ {last_setup:.0} + {:.1}·D) beats naive \
                 ({:.1}·D) for D ≳ {:.0}. Paper: CGCAST wins once D·Δ ≪ (c²/k)·D, i.e. \
                 whenever Δ ≪ c²/k and D is large enough to amortize the setup.",
                gfit.slope, nfit.slope, crossover
            ));
        } else {
            fit_table.push_note(
                "Naive per-hop cost did not exceed CGCAST per-hop cost at these parameters \
                 (Δ too large relative to c²/k).",
            );
        }
    }
    vec![t, fit_table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_quick_produces_both_tables() {
        let tables = e8_gcast_vs_naive(&ExpConfig { quick: true, trials: 1, seed: 8 });
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2);
        // CGCAST should succeed on these small paths.
        for row in &tables[0].rows {
            let ok: f64 = row[4].parse().unwrap();
            assert!(ok > 0.4, "CGCAST mostly succeeds: {row:?}");
        }
        // Fit table exists with both models (the slope ordering itself is a
        // release-mode claim checked by the full experiment run and the
        // integration suite; two quick points are too noisy to assert on).
        assert_eq!(tables[1].rows.len(), 2);
        for row in &tables[1].rows {
            let slope: f64 = row[1].parse().unwrap();
            assert!(slope > 0.0, "per-hop cost must be positive: {row:?}");
        }
    }
}
